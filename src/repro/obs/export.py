"""Exporters: JSONL event dumps and Chrome trace-event JSON.

The Chrome trace format (loadable in ``chrome://tracing`` and Perfetto)
maps naturally onto the simulation: one *process* per simulated machine,
one *thread* per member/daemon on it, complete (``"ph": "X"``) events for
spans and instant (``"ph": "i"``) events for markers.  Virtual
milliseconds become the format's microsecond ``ts``.

Causal parent edges (:mod:`repro.obs.causality`) are exported as flow
events — an ``"s"`` arrow tail at the parent's end, an ``"f"`` head at
the child's start — so the viewer draws the recorded rekey DAG across
machines and threads.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.obs.spans import Span

#: JSONL export schema version; bumped whenever record shapes change.
#: Version 2 added the leading schema header line and the causal id
#: fields (``span_id``/``parent_id``/``trace_id``) on span records.
#: See DESIGN.md ("Observability record formats") for the full schema.
JSONL_SCHEMA_VERSION = 2


def spans_to_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write a schema header then one JSON object per span.

    Returns the number of lines written (header included).
    """
    count = 1
    with open(path, "w") as handle:
        handle.write(json.dumps({
            "schema": {"kind": "repro.obs", "version": JSONL_SCHEMA_VERSION},
        }, sort_keys=True) + "\n")
        for span in spans:
            handle.write(json.dumps({
                "category": span.category,
                "name": span.name,
                "actor": span.actor,
                "proc": span.proc,
                "start": span.start,
                "end": span.end,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "attrs": span.attrs,
            }, sort_keys=True, default=str) + "\n")
            count += 1
    return count


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Convert spans to a Chrome trace-event JSON object.

    Processes (``pid``) are simulated machines, threads (``tid``) are
    actors (members/daemons); both get ``"M"`` metadata records for their
    names plus sort indices so the viewer lists them in a stable
    registration order instead of alphabetically.  Parent edges become
    ``"s"``/``"f"`` flow-event pairs keyed by the child's span id.
    """
    spans = list(spans)
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    #: (pid, tid, span) by span_id, for the flow-event pass
    placed: Dict[int, Tuple[int, int, Span]] = {}
    for span in spans:
        if span.proc not in pids:
            pids[span.proc] = len(pids) + 1
            pid = pids[span.proc]
            events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "tid": 0, "ts": 0, "args": {"name": span.proc},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "ts": 0, "args": {"sort_index": pid},
            })
        pid = pids[span.proc]
        tkey = (span.proc, span.actor)
        if tkey not in tids:
            tids[tkey] = len(tids) + 1
            tid = tids[tkey]
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "ts": 0, "args": {"name": span.actor},
            })
            events.append({
                "ph": "M", "name": "thread_sort_index", "pid": pid,
                "tid": tid, "ts": 0, "args": {"sort_index": tid},
            })
        tid = tids[tkey]
        args = {str(k): v for k, v in span.attrs.items()}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        common = {
            "name": span.name, "cat": span.category, "pid": pid, "tid": tid,
            "ts": span.start * 1000.0,  # virtual ms -> trace µs
            "args": args,
        }
        if span.is_instant:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X", "dur": span.duration * 1000.0})
        if span.span_id is not None:
            placed[span.span_id] = (pid, tid, span)
    # Flow events: one arrow per recorded parent edge whose both ends
    # survived in the span set, keyed by the *child* span id.
    for span in spans:
        if span.parent_id is None or span.span_id is None:
            continue
        parent_entry = placed.get(span.parent_id)
        if parent_entry is None:
            continue
        parent_pid, parent_tid, parent = parent_entry
        child_pid, child_tid, _ = placed[span.span_id]
        events.append({
            "ph": "s", "id": span.span_id, "name": "cause", "cat": "flow",
            "pid": parent_pid, "tid": parent_tid,
            "ts": parent.end * 1000.0, "args": {},
        })
        events.append({
            "ph": "f", "bp": "e", "id": span.span_id, "name": "cause",
            "cat": "flow", "pid": child_pid, "tid": child_tid,
            "ts": span.start * 1000.0, "args": {},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` output to ``path``; returns it."""
    trace = to_chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(trace, handle, default=str)
    return trace


def validate_chrome_trace(trace: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` is well-formed.

    Checks the shape the smoke CI job relies on: a ``traceEvents`` list
    whose entries all carry ``ph``/``ts``/``pid``/``tid``/``name``;
    complete events additionally carry a non-negative ``dur``, and flow
    events (``"s"``/``"f"``) carry an ``id`` binding the arrow's two
    halves together.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for index, event in enumerate(events):
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in event:
                raise ValueError(f"event {index} missing {field!r}")
        if event["ph"] not in ("X", "i", "M", "s", "f"):
            raise ValueError(f"event {index} has unknown phase {event['ph']!r}")
        if event["ph"] == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(f"event {index} needs a non-negative dur")
        if event["ph"] in ("s", "f") and "id" not in event:
            raise ValueError(f"flow event {index} needs an id")
