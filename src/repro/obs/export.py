"""Exporters: JSONL event dumps and Chrome trace-event JSON.

The Chrome trace format (loadable in ``chrome://tracing`` and Perfetto)
maps naturally onto the simulation: one *process* per simulated machine,
one *thread* per member/daemon on it, complete (``"ph": "X"``) events for
spans and instant (``"ph": "i"``) events for markers.  Virtual
milliseconds become the format's microsecond ``ts``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.obs.spans import Span


def spans_to_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write one JSON object per span; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps({
                "category": span.category,
                "name": span.name,
                "actor": span.actor,
                "proc": span.proc,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            }, sort_keys=True, default=str) + "\n")
            count += 1
    return count


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Convert spans to a Chrome trace-event JSON object.

    Processes (``pid``) are simulated machines, threads (``tid``) are
    actors (members/daemons); both get ``"M"`` metadata records so the
    viewer shows their names.
    """
    spans = list(spans)
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        if span.proc not in pids:
            pids[span.proc] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[span.proc],
                "tid": 0, "ts": 0, "args": {"name": span.proc},
            })
        pid = pids[span.proc]
        tkey = (span.proc, span.actor)
        if tkey not in tids:
            tids[tkey] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[tkey], "ts": 0, "args": {"name": span.actor},
            })
        tid = tids[tkey]
        args = {str(k): v for k, v in span.attrs.items()}
        common = {
            "name": span.name, "cat": span.category, "pid": pid, "tid": tid,
            "ts": span.start * 1000.0,  # virtual ms -> trace µs
            "args": args,
        }
        if span.is_instant:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X", "dur": span.duration * 1000.0})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` output to ``path``; returns it."""
    trace = to_chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(trace, handle, default=str)
    return trace


def validate_chrome_trace(trace: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` is well-formed.

    Checks the shape the smoke CI job relies on: a ``traceEvents`` list
    whose entries all carry ``ph``/``ts``/``pid``/``tid``/``name``, with
    complete events additionally carrying a non-negative ``dur``.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for index, event in enumerate(events):
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in event:
                raise ValueError(f"event {index} missing {field!r}")
        if event["ph"] not in ("X", "i", "M"):
            raise ValueError(f"event {index} has unknown phase {event['ph']!r}")
        if event["ph"] == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(f"event {index} needs a non-negative dur")
