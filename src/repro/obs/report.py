"""Per-epoch cost attribution: the paper's §6 decomposition, span-based.

The paper decomposes each rekey's *total elapsed time* into the
membership-service part and the key-agreement part, and argues (§6.2,
Figs. 11–14) about how much of the latter is communication versus
computation.  This module makes that decomposition a first-class,
machine-checkable artifact:

* **membership** — event injection -> last member's view delivery
  (identical to :meth:`~repro.core.timing.EpochRecord.membership_elapsed`);
* **computation** — within the key-agreement window, the union of the
  *critical member's* CPU spans (crypto batches and signing).  The
  critical member is the last one to install the key — the member whose
  finish time *defines* ``total_elapsed()``;
* **communication** — the remainder of the key-agreement window: time the
  critical member spent waiting on ordered delivery, token rotation and
  frames in flight.

By construction the three phases sum *exactly* to
:meth:`~repro.core.timing.EpochRecord.total_elapsed`, which is the
reconciliation property the acceptance tests assert to 1e-6 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.obs.spans import SpanRecorder, busy_time

if TYPE_CHECKING:  # import cycle: repro.core imports repro.obs at runtime
    from repro.core.timing import EpochRecord, RekeyTimeline

#: Span categories that count as CPU work in the decomposition.
CPU_CATEGORIES = ("crypto",)


@dataclass(frozen=True)
class PhaseBreakdown:
    """One epoch's elapsed time split into the paper's three phases."""

    epoch: Tuple
    last_member: str
    total_ms: float
    membership_ms: float
    communication_ms: float
    computation_ms: float

    def phase_sum(self) -> float:
        return self.membership_ms + self.communication_ms + self.computation_ms

    def reconciles(self, tolerance: float = 1e-6) -> bool:
        """True when the phases sum to the timeline total within tolerance."""
        return abs(self.phase_sum() - self.total_ms) <= tolerance


def epoch_breakdown(record: "EpochRecord", spans: SpanRecorder) -> PhaseBreakdown:
    """Decompose one complete epoch using the recorded spans."""
    total = record.total_elapsed()
    membership = record.membership_elapsed()
    window_start = max(record.view_delivered.values())
    window_end = max(record.key_ready.values())
    # Deterministic critical member: latest finisher, name breaking ties.
    last_member = max(record.key_ready.items(), key=lambda kv: (kv[1], kv[0]))[0]
    cpu_spans = [
        s
        for s in spans.spans
        if s.actor == last_member and s.category in CPU_CATEGORIES
    ]
    computation = busy_time(cpu_spans, window_start, window_end)
    communication = (window_end - window_start) - computation
    return PhaseBreakdown(
        epoch=record.epoch,
        last_member=last_member,
        total_ms=total,
        membership_ms=membership,
        communication_ms=communication,
        computation_ms=computation,
    )


def timeline_breakdowns(
    timeline: "RekeyTimeline", spans: SpanRecorder
) -> List[PhaseBreakdown]:
    """Breakdowns for every *complete, event-marked* epoch, in epoch order.

    Epochs whose membership event was never marked (e.g. the growth phase
    of a benchmark, where joins are deliberately unmeasured) are skipped —
    they have no well-defined elapsed time.
    """
    complete = sorted(
        (
            r
            for r in timeline.epochs.values()
            if r.complete() and r.event_started_at is not None
        ),
        key=lambda r: r.epoch,
    )
    return [epoch_breakdown(record, spans) for record in complete]


def render_breakdowns(
    breakdowns: List[PhaseBreakdown], title: Optional[str] = None
) -> str:
    """Aligned text table: one row per epoch, one column per phase."""
    header = (
        f"{'epoch':>24s} {'total':>10s} {'membship':>10s} "
        f"{'comms':>10s} {'comput':>10s} {'sum ok':>6s}  last"
    )
    lines = [title or "Per-epoch phase decomposition (ms)", header,
             "-" * len(header)]
    for b in breakdowns:
        ok = "yes" if b.reconciles() else "NO"
        lines.append(
            f"{str(b.epoch):>24s} {b.total_ms:10.3f} {b.membership_ms:10.3f} "
            f"{b.communication_ms:10.3f} {b.computation_ms:10.3f} {ok:>6s}  "
            f"{b.last_member}"
        )
    if not breakdowns:
        lines.append("(no complete epochs recorded)")
    return "\n".join(lines)


def render_report(
    timeline: "RekeyTimeline", spans: SpanRecorder, title: Optional[str] = None
) -> str:
    """Full text report reconciling spans against the rekey timeline."""
    breakdowns = timeline_breakdowns(timeline, spans)
    body = render_breakdowns(breakdowns, title)
    if breakdowns:
        worst = max(abs(b.phase_sum() - b.total_ms) for b in breakdowns)
        body += (
            f"\n{len(breakdowns)} epoch(s); worst |phases - timeline| = "
            f"{worst:.2e} ms"
        )
    if spans.dropped:
        body += (
            f"\n!! WARNING: span recorder dropped {spans.dropped} span(s) "
            f"(capacity {spans.capacity}); every figure above that leans "
            f"on spans — computation, communication, critical paths — may "
            f"undercount.  Re-run with a larger span capacity."
        )
    return body
