"""Hierarchically labelled, virtual-clock-stamped intervals ("spans").

A span records *what happened, where, and for how long* in virtual time:
a crypto batch on a member's CPU, a frame in flight between two daemons,
a member's whole rekey epoch from view delivery to key install.  Spans are
the raw material for the Chrome-trace exporter and the per-epoch phase
report (:mod:`repro.obs.report`), which together reproduce the paper's §6
decomposition of rekey latency into membership, communication and
computation.

Recording is purely passive — a :class:`SpanRecorder` never touches the
simulator's event heap, so enabling observability cannot perturb the
virtual timeline.  The recorder is bounded: once ``capacity`` spans are
held, further spans are counted in :attr:`SpanRecorder.dropped` instead of
growing memory without limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Default span capacity; generous for every shipped benchmark, small
#: enough that a runaway run cannot exhaust memory.
DEFAULT_CAPACITY = 500_000


@dataclass
class Span:
    """One closed interval of virtual time.

    Attributes
    ----------
    category:
        Coarse kind: ``"crypto"`` (CPU work), ``"net"`` (frame in flight),
        ``"epoch"`` (view delivery -> key install), ``"gcs"`` (membership
        machinery), ``"membership"`` (event injection instants).
    name:
        Human-readable label, e.g. ``"TGDH.tree"`` or ``"frame d0->d3"``.
    actor:
        The logical thread: a member name, ``"d<k>"`` for a daemon, or
        ``"world"``.  Becomes the Chrome-trace *tid*.
    proc:
        The machine the activity ran on.  Becomes the Chrome-trace *pid*.
    start, end:
        Virtual milliseconds.  ``start == end`` marks an instant.
    span_id, parent_id, trace_id:
        Causal identity (see :mod:`repro.obs.causality`): ``parent_id``
        names the span this one *waited on*, ``trace_id`` groups every
        span of one rekey epoch's trace.  All three stay None for spans
        recorded outside a trace (e.g. during unmeasured group growth).
    """

    category: str
    name: str
    actor: str
    proc: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    trace_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start


class SpanRecorder:
    """Bounded collector of :class:`Span` records; no-op when disabled."""

    def __init__(self, enabled: bool = True, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, span: Span) -> None:
        """Store one span (drop-counting once the capacity is reached)."""
        if not self.enabled:
            return
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(span)

    def record(
        self,
        category: str,
        name: str,
        actor: str,
        proc: str,
        start: float,
        end: float,
        *,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record one closed interval (no-op when disabled)."""
        if self.enabled:
            self.add(
                Span(
                    category, name, actor, proc, start, end, attrs,
                    span_id=span_id, parent_id=parent_id, trace_id=trace_id,
                )
            )

    def instant(
        self, category: str, name: str, actor: str, proc: str, time: float,
        *,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record a zero-duration marker."""
        self.record(
            category, name, actor, proc, time, time,
            span_id=span_id, parent_id=parent_id, trace_id=trace_id, **attrs,
        )

    def by_id(self) -> Dict[int, Span]:
        """Index of every id-carrying span, keyed by ``span_id``."""
        return {s.span_id: s for s in self.spans if s.span_id is not None}

    def filter(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[Span], bool]] = None,
    ) -> List[Span]:
        """Spans matching all given criteria, in recording order."""
        selected = self.spans
        if category is not None:
            selected = [s for s in selected if s.category == category]
        if actor is not None:
            selected = [s for s in selected if s.actor == actor]
        if predicate is not None:
            selected = [s for s in selected if predicate(s)]
        return selected

    def clear(self) -> None:
        """Drop all recorded spans and reset the drop counter."""
        self.spans.clear()
        self.dropped = 0


def busy_time(
    spans: List[Span], window_start: float, window_end: float
) -> float:
    """Total measure of the union of ``spans`` clipped to a window.

    Overlapping spans (e.g. signing while an earlier batch still occupies
    the core) are merged so no instant is counted twice.
    """
    intervals = sorted(
        (max(s.start, window_start), min(s.end, window_end))
        for s in spans
        if s.end > window_start and s.start < window_end
    )
    total = 0.0
    cursor = window_start
    for start, end in intervals:
        if end <= cursor:
            continue
        total += end - max(start, cursor)
        cursor = end
    return total
