"""HDR-style log-bucketed histograms and bounded time series.

The percentile substrate for sustained-traffic benchmarks: a
:class:`LogHistogram` answers p50/p95/p99 questions about rekey latency
without storing every sample, and a :class:`TimeSeries` keeps a bounded
ring of the most recent (virtual time, value) points per label set.

Buckets are geometric with growth factor ``2**(1/8)`` (≈ 9.05 % wide), so
any reported quantile is within one bucket — under ±4.4 % relative error
— of the exact sorted-sample quantile, which is the accuracy bound the
tests assert.  Merging is *exact and order-independent*: bucket counts
are integers (addition commutes) and float totals are folded with
:func:`math.fsum` over the multiset of shard totals, which is correctly
rounded and therefore independent of merge order — the property the
parallel benchmark pool relies on when workers finish in arbitrary
order.

Like every ``repro.obs`` module this is passive: observing a value never
schedules a simulator event.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

#: Bucket growth factor: 8 buckets per octave (2**(1/8)).
GROWTH = 2.0 ** 0.125
_LOG_GROWTH = math.log(GROWTH)

#: Default ring capacity of a :class:`TimeSeries`.
SERIES_CAPACITY = 1024


def bucket_index(value: float) -> int:
    """The geometric bucket a positive value falls into.

    Bucket ``i`` covers ``[GROWTH**i, GROWTH**(i+1))``; values are mapped
    through ``floor(log(v) / log(GROWTH))`` with an exact-power fixup so
    boundary values land in the bucket they open.
    """
    index = math.floor(math.log(value) / _LOG_GROWTH)
    # Float log can land an exact power a hair low/high; nudge into the
    # bucket whose bounds actually contain the value.
    if GROWTH ** (index + 1) <= value:
        index += 1
    elif GROWTH ** index > value:
        index -= 1
    return index


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``[low, high)`` value range of bucket ``index``."""
    return (GROWTH ** index, GROWTH ** (index + 1))


def bucket_midpoint(index: int) -> float:
    """The geometric midpoint used as the bucket's representative value."""
    low, high = bucket_bounds(index)
    return math.sqrt(low * high)


class LogHistogram:
    """Log-bucketed histogram with exact, order-independent merging.

    Values ``<= 0`` (a zero-cost rekey under the symbolic engine, say)
    are counted in a dedicated zero bucket rather than discarded, so
    ``count`` always equals the number of ``observe`` calls.
    """

    __slots__ = (
        "name", "labels", "buckets", "zero_count", "count",
        "_total", "_merged_totals", "min", "max",
    )

    def __init__(self, name: str = "", labels: Tuple = ()):
        self.name = name
        self.labels = labels
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self._total = 0.0
        self._merged_totals: List[float] = []
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self._total += value
        if value > 0.0:
            index = bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.zero_count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def total(self) -> float:
        """Sum of observed values; exact-rounded across merged shards."""
        if not self._merged_totals:
            return self._total
        return math.fsum(self._merged_totals) + self._total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, reported as the bucket's representative.

        Exact for the zero bucket and for ``min``/``max`` at the extremes;
        otherwise within one geometric bucket of the true sample quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return bucket_midpoint(index)
        return self.max if self.max is not None else 0.0

    def percentiles(self) -> Dict[str, float]:
        """The standard reporting set: p50/p95/p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(
        self,
        buckets: Dict[Any, int],
        zero_count: int,
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
    ) -> None:
        """Fold another histogram's snapshot in (worker-shard merge).

        Bucket keys are coerced with ``int()`` because a snapshot that
        crossed a JSON boundary (the result cache, a worker pipe) comes
        back with string keys.
        """
        for key, bucket_count in buckets.items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count
        self.zero_count += zero_count
        self.count += count
        self._merged_totals.append(total)
        if minimum is not None:
            self.min = minimum if self.min is None else min(self.min, minimum)
        if maximum is not None:
            self.max = maximum if self.max is None else max(self.max, maximum)


class TimeSeries:
    """A bounded ring of ``(virtual time, value)`` points.

    Recording past capacity overwrites the oldest point;
    :meth:`points` always returns the retained window in time order.
    """

    __slots__ = ("name", "labels", "capacity", "_ring", "_write", "recorded")

    def __init__(
        self, name: str = "", labels: Tuple = (), capacity: int = SERIES_CAPACITY
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.labels = labels
        self.capacity = capacity
        self._ring: List[Tuple[float, float]] = []
        self._write = 0
        self.recorded = 0

    def record(self, time: float, value: float) -> None:
        point = (time, value)
        if len(self._ring) < self.capacity:
            self._ring.append(point)
        else:
            self._ring[self._write] = point
        self._write = (self._write + 1) % self.capacity
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def points(self) -> List[Tuple[float, float]]:
        """Retained points, oldest first."""
        if len(self._ring) < self.capacity:
            return list(self._ring)
        return self._ring[self._write:] + self._ring[: self._write]

    def merge(self, points: List, recorded: int) -> None:
        """Fold another series' retained points in (worker-shard merge).

        The union is re-sorted by ``(time, value)`` and re-bounded to
        capacity (keeping the most recent points), so the result is
        independent of merge order.
        """
        merged = sorted(
            self.points() + [(float(t), float(v)) for t, v in points]
        )
        kept = merged[-self.capacity:]
        self._ring = kept
        # A full ring with _write == 0 reads back in list order, which is
        # the sorted order just built; a partial ring appends at the end.
        self._write = len(kept) % self.capacity
        self.recorded += recorded


def render_percentiles(instruments: List[LogHistogram], title: str = "") -> str:
    """Aligned percentile table: one row per labelled log histogram."""
    header = (
        f"{'series':<44s} {'count':>7s} {'p50':>10s} {'p95':>10s} "
        f"{'p99':>10s} {'max':>10s}"
    )
    lines = [title or "Latency percentiles (ms)", header, "-" * len(header)]
    for histogram in instruments:
        label_text = ",".join(f"{k}={v}" for k, v in histogram.labels)
        name = histogram.name + (f"{{{label_text}}}" if label_text else "")
        p = histogram.percentiles()
        maximum = histogram.max if histogram.max is not None else 0.0
        lines.append(
            f"{name:<44s} {histogram.count:7d} {p['p50']:10.3f} "
            f"{p['p95']:10.3f} {p['p99']:10.3f} {maximum:10.3f}"
        )
    if not instruments:
        lines.append("(no log histograms recorded)")
    return "\n".join(lines)
