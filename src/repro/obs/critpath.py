"""Critical-path extraction over the recorded span DAG.

Every span carries the id of the span it *waited on* (see
:mod:`repro.obs.causality`), so the blocking chain behind a rekey is not
inferred from timestamps — it is read off the recorded parent edges.
:func:`critical_path` walks backwards from the epoch's terminal
``key-install`` instant at the last-to-finish member, reverses the chain,
and tiles it onto the measured window ``[event start, last key ready]``.
Gaps the chain does not explain (a daemon token hold, an idle wait for a
frame) become explicit ``wait`` segments, so the path is a gap-free
partition of the epoch.

The invariant the tests pin down: the segment durations, summed plainly
left to right, equal the epoch's measured
:meth:`~repro.core.timing.EpochRecord.total_elapsed` *float-exactly* —
not approximately.  Tiling produces telescoping ``end - start`` terms
whose naive float sum can drift by a few ulps from the measured total, so
a bounded nudge loop folds the residual into the longest segment until
the plain sum lands exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.timing import EpochRecord, RekeyTimeline
from repro.obs.spans import Span, SpanRecorder

#: Span name of the terminal instant every complete epoch records.
KEY_INSTALL = "key-install"

#: Default phase label per span category, for spans that do not carry an
#: explicit ``phase`` attribute (protocol steps stamp their own).
_CATEGORY_PHASE = {
    "crypto": "computation",
    "net": "communication",
    "gcs": "membership",
    "membership": "membership",
    "epoch": "install",
}


@dataclass
class CriticalSegment:
    """One tile of the blocking chain: who was on the path, doing what."""

    member: str
    phase: str
    name: str
    start: float
    end: float
    duration: float
    category: str = ""
    span_id: Optional[int] = None

    @property
    def is_wait(self) -> bool:
        return self.category == "wait"


@dataclass
class CriticalPath:
    """The exact blocking chain of one rekey epoch.

    ``sum(seg.duration)`` evaluated left to right equals ``total``
    float-exactly whenever ``exact`` is True (it is False only if the
    nudge loop failed to converge, which the tests treat as a bug).
    ``truncated`` flags a parent walk that hit a span the bounded
    recorder had dropped.
    """

    epoch: Tuple[int, int]
    member: str
    trace_id: Optional[int]
    total: float
    segments: List[CriticalSegment] = field(default_factory=list)
    exact: bool = False
    truncated: bool = False

    def plain_sum(self) -> float:
        """Left-to-right float sum of the segment durations."""
        total = 0.0
        for segment in self.segments:
            total += segment.duration
        return total


def _critical_member(record: EpochRecord) -> str:
    """The last member to install the key (ties broken by name, matching
    the per-epoch report)."""
    return max(record.key_ready.items(), key=lambda kv: (kv[1], kv[0]))[0]


def _terminal_span(
    recorder: SpanRecorder, record: EpochRecord, member: str
) -> Optional[Span]:
    """The epoch's ``key-install`` instant at the critical member."""
    epoch_text = str(record.epoch)
    for span in reversed(recorder.spans):
        if (
            span.name == KEY_INSTALL
            and span.actor == member
            and str(span.attrs.get("epoch")) == epoch_text
        ):
            return span
    return None


def _walk_chain(
    terminal: Span, index: Dict[int, Span]
) -> Tuple[List[Span], bool]:
    """Follow parent edges back from the terminal; oldest span first.

    Returns ``(chain, truncated)`` — truncated when a parent id points at
    a span the recorder no longer holds (capacity drop).
    """
    chain: List[Span] = []
    truncated = False
    seen = set()
    node: Optional[Span] = terminal
    while node is not None:
        if node.span_id in seen:  # defensive: ids never cycle by design
            break
        if node.span_id is not None:
            seen.add(node.span_id)
        chain.append(node)
        parent_id = node.parent_id
        if parent_id is None:
            break
        node = index.get(parent_id)
        if node is None:
            truncated = True
    chain.reverse()
    return chain, truncated


def _phase_of(span: Span) -> str:
    phase = span.attrs.get("phase")
    if phase:
        return str(phase)
    return _CATEGORY_PHASE.get(span.category, span.category or "other")


def _tile(
    chain: List[Span], member: str, window_start: float, window_end: float
) -> List[CriticalSegment]:
    """Partition ``[window_start, window_end]`` along the chain.

    Chain spans are clipped to the window and to the running cursor
    (causally ordered spans can overlap when a child starts before its
    parent's recorded end, e.g. a frame send overlapping the signing
    span); every uncovered stretch becomes an explicit wait segment.
    """
    segments: List[CriticalSegment] = []
    cursor = window_start
    for span in chain:
        if span.end <= cursor:
            continue
        start = span.start if span.start > cursor else cursor
        if start >= window_end:
            break
        end = span.end if span.end < window_end else window_end
        if start > cursor:
            segments.append(
                CriticalSegment(
                    member=member, phase="wait", name="wait",
                    start=cursor, end=start, duration=start - cursor,
                    category="wait",
                )
            )
        if end > start:
            segments.append(
                CriticalSegment(
                    member=span.actor, phase=_phase_of(span), name=span.name,
                    start=start, end=end, duration=end - start,
                    category=span.category, span_id=span.span_id,
                )
            )
        cursor = end
    if cursor < window_end:
        segments.append(
            CriticalSegment(
                member=member, phase="wait", name="wait",
                start=cursor, end=window_end, duration=window_end - cursor,
                category="wait",
            )
        )
    return segments


def critical_path(
    record: EpochRecord, recorder: SpanRecorder
) -> CriticalPath:
    """Extract the blocking chain of one complete epoch.

    Falls back to a single ``untraced`` segment spanning the whole window
    when the epoch recorded no causal ids (tracing was off, or the
    terminal instant was dropped) — the exact-sum invariant holds either
    way.
    """
    if record.event_started_at is None:
        raise ValueError("epoch never marked its event start")
    if not record.key_ready:
        raise ValueError("epoch has no key-ready members")
    member = _critical_member(record)
    window_start = record.event_started_at
    window_end = record.key_ready[member]
    total = record.total_elapsed()
    terminal = _terminal_span(recorder, record, member)
    truncated = False
    chain: List[Span] = []
    if terminal is not None and terminal.span_id is not None:
        chain, truncated = _walk_chain(terminal, recorder.by_id())
    if chain:
        segments = _tile(chain, member, window_start, window_end)
    else:
        segments = [
            CriticalSegment(
                member=member, phase="wait", name="untraced",
                start=window_start, end=window_end,
                duration=window_end - window_start, category="wait",
            )
        ]
    path = CriticalPath(
        epoch=record.epoch,
        member=member,
        trace_id=terminal.trace_id if terminal is not None else None,
        total=total,
        segments=segments,
        truncated=truncated,
    )
    # Exactness nudge: fold the telescoping-sum residual into the longest
    # segment until the plain left-to-right sum *is* the measured total.
    # Converges in one or two rounds; the bound is pure paranoia.
    if segments:
        longest = max(segments, key=lambda s: s.duration)
        for _ in range(64):
            plain = path.plain_sum()
            if plain == total:
                path.exact = True
                break
            longest.duration += total - plain
            longest.end = longest.start + longest.duration
    else:
        path.exact = total == 0.0
    return path


def timeline_critical_paths(
    timeline: RekeyTimeline, recorder: SpanRecorder
) -> List[CriticalPath]:
    """One :func:`critical_path` per complete, started epoch, in order."""
    paths = []
    for epoch in sorted(timeline.epochs):
        record = timeline.epochs[epoch]
        if record.complete() and record.event_started_at is not None:
            paths.append(critical_path(record, recorder))
    return paths


def render_critical_paths(paths: List[CriticalPath]) -> str:
    """Human-readable blocking chains, one table per epoch."""
    if not paths:
        return "No complete rekey epochs recorded."
    lines: List[str] = []
    for path in paths:
        config, eid = path.epoch
        trace = f", trace {path.trace_id}" if path.trace_id is not None else ""
        lines.append(
            f"Epoch ({config}, {eid}) — critical member {path.member}, "
            f"total {path.total:.3f} ms{trace}"
        )
        if path.truncated:
            lines.append(
                "  !! chain truncated: recorder dropped ancestor spans"
            )
        header = (
            f"  {'member':<10s} {'phase':<14s} {'span':<26s} "
            f"{'start':>10s} {'duration':>10s}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for segment in path.segments:
            lines.append(
                f"  {segment.member:<10s} {segment.phase:<14s} "
                f"{segment.name:<26s} {segment.start:10.3f} "
                f"{segment.duration:10.3f}"
            )
        checks = "exact" if path.exact else "INEXACT"
        lines.append(
            f"  sum {path.plain_sum():.3f} ms ({checks}, "
            f"{len(path.segments)} segments)"
        )
        lines.append("")
    return "\n".join(lines).rstrip("\n")
