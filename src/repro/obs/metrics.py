"""Metrics registry: counters, gauges and virtual-time histograms.

The paper's Table 1 reasons in *counts* — exponentiations, signatures,
messages, rounds — and §6 in *per-link traffic*.  The registry collects
exactly those: every instrument is identified by a name plus a frozen
label set (``counter("net.frames", src="m0", dst="m4")``), mirroring the
Prometheus data model so the JSONL export is mechanically convertible.

The :func:`record_op_counts` bridge turns an
:class:`~repro.crypto.ledger.OpCounts` delta into labelled counters, which
is how "exponentiations per epoch per member" becomes queryable without
touching the crypto layer.

Like the span recorder, the registry is passive: it never schedules
simulator events, so metrics collection cannot change any measured time.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.histo import SERIES_CAPACITY, LogHistogram, TimeSeries

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    Locally observed amounts accumulate in a plain float (the ``inc``
    hot path); totals folded in from worker-shard snapshots are kept as
    a list of partials and summed with :func:`math.fsum`, which is
    correctly rounded over the multiset — so a pool merge yields the
    identical float no matter which worker finished first.
    """

    __slots__ = ("name", "labels", "_value", "_merged")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._merged: List[float] = []

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    def merge(self, value: float) -> None:
        """Fold a shard's counter total in (order-independent)."""
        if value < 0:
            raise ValueError("counters only go up")
        self._merged.append(value)

    @property
    def value(self) -> float:
        if not self._merged:
            return self._value
        return math.fsum(self._merged) + self._value


class Gauge:
    """A value that can move both ways (queue depth, clock readings)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Summary statistics over observed virtual-time values.

    Merged shard totals are fsum partials, like :class:`Counter`, so
    :meth:`merge` commutes bit-exactly.
    """

    __slots__ = ("name", "labels", "count", "_total", "_merged", "min", "max")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.count = 0
        self._total = 0.0
        self._merged: List[float] = []
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self._total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(
        self,
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
    ) -> None:
        """Fold another histogram's summary into this one (worker merge)."""
        self.count += count
        self._merged.append(total)
        if minimum is not None:
            self.min = minimum if self.min is None else min(self.min, minimum)
        if maximum is not None:
            self.max = maximum if self.max is None else max(self.max, maximum)

    @property
    def total(self) -> float:
        if not self._merged:
            return self._total
        return math.fsum(self._merged) + self._total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Noop:
    """Shared sink handed out when the registry is disabled."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, time: float, value: float) -> None:
        pass


_NOOP = _Noop()


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._log_histograms: Dict[Tuple[str, LabelSet], LogHistogram] = {}
        self._series: Dict[Tuple[str, LabelSet], TimeSeries] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    def log_histogram(self, name: str, **labels: Any) -> LogHistogram:
        """Get-or-create a :class:`~repro.obs.histo.LogHistogram`."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._log_histograms.get(key)
        if instrument is None:
            instrument = self._log_histograms[key] = LogHistogram(name, key[1])
        return instrument

    def series(
        self, name: str, *, capacity: int = SERIES_CAPACITY, **labels: Any
    ) -> TimeSeries:
        """Get-or-create a bounded :class:`~repro.obs.histo.TimeSeries`."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = TimeSeries(
                name, key[1], capacity=capacity
            )
        return instrument

    def log_histograms(self) -> List[LogHistogram]:
        """Every log histogram held, in sorted (name, labels) order."""
        return [h for _, h in sorted(self._log_histograms.items())]

    # -- aggregation ------------------------------------------------------

    def counter_total(self, name: str, **labels: Any) -> float:
        """Sum of all counters with ``name`` whose labels include ``labels``."""
        want = set(_labelset(labels))
        return sum(
            c.value
            for (n, ls), c in self._counters.items()
            if n == name and want <= set(ls)
        )

    def iter_instruments(self) -> Iterator[Tuple[str, str, LabelSet, Any]]:
        """Yield ``(kind, name, labels, instrument)`` for everything held."""
        for (name, labels), c in sorted(self._counters.items()):
            yield "counter", name, labels, c
        for (name, labels), g in sorted(self._gauges.items()):
            yield "gauge", name, labels, g
        for (name, labels), h in sorted(self._histograms.items()):
            yield "histogram", name, labels, h
        for (name, labels), lh in sorted(self._log_histograms.items()):
            yield "log_histogram", name, labels, lh
        for (name, labels), s in sorted(self._series.items()):
            yield "series", name, labels, s

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready dump of every instrument."""
        rows: List[Dict[str, Any]] = []
        for kind, name, labels, instrument in self.iter_instruments():
            row: Dict[str, Any] = {
                "kind": kind, "name": name, "labels": dict(labels),
            }
            if kind == "histogram":
                row.update(
                    count=instrument.count,
                    total=instrument.total,
                    min=instrument.min,
                    max=instrument.max,
                    mean=instrument.mean,
                )
            elif kind == "log_histogram":
                row.update(
                    buckets=dict(instrument.buckets),
                    zero_count=instrument.zero_count,
                    count=instrument.count,
                    total=instrument.total,
                    min=instrument.min,
                    max=instrument.max,
                )
            elif kind == "series":
                row.update(
                    capacity=instrument.capacity,
                    points=[list(p) for p in instrument.points()],
                    recorded=instrument.recorded,
                )
            else:
                row["value"] = instrument.value
            rows.append(row)
        return rows

    def merge_snapshot(self, rows: List[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is how benchmark worker processes report back: each worker
        runs its cell against a fresh registry, ships
        ``registry.snapshot()`` across the process boundary, and the
        pool merges the rows here.  Counters and histograms (plain and
        log-bucketed) accumulate *order-independently* — float totals
        are folded as fsum partials, so shards merged in any completion
        order produce bit-identical snapshots.  Gauges take the incoming
        value (last merge wins, matching their point-in-time semantics —
        the one deliberately order-sensitive kind).  A disabled registry
        ignores merges, like every other recording path.
        """
        if not self.enabled:
            return
        for row in rows:
            labels = row.get("labels", {})
            kind = row.get("kind")
            if kind == "counter":
                self.counter(row["name"], **labels).merge(row["value"])
            elif kind == "gauge":
                self.gauge(row["name"], **labels).set(row["value"])
            elif kind == "histogram":
                self.histogram(row["name"], **labels).merge(
                    row["count"], row["total"], row["min"], row["max"]
                )
            elif kind == "log_histogram":
                self.log_histogram(row["name"], **labels).merge(
                    row["buckets"], row["zero_count"], row["count"],
                    row["total"], row["min"], row["max"],
                )
            elif kind == "series":
                self.series(
                    row["name"],
                    capacity=int(row.get("capacity", SERIES_CAPACITY)),
                    **labels,
                ).merge(row["points"], row["recorded"])

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._log_histograms.clear()
        self._series.clear()


def record_op_counts(
    metrics: MetricsRegistry, delta, **labels: Any
) -> None:
    """Bridge an :class:`~repro.crypto.ledger.OpCounts` delta into counters.

    Emits ``crypto.exponentiations`` / ``crypto.small_exp_multiplications``
    / ``crypto.multiplications`` (labelled by modulus ``bits``) plus
    ``crypto.signatures`` and ``crypto.verifications``, all carrying the
    caller's labels (typically ``member=...`` and ``epoch=...``).
    """
    if not metrics.enabled:
        return
    for bits, count in delta.exponentiations:
        metrics.counter("crypto.exponentiations", bits=bits, **labels).inc(count)
    for bits, count in delta.small_exp_multiplications:
        metrics.counter(
            "crypto.small_exp_multiplications", bits=bits, **labels
        ).inc(count)
    for bits, count in delta.multiplications:
        metrics.counter("crypto.multiplications", bits=bits, **labels).inc(count)
    if delta.signatures:
        metrics.counter("crypto.signatures", **labels).inc(delta.signatures)
    if delta.verifications:
        metrics.counter("crypto.verifications", **labels).inc(delta.verifications)
