"""Metrics registry: counters, gauges and virtual-time histograms.

The paper's Table 1 reasons in *counts* — exponentiations, signatures,
messages, rounds — and §6 in *per-link traffic*.  The registry collects
exactly those: every instrument is identified by a name plus a frozen
label set (``counter("net.frames", src="m0", dst="m4")``), mirroring the
Prometheus data model so the JSONL export is mechanically convertible.

The :func:`record_op_counts` bridge turns an
:class:`~repro.crypto.ledger.OpCounts` delta into labelled counters, which
is how "exponentiations per epoch per member" becomes queryable without
touching the crypto layer.

Like the span recorder, the registry is passive: it never schedules
simulator events, so metrics collection cannot change any measured time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, clock readings)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Summary statistics over observed virtual-time values."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(
        self,
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
    ) -> None:
        """Fold another histogram's summary into this one (worker merge)."""
        self.count += count
        self.total += total
        if minimum is not None:
            self.min = minimum if self.min is None else min(self.min, minimum)
        if maximum is not None:
            self.max = maximum if self.max is None else max(self.max, maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Noop:
    """Shared sink handed out when the registry is disabled."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP = _Noop()


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    # -- aggregation ------------------------------------------------------

    def counter_total(self, name: str, **labels: Any) -> float:
        """Sum of all counters with ``name`` whose labels include ``labels``."""
        want = set(_labelset(labels))
        return sum(
            c.value
            for (n, ls), c in self._counters.items()
            if n == name and want <= set(ls)
        )

    def iter_instruments(self) -> Iterator[Tuple[str, str, LabelSet, Any]]:
        """Yield ``(kind, name, labels, instrument)`` for everything held."""
        for (name, labels), c in sorted(self._counters.items()):
            yield "counter", name, labels, c
        for (name, labels), g in sorted(self._gauges.items()):
            yield "gauge", name, labels, g
        for (name, labels), h in sorted(self._histograms.items()):
            yield "histogram", name, labels, h

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready dump of every instrument."""
        rows: List[Dict[str, Any]] = []
        for kind, name, labels, instrument in self.iter_instruments():
            row: Dict[str, Any] = {
                "kind": kind, "name": name, "labels": dict(labels),
            }
            if kind == "histogram":
                row.update(
                    count=instrument.count,
                    total=instrument.total,
                    min=instrument.min,
                    max=instrument.max,
                    mean=instrument.mean,
                )
            else:
                row["value"] = instrument.value
            rows.append(row)
        return rows

    def merge_snapshot(self, rows: List[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is how benchmark worker processes report back: each worker
        runs its cell against a fresh registry, ships
        ``registry.snapshot()`` across the process boundary, and the
        pool merges the rows here.  Counters and histograms accumulate;
        gauges take the incoming value (last merge wins, matching their
        point-in-time semantics).  A disabled registry ignores merges,
        like every other recording path.
        """
        if not self.enabled:
            return
        for row in rows:
            labels = row.get("labels", {})
            kind = row.get("kind")
            if kind == "counter":
                self.counter(row["name"], **labels).inc(row["value"])
            elif kind == "gauge":
                self.gauge(row["name"], **labels).set(row["value"])
            elif kind == "histogram":
                self.histogram(row["name"], **labels).merge(
                    row["count"], row["total"], row["min"], row["max"]
                )

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def record_op_counts(
    metrics: MetricsRegistry, delta, **labels: Any
) -> None:
    """Bridge an :class:`~repro.crypto.ledger.OpCounts` delta into counters.

    Emits ``crypto.exponentiations`` / ``crypto.small_exp_multiplications``
    / ``crypto.multiplications`` (labelled by modulus ``bits``) plus
    ``crypto.signatures`` and ``crypto.verifications``, all carrying the
    caller's labels (typically ``member=...`` and ``epoch=...``).
    """
    if not metrics.enabled:
        return
    for bits, count in delta.exponentiations:
        metrics.counter("crypto.exponentiations", bits=bits, **labels).inc(count)
    for bits, count in delta.small_exp_multiplications:
        metrics.counter(
            "crypto.small_exp_multiplications", bits=bits, **labels
        ).inc(count)
    for bits, count in delta.multiplications:
        metrics.counter("crypto.multiplications", bits=bits, **labels).inc(count)
    if delta.signatures:
        metrics.counter("crypto.signatures", **labels).inc(delta.signatures)
    if delta.verifications:
        metrics.counter("crypto.verifications", **labels).inc(delta.verifications)
