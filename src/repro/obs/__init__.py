"""``repro.obs`` — the flight recorder for the whole stack.

One :class:`Observability` object per simulated deployment bundles a
:class:`~repro.obs.spans.SpanRecorder` and a
:class:`~repro.obs.metrics.MetricsRegistry`.  Every layer — the CPU model,
the network, the daemons, the key agreement protocols and the Secure
Spread members — holds a reference and records into it; exporters turn
the result into JSONL, Chrome trace-event JSON, or the per-epoch phase
report that reconciles against :class:`~repro.core.timing.RekeyTimeline`.

Disabled (the default) it is a near-free no-op, and even when enabled it
is *passive*: it never schedules simulator events, so observed runs are
bit-identical to unobserved ones.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.causality import Causality, Cause
from repro.obs.critpath import (
    CriticalPath,
    CriticalSegment,
    critical_path,
    render_critical_paths,
    timeline_critical_paths,
)
from repro.obs.export import (
    JSONL_SCHEMA_VERSION,
    spans_to_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.histo import LogHistogram, TimeSeries, render_percentiles
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_op_counts,
)
from repro.obs.report import (
    PhaseBreakdown,
    epoch_breakdown,
    render_breakdowns,
    render_report,
    timeline_breakdowns,
)
from repro.obs.spans import DEFAULT_CAPACITY, Span, SpanRecorder, busy_time

__all__ = [
    "Causality",
    "Cause",
    "Counter",
    "CriticalPath",
    "CriticalSegment",
    "Gauge",
    "Histogram",
    "JSONL_SCHEMA_VERSION",
    "LogHistogram",
    "MetricsRegistry",
    "Observability",
    "PhaseBreakdown",
    "Span",
    "SpanRecorder",
    "TimeSeries",
    "busy_time",
    "critical_path",
    "epoch_breakdown",
    "record_op_counts",
    "render_breakdowns",
    "render_critical_paths",
    "render_percentiles",
    "render_report",
    "spans_to_jsonl",
    "timeline_breakdowns",
    "timeline_critical_paths",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]


class Observability:
    """Spans + metrics for one deployment, behind a single enable switch."""

    def __init__(
        self, enabled: bool = False, span_capacity: int = DEFAULT_CAPACITY
    ):
        self.enabled = enabled
        self.spans = SpanRecorder(enabled=enabled, capacity=span_capacity)
        self.metrics = MetricsRegistry(enabled=enabled)
        #: causal context (span/trace ids); install as
        #: :attr:`repro.sim.engine.Simulator.cause_hook` to thread causes
        #: through the event graph.
        self.causality = Causality()

    # Convenience pass-throughs so call-sites read naturally.

    def span(
        self,
        category: str,
        name: str,
        actor: str,
        proc: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> None:
        self.spans.record(category, name, actor, proc, start, end, **attrs)

    def instant(
        self, category: str, name: str, actor: str, proc: str, time: float,
        **attrs: Any,
    ) -> None:
        self.spans.instant(category, name, actor, proc, time, **attrs)

    def caused_span(
        self,
        category: str,
        name: str,
        actor: str,
        proc: str,
        start: float,
        end: float,
        **attrs: Any,
    ):
        """Record a span parented under the ambient cause and return its
        own cause (None outside a trace); callers adopt the returned
        cause when subsequent activity waits on this span."""
        causality = self.causality
        parent = causality.current
        cause = causality.sprout()
        self.spans.record(
            category, name, actor, proc, start, end,
            span_id=cause[0] if cause else None,
            parent_id=parent[0] if parent else None,
            trace_id=cause[1] if cause else None,
            **attrs,
        )
        return cause

    def caused_instant(
        self, category: str, name: str, actor: str, proc: str, time: float,
        **attrs: Any,
    ):
        """Instant-marker variant of :meth:`caused_span`."""
        return self.caused_span(
            category, name, actor, proc, time, time, **attrs
        )

    def counter(self, name: str, **labels: Any):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any):
        return self.metrics.histogram(name, **labels)

    def log_histogram(self, name: str, **labels: Any):
        return self.metrics.log_histogram(name, **labels)

    def series(self, name: str, **labels: Any):
        return self.metrics.series(name, **labels)

    # -- export -----------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Dump spans then a metrics snapshot as JSON lines; returns the
        total line count."""
        count = spans_to_jsonl(self.spans.spans, path)
        with open(path, "a") as handle:
            for row in self.metrics.snapshot():
                handle.write(json.dumps({"metric": row}, sort_keys=True) + "\n")
                count += 1
        return count

    def write_chrome_trace(self, path: str):
        """Write the span set as Chrome trace-event JSON; returns the dict."""
        return write_chrome_trace(self.spans.spans, path)

    def clear(self) -> None:
        self.spans.clear()
        self.metrics.clear()
        self.causality.reset()


#: A shared disabled instance for layers constructed without observability.
NULL_OBS: Optional[Observability] = Observability(enabled=False)
