"""Causal context for the span DAG: who caused what, recorded not inferred.

Every rekey epoch becomes a *trace*: the membership event's injection
instant is the root span, and from there a cause — a ``(span_id,
trace_id)`` pair — is threaded through every layer that moves the rekey
forward:

* the simulator stamps the ambient cause on every scheduled event and
  restores it when the event fires (:attr:`repro.sim.engine.Simulator.
  cause_hook`), so causality follows the event graph by default;
* layers where the default is *wrong* override it explicitly — the token
  ring fires sequencing callbacks in the token's context, so the daemon
  carries the sender's cause on the message; a daemon's delivery scan
  runs in the *triggering* frame's context, so the arrival cause of each
  frame is recorded at receipt and adopted at delivery; a CPU batch may
  be gated by core contention rather than by its submitter, so
  :meth:`repro.sim.cpu.Machine.submit` picks the parent by whichever
  bound actually delayed the start.

The result is that every span carries ``span_id``/``parent_id``/
``trace_id`` and the DAG of who-waited-on-whom is *recorded*:
:mod:`repro.obs.critpath` walks it backwards from key-install to extract
the exact blocking chain, and the Chrome-trace exporter draws the edges
as flow arrows.

Like every other part of ``repro.obs`` this is passive — a
:class:`Causality` never schedules events and only ever hands out ids —
so tracing cannot perturb the virtual timeline.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

#: A cause: the (span_id, trace_id) of the span that made something happen.
Cause = Tuple[int, int]


class Causality:
    """Span/trace id allotment plus the ambient "current cause" slot.

    The simulation is single-threaded, so one mutable ``current`` slot is
    the whole context machinery: the simulator sets it to the firing
    event's recorded cause, layers override it where the event graph and
    the causal graph disagree, and every span recorded with
    :meth:`repro.obs.Observability.caused_span` parents under it.
    """

    def __init__(self) -> None:
        self._next_span = itertools.count(1)
        self._next_trace = itertools.count(1)
        #: the cause of whatever is happening right now (None outside a trace)
        self.current: Optional[Cause] = None
        #: the cause of the most recent CPU span recorded by
        #: :meth:`repro.sim.cpu.Machine.submit` — read back immediately by
        #: the submitter to stamp events it schedules at the CPU tail.
        self.last_cpu_span: Optional[Cause] = None

    def new_span_id(self) -> int:
        """A fresh span id (ids are unique per deployment, issue order)."""
        return next(self._next_span)

    def begin_trace(self) -> int:
        """Open a new trace (one per membership event) and return its id."""
        return next(self._next_trace)

    def adopt(self, cause: Optional[Cause]) -> None:
        """Override the ambient cause (the recorded-not-inferred hook)."""
        self.current = cause

    def sprout(self) -> Optional[Cause]:
        """Allocate a child cause of the current one.

        Returns ``(new_span_id, current_trace_id)`` — or None when no
        trace is active, so pre-trace activity (group growth before the
        measured event) stays untraced rather than inventing orphan ids.
        """
        if self.current is None:
            return None
        return (self.new_span_id(), self.current[1])

    def reset(self) -> None:
        """Forget the ambient context (ids keep advancing: never reused)."""
        self.current = None
        self.last_cpu_span = None
