"""Deterministic discrete-event simulation engine.

Provides the virtual clock and event loop everything else runs on
(:mod:`repro.sim.engine`), a multi-core CPU contention model that reproduces
the paper's dual-processor testbed machines (:mod:`repro.sim.cpu`), and
structured tracing for tests and debugging (:mod:`repro.sim.trace`).
"""

from repro.sim.cpu import Machine
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["Event", "Simulator", "Machine", "TraceEvent", "Tracer"]
