"""Structured tracing of simulation activity.

Tests assert on traces (e.g. "all daemons delivered the same sequence of
agreed messages"), and benchmark debugging uses them to decompose elapsed
time into membership, communication and computation.  (For hierarchical,
exporter-backed tracing see :mod:`repro.obs` — this module is the flat
event log the GCS layer feeds.)

The tracer is *bounded*: long benchmark runs used to grow ``events``
without limit; now, once ``capacity`` events are held, further records are
counted in :attr:`Tracer.dropped` instead of stored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Default event capacity: ample for every shipped test and benchmark,
#: bounded so an unattended run cannot exhaust memory.
DEFAULT_CAPACITY = 1_000_000


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence: what happened, where, and when."""

    time: float
    category: str
    actor: str
    detail: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceEvent` records; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        #: events discarded because the capacity was reached
        self.dropped = 0

    def record(self, time: float, category: str, actor: str, **detail: Any) -> None:
        """Append one trace event (no-op when disabled, counted when full)."""
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, category, actor, detail))

    def filter(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria, in time order."""
        selected = self.events
        if category is not None:
            selected = [e for e in selected if e.category == category]
        if actor is not None:
            selected = [e for e in selected if e.actor == actor]
        if predicate is not None:
            selected = [e for e in selected if predicate(e)]
        return selected

    def to_jsonl(self, path: str) -> int:
        """Write one JSON object per event; returns the number written."""
        count = 0
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps({
                    "time": event.time,
                    "category": event.category,
                    "actor": event.actor,
                    "detail": event.detail,
                }, sort_keys=True, default=str) + "\n")
                count += 1
        return count

    def clear(self) -> None:
        """Drop all recorded events and reset the drop counter."""
        self.events.clear()
        self.dropped = 0
