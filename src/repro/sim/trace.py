"""Structured tracing of simulation activity.

Tests assert on traces (e.g. "all daemons delivered the same sequence of
agreed messages"), and benchmark debugging uses them to decompose elapsed
time into membership, communication and computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence: what happened, where, and when."""

    time: float
    category: str
    actor: str
    detail: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceEvent` records; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, time: float, category: str, actor: str, **detail: Any) -> None:
        """Append one trace event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time, category, actor, detail))

    def filter(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria, in time order."""
        selected = self.events
        if category is not None:
            selected = [e for e in selected if e.category == category]
        if actor is not None:
            selected = [e for e in selected if e.actor == actor]
        if predicate is not None:
            selected = [e for e in selected if predicate(e)]
        return selected

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
