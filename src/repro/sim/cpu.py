"""Machines with a fixed number of cores; CPU work serializes under load.

The paper's LAN testbed is thirteen *dual-processor* 666 MHz Pentium III
machines with group members distributed uniformly across them (§6.1.1).
Two of its findings depend directly on CPU contention:

* BD's cost "roughly doubles as the group size grows in increments of 13"
  — every 13 new members put one more busy process on each machine;
* performance degrades noticeably past 26 members — the point where a
  dual-CPU machine first runs more than one process per core.

:class:`Machine` models exactly that: submitted work units are placed on the
least-loaded core FIFO, and a machine's ``speed`` scales work duration (the
WAN testbed mixes platforms of different speeds).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.engine import Simulator


class Machine:
    """A simulated host with ``cores`` CPUs of relative speed ``speed``.

    ``speed=1.0`` is the reference platform the
    :class:`~repro.crypto.costmodel.CostModel` is calibrated for; a machine
    with ``speed=0.5`` takes twice the virtual time for the same work.
    """

    def __init__(
        self, name: str, site: str = "lan", cores: int = 2, speed: float = 1.0
    ):
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.name = name
        self.site = site
        self.cores = cores
        self.speed = speed
        self._core_free: List[float] = [0.0] * cores
        # Cause of the last span run on each core, for causal parenting:
        # a batch gated by core contention waited on *that* span, whoever
        # submitted it (the paper's BD-doubling effect made visible).
        self._core_span: List[Optional[tuple]] = [None] * cores
        self.total_work_ms = 0.0
        #: optional :class:`repro.obs.Observability` flight recorder; when
        #: attached (by :class:`~repro.gcs.world.GcsWorld`) and enabled,
        #: every submitted work unit becomes a span on this machine's
        #: Chrome-trace "process".
        self.obs = None

    def submit(
        self,
        sim: Simulator,
        work_ms: float,
        fn: Optional[Callable] = None,
        *args: Any,
        not_before: float = 0.0,
        span: Optional[tuple] = None,
        chain: Optional[tuple] = None,
    ) -> float:
        """Queue ``work_ms`` of reference-speed CPU work on this machine.

        The work starts on the core that frees up first (but never before
        ``not_before`` — used to serialize a single process's tasks) and
        runs for ``work_ms / speed`` virtual milliseconds.  When ``fn`` is
        given it fires at completion.  Returns the completion time.

        ``span`` is an optional ``(category, name, actor, attrs)`` tuple;
        with an enabled recorder attached it is recorded over the work's
        actual busy interval (queueing delay excluded), which is what the
        per-epoch report counts as "computation".

        ``chain`` is the submitter's previous CPU span cause, used only
        for causal parenting: the recorded span's parent is whichever
        bound actually gated its start — the core's last span under
        contention, ``chain`` when serialized behind the submitter's own
        earlier work, the ambient cause otherwise.
        """
        if work_ms < 0:
            raise ValueError("work_ms must be non-negative")
        duration = work_ms / self.speed
        # argmin over core free-times, first-wins on ties (as
        # ``min(range, key=...)`` picked); unrolled because this runs
        # once per protocol-message handler.  Dual-core machines — the
        # paper's entire LAN testbed — take the branch-only path.
        core_free = self._core_free
        if len(core_free) == 2:
            if core_free[1] < core_free[0]:
                index = 1
                best = core_free[1]
            else:
                index = 0
                best = core_free[0]
        else:
            index = 0
            best = core_free[0]
            for i in range(1, len(core_free)):
                free = core_free[i]
                if free < best:
                    best = free
                    index = i
        now = sim.now
        start = now if now > not_before else not_before
        if best > start:
            core_gated = True
            start = best
        else:
            core_gated = False
        finish = start + duration
        self._core_free[index] = finish
        self.total_work_ms += duration
        cause = None
        if span is not None and self.obs is not None and self.obs.enabled:
            category, span_name, actor, attrs = span
            causality = self.obs.causality
            # Causal parent: whichever bound gated the start.  Core
            # contention means we waited on another span on this core;
            # ``not_before`` means our own prior work; otherwise whatever
            # caused the submit.
            if core_gated:
                parent = self._core_span[index]
            elif not_before > now:
                parent = chain
            else:
                parent = causality.current
            if parent is None:
                parent = causality.current
            if parent is not None:
                cause = (causality.new_span_id(), parent[1])
            self.obs.span(
                category, span_name, actor, self.name, start, finish,
                span_id=cause[0] if cause else None,
                parent_id=parent[0] if parent else None,
                trace_id=cause[1] if cause else None,
                **(attrs or {}),
            )
            self.obs.counter("cpu.work_ms", machine=self.name).inc(duration)
            self._core_span[index] = cause
            causality.last_cpu_span = cause
        if fn is not None:
            event = sim.schedule_at(finish, fn, *args)
            if cause is not None:
                # The completion callback was caused by the CPU span, not
                # by whatever context submitted the work.
                event.cause = cause
        return finish

    def busy_until(self, sim: Simulator) -> float:
        """Earliest time a newly submitted task could start."""
        return max(sim.now, min(self._core_free))

    def utilization_horizon(self) -> float:
        """Latest time any core is currently booked until."""
        return max(self._core_free)

    def reset(self) -> None:
        """Clear all queued work (used between benchmark repetitions)."""
        self._core_free = [0.0] * self.cores
        self._core_span = [None] * self.cores
        self.total_work_ms = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.name!r}, site={self.site!r}, cores={self.cores}, "
            f"speed={self.speed})"
        )
