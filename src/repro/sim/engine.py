"""Event heap and virtual clock.

All times are virtual milliseconds.  Events scheduled for the same instant
fire in scheduling order (a monotonic sequence number breaks ties), which
makes every simulation fully deterministic.

Internally the queue is a *time-bucketed* heap: events are grouped into
per-instant lists (appended in scheduling order, so seq order is free) and
the binary heap orders only the distinct times.  Simulations of broadcast
protocols schedule long runs of events at the same instant — a daemon
fanning one frame out to n receivers — and draining such a run is a
pointer walk along one list instead of n ``heappop``s with
``(time, seq)`` tuple comparisons.  The observable semantics (firing
order, cancellation, the ``pending`` counters) are identical to a plain
event heap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_owner", "cause")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._owner: Optional["Simulator"] = None
        #: causal provenance: the (span_id, trace_id) active when the
        #: event was scheduled (see :attr:`Simulator.cause_hook`).  Pure
        #: metadata — never consulted by the queue itself.
        self.cause = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.3f}, {name})"


class Simulator:
    """Discrete-event simulator with a millisecond virtual clock."""

    #: lazy queue compaction: rebuild once this many cancelled events sit in
    #: the queue *and* they outnumber the live ones.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        #: events per distinct instant, in scheduling (== seq) order
        self._buckets: Dict[float, List[Event]] = {}
        #: heap of the bucket times (exactly one entry per bucket)
        self._times: List[float] = []
        #: the bucket currently being drained (already popped from the
        #: dict, so same-instant events scheduled mid-drain start a fresh
        #: bucket behind it) and the drain pointer into it
        self._active: Optional[List[Event]] = None
        self._active_index = 0
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._queued = 0
        #: optional :class:`repro.obs.causality.Causality`: when set,
        #: :meth:`schedule_at` stamps its ``current`` cause on the new
        #: event and firing restores it, so causal context follows the
        #: event graph without touching any scheduling decision.  None
        #: (the default) keeps the hot paths to one attribute test.
        self.cause_hook = None
        #: optional callable invoked with each bucket (the event list of
        #: one distinct instant) as it is activated for draining, before
        #: any of its events fire.  Because same-instant events scheduled
        #: mid-drain start a *fresh* bucket, every event in an activating
        #: bucket was scheduled before the drain began — so a hook may
        #: inspect them to prefetch work (the epoch crypto sharder does),
        #: but must not schedule, cancel or mutate events.  None (the
        #: default) keeps bucket activation to one attribute test.
        self.bucket_hook = None

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return self._queued

    @property
    def active_pending(self) -> int:
        """Number of queued events that will actually fire.

        ``pending`` counts queue entries, including events cancelled but
        not yet consumed; this is the honest queue depth for tests,
        benchmarks and the observability gauges.
        """
        return self._queued - self._cancelled_in_queue

    def _note_cancelled(self) -> None:
        """An owned, still-queued event was cancelled (called by Event)."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self._COMPACT_MIN
            and self._cancelled_in_queue * 2 > self._queued
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled bucket entries and rebuild the time heap.

        The partially drained active bucket is left alone — its cancelled
        remainder is skipped (and discounted) as the drain pointer passes
        it — so compaction is safe even when triggered from inside a
        firing event.
        """
        for time_key in list(self._buckets):
            live = [e for e in self._buckets[time_key] if not e.cancelled]
            if live:
                self._buckets[time_key] = live
            else:
                del self._buckets[time_key]
        self._times = list(self._buckets)
        heapq.heapify(self._times)
        remaining = 0
        cancelled = 0
        if self._active is not None:
            tail = self._active[self._active_index :]
            remaining = len(tail)
            cancelled = sum(1 for e in tail if e.cancelled)
        self._queued = sum(map(len, self._buckets.values())) + remaining
        self._cancelled_in_queue = cancelled

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} (now is {self.now})")
        event = Event(time, next(self._seq), fn, args)
        event._owner = self
        hook = self.cause_hook
        if hook is not None:
            event.cause = hook.current
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._queued += 1
        return event

    def _next_live(self) -> Optional[Event]:
        """The next event that will fire, without consuming it.

        Cancelled entries on the way are consumed (they never fire), and
        fully drained buckets are replaced by the next time off the heap.
        """
        while True:
            bucket = self._active
            if bucket is not None:
                index = self._active_index
                size = len(bucket)
                while index < size:
                    event = bucket[index]
                    if not event.cancelled:
                        self._active_index = index
                        if self._times and self._times[0] < event.time:
                            # An earlier bucket appeared since this one was
                            # popped (a ``run(until=...)`` stopped short of
                            # it, then earlier events were scheduled): put
                            # the remainder back, ahead of any same-instant
                            # events scheduled meanwhile (they carry higher
                            # seqs), and take the earlier bucket instead.
                            remainder = bucket[index:]
                            later = self._buckets.get(event.time)
                            if later is None:
                                heapq.heappush(self._times, event.time)
                                self._buckets[event.time] = remainder
                            else:
                                self._buckets[event.time] = remainder + later
                            break
                        return event
                    event._owner = None
                    self._queued -= 1
                    self._cancelled_in_queue -= 1
                    index += 1
                self._active = None
                self._active_index = 0
            if not self._times:
                return None
            time = heapq.heappop(self._times)
            self._active = self._buckets.pop(time)
            self._active_index = 0
            hook = self.bucket_hook
            if hook is not None:
                hook(self._active)

    def _consume(self, event: Event) -> None:
        """Fire ``event`` (the one :meth:`_next_live` just returned)."""
        self._active_index += 1
        self._queued -= 1
        event._owner = None  # out of the queue; cancel() is a no-op now
        self.now = event.time
        self._events_processed += 1
        hook = self.cause_hook
        if hook is not None:
            hook.current = event.cause
        event.fn(*event.args)

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when idle."""
        event = self._next_live()
        if event is None:
            return False
        self._consume(event)
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` more events have fired.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        if the queue drains earlier, so back-to-back ``run(until=...)``
        calls behave like a continuous timeline.
        """
        remaining = max_events
        while True:
            if remaining is not None and remaining <= 0:
                break
            event = self._next_live()
            if event is None:
                break
            if until is not None and event.time > until:
                break
            self._consume(event)
            if remaining is not None:
                remaining -= 1
        if until is not None and until > self.now:
            self.now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely; guard against runaway simulations.

        Fires at most ``max_events`` events: the guard raises as soon as
        the budget is exhausted while live events remain, rather than
        firing one event past it.

        The loop inlines :meth:`step`'s overwhelmingly common case — the
        active bucket's next entry is live and no earlier-time bucket has
        appeared — because draining the queue is *the* simulator hot
        loop; the rare cases (cancelled entry, drained bucket, stranded
        active bucket) fall back to :meth:`step` unchanged.
        """
        fired = 0
        while True:
            bucket = self._active
            if bucket is not None and self._active_index < len(bucket):
                event = bucket[self._active_index]
                times = self._times
                if not event.cancelled and not (times and times[0] < event.time):
                    self._active_index += 1
                    self._queued -= 1
                    event._owner = None
                    self.now = event.time
                    self._events_processed += 1
                    hook = self.cause_hook
                    if hook is not None:
                        hook.current = event.cause
                    event.fn(*event.args)
                elif not self.step():
                    break
            elif not self.step():
                break
            fired += 1
            if fired >= max_events and self.active_pending > 0:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
