"""Event heap and virtual clock.

All times are virtual milliseconds.  Events scheduled for the same instant
fire in scheduling order (a monotonic sequence number breaks ties), which
makes every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_owner")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.3f}, {name})"


class Simulator:
    """Discrete-event simulator with a millisecond virtual clock."""

    #: lazy heap compaction: rebuild once this many cancelled events sit in
    #: the heap *and* they outnumber the live ones.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_heap = 0

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def active_pending(self) -> int:
        """Number of queued events that will actually fire.

        ``pending`` counts heap entries, including events cancelled but not
        yet popped; this is the honest queue depth for tests, benchmarks
        and the observability gauges.
        """
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """An owned, still-queued event was cancelled (called by Event)."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self._COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (lazy heap compaction)."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} (now is {self.now})")
        event = Event(time, next(self._seq), fn, args)
        event._owner = self
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._owner = None  # out of the heap; cancel() is a no-op now
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` more events have fired.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        if the heap drains earlier, so back-to-back ``run(until=...)`` calls
        behave like a continuous timeline.
        """
        remaining = max_events
        while self._heap:
            if remaining is not None and remaining <= 0:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                head._owner = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and head.time > until:
                break
            self.step()
            if remaining is not None:
                remaining -= 1
        if until is not None and until > self.now:
            self.now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain the heap completely; guard against runaway simulations."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
