"""Wall-clock stand-ins for the simulator's scheduler and machines.

The secure-group core is written against two small substrate objects: a
scheduler (``now`` in milliseconds, ``schedule``/``schedule_at``) and a
:class:`~repro.sim.cpu.Machine` whose ``submit`` serializes modeled CPU
work.  On the live asyncio backend both map onto the event loop:

* :class:`WallScheduler` reads the loop's monotonic clock (rebased to 0
  at construction so timeline arithmetic looks like a simulation run)
  and turns ``schedule``/``schedule_at`` into ``call_later``/``call_at``;
* :class:`WallMachine` is a **pass-through**: live protocol code has
  already *spent* real CPU time by the time it charges its modeled cost,
  so ``submit`` performs no queueing — it returns ``max(now,
  not_before)`` and fires completion callbacks on the next loop tick.
  Modeled costs are still accumulated in :attr:`WallMachine.
  total_work_ms` so a live run can report how much CPU the cost model
  *predicted* alongside what the wall clock actually measured.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional


class _WallEvent:
    """Handle for a scheduled callback; carries the ``cause`` attribute
    the causal tracer sets on simulator events (ignored here)."""

    __slots__ = ("handle", "cause")

    def __init__(self, handle: asyncio.TimerHandle):
        self.handle = handle
        self.cause = None

    def cancel(self) -> None:
        self.handle.cancel()


class WallScheduler:
    """The event loop's clock and timers behind the scheduler interface.

    Times are wall-clock milliseconds since this scheduler was created,
    so ``now`` starts near 0.0 like a fresh :class:`~repro.sim.engine.
    Simulator` and :class:`~repro.core.timing.RekeyTimeline` spans read
    the same either way.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        # The loop is resolved lazily: a scheduler may be constructed
        # before the event loop runs (the transport builds its machinery
        # eagerly), and ``asyncio.get_event_loop()`` outside a running
        # loop is deprecated/raising on modern Pythons.
        self._explicit_loop = loop
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0

    def _live_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = (
                self._explicit_loop
                if self._explicit_loop is not None
                else asyncio.get_running_loop()
            )
            self._t0 = self._loop.time()
        return self._loop

    @property
    def now(self) -> float:
        """Milliseconds of wall-clock time since the scheduler started.

        Before the event loop runs the clock reads 0.0 — the scheduler
        starts ticking with the loop, not at construction.
        """
        if self._loop is None and self._explicit_loop is None:
            try:
                asyncio.get_running_loop()
            except RuntimeError:
                return 0.0
        loop = self._live_loop()
        return (loop.time() - self._t0) * 1000.0

    def schedule(self, delay_ms: float, fn: Callable, *args: Any) -> _WallEvent:
        """Run ``fn(*args)`` after ``delay_ms`` wall-clock milliseconds."""
        if delay_ms < 0:
            raise ValueError("cannot schedule into the past")
        loop = self._live_loop()
        return _WallEvent(loop.call_later(delay_ms / 1000.0, fn, *args))

    def schedule_at(self, time_ms: float, fn: Callable, *args: Any) -> _WallEvent:
        """Run ``fn(*args)`` at absolute scheduler time ``time_ms``
        (clamped to "immediately" when the instant has already passed —
        the live clock, unlike the simulator's, cannot be rewound)."""
        loop = self._live_loop()
        return _WallEvent(
            loop.call_at(self._t0 + max(time_ms, self.now) / 1000.0, fn, *args)
        )


class WallMachine:
    """A live host: CPU charging is a pass-through (see module docstring)."""

    def __init__(
        self, name: str, site: str = "live", cores: int = 0, speed: float = 1.0
    ):
        self.name = name
        self.site = site
        self.cores = cores
        self.speed = speed
        #: modeled work charged so far — the cost model's *prediction*,
        #: not measured CPU time
        self.total_work_ms = 0.0
        self.obs = None

    def submit(
        self,
        sim: WallScheduler,
        work_ms: float,
        fn: Optional[Callable] = None,
        *args: Any,
        not_before: float = 0.0,
        span: Optional[tuple] = None,
        chain: Optional[tuple] = None,
    ) -> float:
        """Charge modeled work without adding wall-clock delay.

        The real computation already happened inline, so the "completion
        time" is simply ``max(now, not_before)``; any completion callback
        fires on the next loop iteration, preserving the simulator's
        run-to-completion semantics (callbacks never reenter the caller).
        """
        if work_ms < 0:
            raise ValueError("work_ms must be non-negative")
        self.total_work_ms += work_ms
        finish = max(sim.now, not_before)
        if fn is not None:
            sim.schedule_at(finish, fn, *args)
        return finish

    def busy_until(self, sim: WallScheduler) -> float:
        """A live machine is never booked ahead: work starts now."""
        return sim.now

    def utilization_horizon(self) -> float:
        return 0.0

    def reset(self) -> None:
        self.total_work_ms = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallMachine({self.name!r}, site={self.site!r})"
