"""The length-prefixed wire protocol between NetClient and NetDaemon.

Every frame on the socket is::

    +----------------+--------+----------------------+
    | length (u32 BE)| type   | body (pickled dict)  |
    +----------------+--------+----------------------+
         4 bytes       1 byte    length - 1 bytes

``length`` counts the type byte plus the body.  The body is a plain
``dict`` serialized with :mod:`pickle`; application payloads travel
inside it as an opaque ``bytes`` field (the daemon routes them without
deserializing).  Pickle keeps the wire format faithful to what the
simulator passes by reference — arbitrary protocol-message objects —
at the cost of trusting the peer, which is the right trade for a
loopback/LAN measurement harness and documented as such.  Do not expose
a daemon to untrusted networks.

Frame sizes are bounded (:data:`MAX_FRAME_BYTES`) and validated on both
ends, so a corrupt or hostile length prefix fails fast with
:class:`WireError` instead of an unbounded allocation.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from enum import IntEnum
from typing import Any, Dict, Tuple

#: bump when the frame layout or the handshake changes incompatibly
WIRE_VERSION = 1

#: hard cap on one frame: the 140 KB payload limit plus generous envelope
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class WireError(Exception):
    """A malformed, oversized or out-of-protocol frame."""


class FrameType(IntEnum):
    """One byte on the wire, client->daemon unless noted."""

    #: first frame after connect: ``{"name", "version"}``
    HELLO = 1
    #: daemon->client handshake reply: ``{"config_id", "version"}``
    WELCOME = 2
    #: ``{"group"}``
    JOIN = 3
    #: ``{"group"}``
    LEAVE = 4
    #: ``{"group", "service", "target", "payload", "size_bytes", "kind"}``
    MULTICAST = 5
    #: daemon->client data delivery: MULTICAST fields + ``{"sender"}``
    DELIVER = 6
    #: daemon->client view installation: ``{"group", "view_id", "members",
    #: "event", "joined", "left"}``
    VIEW = 7
    #: heartbeat (either direction); body carries ``{"t"}`` for debugging
    PING = 8
    #: orderly goodbye (client->daemon); daemon treats it as disconnect
    BYE = 9
    #: daemon->client fatal protocol error: ``{"error"}``; connection closes
    ERROR = 10


def pack_frame(ftype: FrameType, body: Dict[str, Any]) -> bytes:
    """Serialize one frame, length prefix included."""
    blob = pickle.dumps(body, protocol=4)
    length = len(blob) + 1
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(length) + bytes((int(ftype),)) + blob


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[FrameType, Dict[str, Any]]:
    """Read one frame; raises :class:`WireError` on malformed input and
    :class:`asyncio.IncompleteReadError` on EOF mid-frame."""
    header = await reader.readexactly(4)
    (length,) = _LENGTH.unpack(header)
    if not 1 <= length <= MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} out of bounds")
    blob = await reader.readexactly(length)
    try:
        ftype = FrameType(blob[0])
    except ValueError:
        raise WireError(f"unknown frame type {blob[0]}") from None
    try:
        body = pickle.loads(blob[1:])
    except Exception as error:  # pickle raises many concrete types
        raise WireError(f"undecodable {ftype.name} body: {error}") from error
    if not isinstance(body, dict):
        raise WireError(f"{ftype.name} body must be a dict, got {type(body)}")
    return ftype, body


def encode_payload(payload: Any) -> bytes:
    """Serialize an application payload for transit (opaque to the daemon)."""
    return pickle.dumps(payload, protocol=4)


def decode_payload(blob: bytes) -> Any:
    """Inverse of :func:`encode_payload` (trusted peers only; see module
    docstring)."""
    return pickle.loads(blob)
