"""Daemon-side group membership state, mirroring the simulator's semantics.

The live daemon keeps the same replicated-state shape as
:class:`repro.gcs.daemon.Daemon`: per group, a map of member records with
a *birth* stamp — ``(config_id, seq)`` of the join message — so views
list members in join-age order (oldest first) exactly as the simulated
substrate and the paper's protocols (CKD's oldest-member controller,
GDH's newest-member token target) require.

A single daemon is one configuration, so ``config_id`` is fixed at
``(1, 0)`` and every membership event consumes one global sequence
number; ``view_id = (config_id, seq)`` is then totally ordered and
directly comparable with the simulator's view ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gcs.messages import View, ViewEvent


class _Record:
    __slots__ = ("name", "birth")

    def __init__(self, name: str, birth: Tuple) -> None:
        self.name = name
        self.birth = birth


class MembershipTable:
    """All groups' membership as the daemon's single configuration sees it."""

    def __init__(self, config_id: Tuple[int, int] = (1, 0)) -> None:
        self.config_id = config_id
        self._seq = 0
        # group -> member name -> record
        self._groups: Dict[str, Dict[str, _Record]] = {}

    # -- queries -----------------------------------------------------------

    def members(self, group: str) -> Tuple[str, ...]:
        """Members of ``group`` ordered by join age (oldest first)."""
        records = self._groups.get(group, {})
        ordered = sorted(records.values(), key=lambda r: (r.birth, r.name))
        return tuple(r.name for r in ordered)

    def groups_of(self, member: str) -> List[str]:
        return [g for g, records in self._groups.items() if member in records]

    def next_seq(self) -> int:
        """Consume one slot of the daemon's global total order."""
        self._seq += 1
        return self._seq

    # -- membership events -------------------------------------------------

    def join(self, group: str, member: str) -> Optional[View]:
        """Apply a join; returns the new view, or None for a duplicate."""
        records = self._groups.setdefault(group, {})
        if member in records:
            return None  # duplicate join, ignore (same as the simulator)
        seq = self.next_seq()
        records[member] = _Record(member, (self.config_id, seq))
        return View(
            view_id=(self.config_id, seq),
            group=group,
            members=self.members(group),
            event=ViewEvent.JOIN,
            joined=(member,),
            left=(),
        )

    def leave(self, group: str, member: str) -> Optional[View]:
        """Apply a leave; returns the new view, or None if not a member."""
        records = self._groups.get(group, {})
        if member not in records:
            return None
        del records[member]
        seq = self.next_seq()
        return View(
            view_id=(self.config_id, seq),
            group=group,
            members=self.members(group),
            event=ViewEvent.LEAVE,
            joined=(),
            left=(member,),
        )

    def disconnect(self, member: str) -> List[View]:
        """A member vanished (BYE, socket EOF or heartbeat expiry):
        it implicitly leaves every group it was in."""
        views = []
        for group in list(self._groups):
            view = self.leave(group, member)
            if view is not None:
                views.append(view)
        return views
