"""The live Spread-like daemon: one process, many TCP clients, total order.

A :class:`NetDaemon` accepts client connections on a TCP socket and
provides the transport contract over the wire protocol of
:mod:`repro.net.wire`:

* **handshake** — the first frame must be HELLO naming the client; the
  daemon validates the name (same boundary rules as the simulator) and
  rejects duplicates with an ERROR frame before any group state changes;
* **join/leave/multicast services** — membership events and Agreed
  multicasts consume slots of one global sequence; because a single
  asyncio task routes every inbound frame atomically (no await between
  sequencing and enqueueing to recipients), all members observe the same
  total order, which is exactly the guarantee the simulator's token ring
  provides;
* **view installation** — every membership change broadcasts a
  :class:`~repro.gcs.messages.View` (join-age member ordering, the same
  ``(config_id, seq)`` view ids) to all members plus the leaver;
* **failure suspicion** — clients heartbeat with PING frames; a sweeper
  drops any client silent past the suspicion timeout, converting the
  suspected crash into leaves, which is the single-daemon analogue of
  Spread's failure detector turning a member crash into a leave (§5).

Run standalone with ``python -m repro.net.daemon [--port N]``; it prints
``LISTENING <port>`` once bound so a parent process can scrape the port.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Dict, List, Optional, Sequence

from repro.gcs.messages import Service
from repro.net.views import MembershipTable
from repro.net.wire import (
    WIRE_VERSION,
    FrameType,
    WireError,
    pack_frame,
    read_frame,
)
from repro.transport.base import (
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)

#: default client-silence window before the daemon suspects a crash
DEFAULT_HEARTBEAT_TIMEOUT_S = 15.0


class _Session:
    """One connected client: its socket, outbound queue and liveness."""

    def __init__(self, name: str, writer: asyncio.StreamWriter, now: float):
        self.name = name
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.last_seen = now
        self.writer_task: Optional[asyncio.Task] = None
        self.closed = False

    def send(self, frame: bytes) -> None:
        if not self.closed:
            self.outbox.put_nowait(frame)


class NetDaemon:
    """A single-configuration Spread-like daemon on a TCP endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.table = MembershipTable()
        self.sessions: Dict[str, _Session] = {}
        self.messages_routed = 0
        self.views_emitted = 0
        self.suspected = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._sweeper = asyncio.ensure_future(self._sweep_heartbeats())
        return self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        for session in list(self.sessions.values()):
            await self._close_session(session)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[_Session] = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            while True:
                ftype, body = await read_frame(reader)
                session.last_seen = asyncio.get_event_loop().time()
                if ftype is FrameType.MULTICAST:
                    self._on_multicast(session, body)
                elif ftype is FrameType.JOIN:
                    self._on_join(session, body)
                elif ftype is FrameType.LEAVE:
                    self._on_leave(session, body)
                elif ftype is FrameType.PING:
                    pass  # liveness already refreshed above
                elif ftype is FrameType.BYE:
                    return
                else:
                    raise WireError(f"unexpected {ftype.name} after handshake")
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            WireError,
            ValueError,
        ) as error:
            if session is not None and not isinstance(
                error, (asyncio.IncompleteReadError, ConnectionError)
            ):
                session.send(pack_frame(FrameType.ERROR, {"error": str(error)}))
        finally:
            if session is not None:
                await self._close_session(session)
            else:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Session]:
        """Validate the HELLO; returns the session or None after ERROR."""
        ftype, body = await read_frame(reader)
        error = None
        name = body.get("name")
        if ftype is not FrameType.HELLO:
            error = f"first frame must be HELLO, got {ftype.name}"
        elif body.get("version") != WIRE_VERSION:
            error = (
                f"wire version mismatch: daemon speaks {WIRE_VERSION}, "
                f"client sent {body.get('version')!r}"
            )
        else:
            try:
                validate_member_name(name)
            except ValueError as exc:
                error = str(exc)
            else:
                if name in self.sessions:
                    error = f"client name {name!r} already in use"
        if error is not None:
            writer.write(pack_frame(FrameType.ERROR, {"error": error}))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return None
        session = _Session(name, writer, asyncio.get_event_loop().time())
        self.sessions[name] = session
        session.writer_task = asyncio.ensure_future(self._drain_outbox(session))
        session.send(
            pack_frame(
                FrameType.WELCOME,
                {"config_id": self.table.config_id, "version": WIRE_VERSION},
            )
        )
        return session

    async def _drain_outbox(self, session: _Session) -> None:
        """The session's single writer: serializes all outbound frames."""
        try:
            while True:
                frame = await session.outbox.get()
                session.writer.write(frame)
                await session.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _close_session(self, session: _Session) -> None:
        if session.closed:
            return
        session.closed = True
        self.sessions.pop(session.name, None)
        self._emit_views(self.table.disconnect(session.name))
        if session.writer_task is not None:
            # Let queued frames flush briefly, then stop the writer.
            with contextlib.suppress(asyncio.TimeoutError, asyncio.CancelledError):
                await asyncio.wait_for(session.outbox.join(), timeout=0)
            session.writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await session.writer_task
        session.writer.close()
        with contextlib.suppress(Exception):
            await session.writer.wait_closed()

    # -- membership --------------------------------------------------------

    def _on_join(self, session: _Session, body: dict) -> None:
        group = validate_group_name(body.get("group"))
        self._emit_views([self.table.join(group, session.name)])

    def _on_leave(self, session: _Session, body: dict) -> None:
        group = validate_group_name(body.get("group"))
        view = self.table.leave(group, session.name)
        self._emit_views([view], also_to=(session.name,))

    def _emit_views(self, views: List, also_to: Sequence[str] = ()) -> None:
        """Broadcast each view to its members plus ``also_to`` (the leaver
        still learns it is out, mirroring the simulator)."""
        for view in views:
            if view is None:
                continue
            self.views_emitted += 1
            frame = pack_frame(
                FrameType.VIEW,
                {
                    "group": view.group,
                    "view_id": view.view_id,
                    "members": view.members,
                    "event": view.event.value,
                    "joined": view.joined,
                    "left": view.left,
                },
            )
            wanted = set(view.members)
            wanted.update(view.left)
            wanted.update(also_to)
            for name in wanted:
                session = self.sessions.get(name)
                if session is not None:
                    session.send(frame)

    # -- data --------------------------------------------------------------

    def _on_multicast(self, session: _Session, body: dict) -> None:
        group = validate_group_name(body.get("group"))
        validate_payload_size(body.get("size_bytes", 0))
        service = Service(body.get("service", Service.AGREED.value))
        target = body.get("target")
        payload = body.get("payload", b"")
        if not isinstance(payload, bytes):
            raise WireError("multicast payload must be bytes on the wire")
        if service is Service.FIFO and target is None:
            raise WireError("FIFO messages require a target member")
        # Spread semantics: membership gates *receiving*, not sending — a
        # non-member may multicast into a group (the simulator allows the
        # same), so the sender is deliberately not checked here.
        members = self.table.members(group)
        # Consume one slot of the global order for Agreed traffic.  The
        # whole routing below is synchronous, so every recipient's outbox
        # observes the same sequence — the total-order guarantee.
        if service is Service.AGREED:
            self.table.next_seq()
        self.messages_routed += 1
        frame = pack_frame(
            FrameType.DELIVER,
            {
                "group": group,
                "sender": session.name,
                "service": service.value,
                "target": target,
                "payload": payload,
                "size_bytes": body.get("size_bytes", 0),
                "kind": body.get("kind", "data"),
            },
        )
        if target is not None:
            if target in members:
                recipient = self.sessions.get(target)
                if recipient is not None:
                    recipient.send(frame)
            return
        for name in members:
            recipient = self.sessions.get(name)
            if recipient is not None:
                recipient.send(frame)

    # -- failure suspicion -------------------------------------------------

    async def _sweep_heartbeats(self) -> None:
        """Drop clients silent past the timeout (suspected crashed)."""
        interval = max(self.heartbeat_timeout_s / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_event_loop().time()
            for session in list(self.sessions.values()):
                if now - session.last_seen > self.heartbeat_timeout_s:
                    self.suspected += 1
                    await self._close_session(session)


async def _amain(args) -> int:
    daemon = NetDaemon(
        host=args.host,
        port=args.port,
        heartbeat_timeout_s=args.heartbeat_timeout,
    )
    port = await daemon.start()
    print(f"LISTENING {port}", flush=True)
    try:
        await daemon._server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - signal-driven
        pass
    finally:
        await daemon.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.daemon",
        description="Run a live Spread-like group communication daemon "
        "(loopback/LAN benchmarking only; the wire trusts its peers).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free one and print it)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=DEFAULT_HEARTBEAT_TIMEOUT_S,
        help="seconds of client silence before a suspected crash "
        f"(default {DEFAULT_HEARTBEAT_TIMEOUT_S:g})",
    )
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
