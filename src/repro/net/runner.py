"""Run a whole secure group live: the asyncio Transport and its driver.

:class:`AsyncioTransport` is the :class:`~repro.transport.Transport`
implementation for the live backend: channels are
:class:`~repro.net.client.NetClient` sockets into one
:class:`~repro.net.daemon.NetDaemon`, the scheduler is the event loop's
wall clock (:class:`~repro.net.compat.WallScheduler`), and "machines"
are :class:`~repro.net.compat.WallMachine` pass-throughs — thirteen by
default, mirroring the paper's LAN testbed layout so member-to-machine
assignment matches the simulator's even though every process actually
runs on this host.

:class:`LiveGroupRunner` drives the ``bench live`` scenario end to end:
spawn (or embed) a daemon, grow a secure group of *n* members by
sequential joins, measure one join and one leave rekey with real
wall-clock time on the shared :class:`~repro.core.timing.RekeyTimeline`,
and report the ``member.rekey_ms`` percentile substrate alongside.
"""

from __future__ import annotations

import asyncio
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.framework import SecureSpreadFramework
from repro.net.client import NetClient
from repro.net.compat import WallMachine, WallScheduler
from repro.net.daemon import NetDaemon
from repro.transport.base import Transport

#: default machine count: the paper's LAN testbed (13 dual-CPU hosts)
DEFAULT_MACHINES = 13

#: how often the settle loop re-checks the group's security predicate
_POLL_INTERVAL_S = 0.005


class AsyncioTransport:
    """The live substrate: one daemon endpoint, NetClient channels."""

    kind = "asyncio"
    #: no virtual time, no fault injection, no causal tracing — callers
    #: gate those features on this set (see ``repro.transport.base``)
    capabilities = frozenset()

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        machines: int = DEFAULT_MACHINES,
        heartbeat_interval_s: float = 2.0,
    ) -> None:
        if machines < 1:
            raise ValueError("the transport needs at least one machine")
        self.host = host
        self.port = port
        self.heartbeat_interval_s = heartbeat_interval_s
        self._machines = [
            WallMachine(f"live{i:02d}") for i in range(machines)
        ]
        self._scheduler: Optional[WallScheduler] = None
        #: every channel handed out, in creation order (the runner
        #: connects and closes them)
        self.channels: List[NetClient] = []
        self.obs = None

    # -- Transport interface ----------------------------------------------

    @property
    def scheduler(self) -> WallScheduler:
        """Created lazily so the transport can be built before the event
        loop is running; first touched inside the loop."""
        if self._scheduler is None:
            self._scheduler = WallScheduler()
        return self._scheduler

    @property
    def now(self) -> float:
        return self.scheduler.now

    def channel(self, name: str, machine_index: int) -> NetClient:
        client = NetClient(
            name,
            host=self.host,
            port=self.port,
            heartbeat_interval_s=self.heartbeat_interval_s,
        )
        self.channels.append(client)
        return client

    def machine(self, machine_index: int) -> WallMachine:
        return self._machines[machine_index]

    def machine_count(self) -> int:
        return len(self._machines)

    def bind(self, obs) -> None:
        self.obs = obs

    def run_until_idle(self, max_events: int = 0) -> None:
        raise RuntimeError(
            "the asyncio transport runs in real time; there is no virtual "
            "clock to drain — await the group's progress instead (see "
            "repro.net.runner.LiveGroupRunner)"
        )

    # -- lifecycle helpers -------------------------------------------------

    async def connect_all(self) -> None:
        for client in self.channels:
            if not client.connected:
                await client.connect()

    async def aclose(self) -> None:
        for client in self.channels:
            await client.aclose()


class LiveGroupRunner:
    """Drive one live secure group through the bench scenario.

    ``daemon_mode`` is ``"spawn"`` (a real separate daemon process —
    what ``bench live`` uses, so client traffic crosses process
    boundaries over real TCP) or ``"inline"`` (the daemon shares this
    event loop — no subprocess, used by the loopback tests).
    """

    def __init__(
        self,
        protocol: str = "TGDH",
        size: int = 8,
        dh_group: str = "dh-512",
        engine=None,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        daemon_mode: str = "spawn",
        machines: int = DEFAULT_MACHINES,
        timeout_s: float = 60.0,
        heartbeat_interval_s: float = 1.0,
        group_name: str = "secure-group",
    ) -> None:
        if size < 2:
            raise ValueError("a live group needs at least 2 members")
        if daemon_mode not in ("spawn", "inline"):
            raise ValueError("daemon_mode must be 'spawn' or 'inline'")
        self.protocol = protocol.upper()
        self.size = size
        self.dh_group = dh_group
        self.engine = engine
        self.seed = seed
        self.host = host
        self.port = port
        self.daemon_mode = daemon_mode
        self.machines = machines
        self.timeout_s = timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.group_name = group_name
        self.framework: Optional[SecureSpreadFramework] = None
        self.transport: Optional[AsyncioTransport] = None
        self._daemon: Optional[NetDaemon] = None
        self._daemon_proc = None

    # -- daemon lifecycle --------------------------------------------------

    async def _start_daemon(self) -> int:
        if self.daemon_mode == "inline":
            self._daemon = NetDaemon(host=self.host, port=self.port or 0)
            return await self._daemon.start()
        env = dict(os.environ)
        src_root = str(Path(sys.modules["repro"].__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._daemon_proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.net.daemon",
            "--host",
            self.host,
            "--port",
            str(self.port or 0),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        # Scan for the LISTENING banner: interpreter warnings (e.g.
        # runpy's -m note about the package import) may precede it on the
        # merged stream.
        noise = []
        deadline = asyncio.get_event_loop().time() + self.timeout_s
        while True:
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                raise RuntimeError(
                    f"daemon did not report LISTENING within "
                    f"{self.timeout_s:g}s; output so far: {noise}"
                )
            line = await asyncio.wait_for(
                self._daemon_proc.stdout.readline(), timeout=remaining
            )
            if not line:
                raise RuntimeError(f"daemon failed to start: {noise}")
            text = line.decode(errors="replace").strip()
            if text.startswith("LISTENING "):
                return int(text.split()[1])
            noise.append(text)

    async def _stop_daemon(self) -> None:
        if self._daemon is not None:
            await self._daemon.stop()
            self._daemon = None
        if self._daemon_proc is not None:
            if self._daemon_proc.returncode is None:
                self._daemon_proc.terminate()
            try:
                await asyncio.wait_for(self._daemon_proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - stuck daemon
                self._daemon_proc.kill()
                await self._daemon_proc.wait()
            self._daemon_proc = None

    # -- the scenario ------------------------------------------------------

    async def run(self) -> Dict:
        """Grow the group, measure one join and one leave rekey, clean up.

        Returns the live half of the ``BENCH_live.json`` document (see
        :mod:`repro.bench.live` for the full schema).
        """
        port = await self._start_daemon()
        try:
            return await self._run_scenario(port)
        finally:
            if self.transport is not None:
                await self.transport.aclose()
            await self._stop_daemon()

    async def _run_scenario(self, port: int) -> Dict:
        self.transport = AsyncioTransport(
            host=self.host,
            port=port,
            machines=self.machines,
            heartbeat_interval_s=self.heartbeat_interval_s,
        )
        framework = SecureSpreadFramework(
            self.transport,
            default_protocol=self.protocol,
            dh_group=self.dh_group,
            seed=self.seed,
            observe=True,  # live runs always record rekey_ms percentiles
            engine=self.engine,
        )
        self.framework = framework
        started = self.transport.now
        # Sequential growth, the paper's procedure: each join completes
        # its rekey before the next member arrives.
        members = []
        for index in range(self.size):
            member = framework.member(
                f"m{index}", index % self.machines, self.group_name
            )
            await member.client.connect()
            member.join()
            members.append(member)
            await self._settle(members)
        # Measured join: one newcomer on the next machine in rotation.
        joiner = framework.member(
            "x1", self.size % self.machines, self.group_name
        )
        await joiner.client.connect()
        framework.mark_event()
        joiner.join()
        members.append(joiner)
        await self._settle(members)
        join_stats = self._epoch_stats(framework)
        # Restore the size (unmeasured), as the simulated harness does.
        joiner.leave()
        members.remove(joiner)
        await self._settle(members)
        joiner.client.disconnect()
        # Measured leave: the middle member, the harness's victim choice.
        victim = members[self.size // 2]
        framework.mark_event()
        victim.leave()
        members.remove(victim)
        await self._settle(members)
        victim.client.disconnect()
        leave_stats = self._epoch_stats(framework)
        rekey = framework.obs.log_histogram(
            "member.rekey_ms", group=self.group_name, protocol=self.protocol
        )
        result = {
            "protocol": self.protocol,
            "group_size": self.size,
            "dh_group": self.dh_group,
            "engine": framework.engine.name,
            "seed": self.seed,
            "daemon": {
                "mode": self.daemon_mode,
                "host": self.host,
                "port": port,
            },
            "join": join_stats,
            "leave": leave_stats,
            "rekey_ms": {
                "count": rekey.count,
                "mean": rekey.mean,
                "max": rekey.max,
                **rekey.percentiles(),
            },
            "wall_elapsed_ms": self.transport.now - started,
        }
        for member in members:
            member.client.disconnect()
        return result

    async def _settle(self, members: List) -> None:
        """Wait until every listed member holds the key for a view whose
        membership is exactly the listed set."""
        expected = {member.name for member in members}
        deadline = asyncio.get_event_loop().time() + self.timeout_s
        while True:
            if all(self._is_settled(member, expected) for member in members):
                return
            if asyncio.get_event_loop().time() > deadline:
                laggards = sorted(
                    member.name
                    for member in members
                    if not self._is_settled(member, expected)
                )
                raise TimeoutError(
                    f"group did not settle on {sorted(expected)} within "
                    f"{self.timeout_s:g}s; waiting on {laggards}"
                )
            await asyncio.sleep(_POLL_INTERVAL_S)

    @staticmethod
    def _is_settled(member, expected) -> bool:
        view = member.protocol.view
        return (
            member.is_secure
            and view is not None
            and set(view.members) == expected
        )

    @staticmethod
    def _epoch_stats(framework: SecureSpreadFramework) -> Dict:
        record = framework.timeline.latest_complete()
        return {
            "total_ms": record.total_elapsed(),
            "membership_ms": record.membership_elapsed(),
            "key_agreement_ms": record.key_agreement_elapsed(),
            "members": len(record.members),
        }


def run_live(**kwargs) -> Dict:
    """Synchronous convenience wrapper: ``asyncio.run`` a LiveGroupRunner."""
    return asyncio.run(LiveGroupRunner(**kwargs).run())


# Imported for its side effect on type checking only: AsyncioTransport
# must satisfy the structural Transport protocol.
def _check_protocol() -> Transport:  # pragma: no cover - typing aid
    return AsyncioTransport()
