"""``repro.net`` — a real Spread-like daemon/client over TCP sockets.

The asyncio implementation of the :mod:`repro.transport` interface: a
:class:`~repro.net.daemon.NetDaemon` process speaks a length-prefixed
wire protocol (connection handshake, join/leave/multicast services,
view installation mirroring :mod:`repro.gcs.messages` semantics, and
heartbeat-based failure suspicion), and :class:`~repro.net.client.
NetClient` is the client library with the same listener-callback surface
as the simulated :class:`~repro.gcs.client.SpreadClient`.

:class:`~repro.net.runner.AsyncioTransport` adapts the pair to the
:class:`~repro.transport.Transport` interface so
:class:`~repro.core.framework.SecureSpreadFramework` and the five key
agreement protocols run over it unchanged, and
:class:`~repro.net.runner.LiveGroupRunner` drives a whole secure group
on localhost for the ``bench live`` wall-clock measurements.
"""

from repro.net.client import NetClient
from repro.net.daemon import NetDaemon
from repro.net.runner import AsyncioTransport, LiveGroupRunner, run_live
from repro.net.wire import WIRE_VERSION, FrameType, WireError

__all__ = [
    "AsyncioTransport",
    "FrameType",
    "LiveGroupRunner",
    "NetClient",
    "NetDaemon",
    "WIRE_VERSION",
    "WireError",
    "run_live",
]
