"""The live client library: SpreadClient's surface over a TCP socket.

:class:`NetClient` connects to a :class:`~repro.net.daemon.NetDaemon`
and exposes the same API the simulated
:class:`~repro.gcs.client.SpreadClient` offers — synchronous
``join``/``leave``/``multicast``/``unicast``/``disconnect`` plus
``on_message``/``on_view`` listener callbacks receiving ``(client,
item)`` — so :class:`~repro.core.secure_group.SecureGroupMember` drives
it unchanged.  The synchronous calls merely enqueue frames; a writer
task flushes them in order, a reader task turns inbound frames back into
:class:`~repro.gcs.messages.GroupMessage` / :class:`~repro.gcs.messages.
View` objects, and a heartbeat task keeps the daemon's failure detector
quiet.  All callbacks run on the event loop thread, exactly as the
simulator runs them on the simulation "thread".
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Callable, List, Optional

from repro.gcs.messages import GroupMessage, Service, View, ViewEvent
from repro.net.wire import (
    WIRE_VERSION,
    FrameType,
    WireError,
    decode_payload,
    encode_payload,
    pack_frame,
    read_frame,
)
from repro.transport.base import (
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)

#: how often a quiet client proves liveness to the daemon
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0


class NetClient:
    """One live client process connected to a daemon over TCP."""

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        self.name = validate_member_name(name)
        self.host = host
        self.port = port
        self.heartbeat_interval_s = heartbeat_interval_s
        self.on_message: Optional[Callable[["NetClient", GroupMessage], None]] = None
        self.on_view: Optional[Callable[["NetClient", View], None]] = None
        self.received: List[GroupMessage] = []
        self.views: List[View] = []
        self.connected = False
        self.config_id = None
        self.error: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._outbox: asyncio.Queue = asyncio.Queue()
        self._tasks: List[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------

    async def connect(self) -> None:
        """Open the socket and complete the HELLO/WELCOME handshake."""
        if self.connected:
            raise RuntimeError(f"client {self.name!r} is already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._writer.write(
            pack_frame(
                FrameType.HELLO, {"name": self.name, "version": WIRE_VERSION}
            )
        )
        await self._writer.drain()
        ftype, body = await read_frame(self._reader)
        if ftype is FrameType.ERROR:
            self._writer.close()
            raise ConnectionError(
                f"daemon rejected {self.name!r}: {body.get('error')}"
            )
        if ftype is not FrameType.WELCOME:
            self._writer.close()
            raise WireError(f"expected WELCOME, got {ftype.name}")
        self.config_id = body.get("config_id")
        self.connected = True
        self._tasks = [
            asyncio.ensure_future(self._run_writer()),
            asyncio.ensure_future(self._run_reader()),
            asyncio.ensure_future(self._run_heartbeat()),
        ]

    async def aclose(self) -> None:
        """Tear down tasks and the socket (idempotent)."""
        self.connected = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks = []
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            self._writer = None

    # -- membership (synchronous GroupChannel surface) ---------------------

    def join(self, group: str) -> None:
        """Join a group; the view arrives via ``on_view``."""
        self._require_connected()
        validate_group_name(group)
        self._send(FrameType.JOIN, {"group": group})

    def leave(self, group: str) -> None:
        """Leave a group; the final view arrives via ``on_view``."""
        self._require_connected()
        validate_group_name(group)
        self._send(FrameType.LEAVE, {"group": group})

    def disconnect(self) -> None:
        """Orderly goodbye: the daemon converts it to leaves everywhere."""
        self._require_connected()
        self.connected = False
        self._send(FrameType.BYE, {}, force=True)

    # -- messaging ---------------------------------------------------------

    def multicast(
        self,
        group: str,
        payload: Any,
        service: Service = Service.AGREED,
        size_bytes: int = 64,
        target: Optional[str] = None,
    ) -> None:
        """Send to a group (or, with ``target``, to one member of it)."""
        self._require_connected()
        validate_group_name(group)
        validate_payload_size(size_bytes)
        if target is not None:
            validate_member_name(target)
        self._send(
            FrameType.MULTICAST,
            {
                "group": group,
                "service": service.value,
                "target": target,
                "payload": encode_payload(payload),
                "size_bytes": size_bytes,
                "kind": "data",
            },
        )

    def unicast(
        self, group: str, target: str, payload: Any, size_bytes: int = 64
    ) -> None:
        """FIFO point-to-point message to one group member."""
        self.multicast(
            group, payload, service=Service.FIFO, size_bytes=size_bytes, target=target
        )

    # -- background tasks --------------------------------------------------

    async def _run_writer(self) -> None:
        try:
            while True:
                frame = await self._outbox.get()
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            self.connected = False

    async def _run_reader(self) -> None:
        try:
            while True:
                ftype, body = await read_frame(self._reader)
                if ftype is FrameType.DELIVER:
                    self._on_deliver(body)
                elif ftype is FrameType.VIEW:
                    self._on_view_frame(body)
                elif ftype is FrameType.PING:
                    pass
                elif ftype is FrameType.ERROR:
                    self.error = body.get("error")
                    self.connected = False
                    return
                else:
                    raise WireError(f"unexpected {ftype.name} from daemon")
        except (asyncio.IncompleteReadError, ConnectionError):
            self.connected = False  # daemon went away
        except asyncio.CancelledError:
            raise

    async def _run_heartbeat(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            if not self.connected:
                return
            loop_now = asyncio.get_event_loop().time()
            self._send(FrameType.PING, {"t": loop_now}, force=True)

    # -- delivery ----------------------------------------------------------

    def _on_deliver(self, body: dict) -> None:
        message = GroupMessage(
            group=body["group"],
            sender=body["sender"],
            payload=decode_payload(body["payload"]),
            service=Service(body["service"]),
            kind=body.get("kind", "data"),
            size_bytes=body.get("size_bytes", 0),
            target=body.get("target"),
        )
        self.received.append(message)
        if self.on_message is not None:
            self.on_message(self, message)

    def _on_view_frame(self, body: dict) -> None:
        view = View(
            view_id=body["view_id"],
            group=body["group"],
            members=tuple(body["members"]),
            event=ViewEvent(body["event"]),
            joined=tuple(body.get("joined", ())),
            left=tuple(body.get("left", ())),
        )
        self.views.append(view)
        if self.on_view is not None:
            self.on_view(self, view)

    # -- internals ---------------------------------------------------------

    def _send(self, ftype: FrameType, body: dict, force: bool = False) -> None:
        if not force:
            self._require_connected()
        self._outbox.put_nowait(pack_frame(ftype, body))

    def _require_connected(self) -> None:
        if not self.connected:
            raise RuntimeError(f"client {self.name!r} is disconnected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetClient({self.name!r} @ {self.host}:{self.port})"
