"""The five group key agreement protocols the paper evaluates (§4).

Each protocol is a transport-independent, message-driven state machine: a
member's instance consumes membership views and (totally ordered) protocol
messages, and emits protocol messages, until every current member holds the
same fresh group key.

* :mod:`repro.protocols.gdh` — Cliques GDH IKA.3, group Diffie-Hellman with
  a token round, factor-out round and partial-key-list broadcast.
* :mod:`repro.protocols.ckd` — Centralized Key Distribution from the oldest
  member over pairwise Diffie-Hellman channels.
* :mod:`repro.protocols.bd` — Burmester-Desmedt: two all-broadcast rounds,
  constant full exponentiations, hidden small-exponent cost.
* :mod:`repro.protocols.tgdh` — Tree-based group Diffie-Hellman on the
  binary key tree of :mod:`repro.protocols.keytree`.
* :mod:`repro.protocols.str_protocol` — STR, the fully imbalanced
  ("skinny") key tree.

:mod:`repro.protocols.loopback` drives protocol instances over an in-memory
ordered transport for correctness tests and operation counting.
"""

from repro.protocols.base import (
    KeyAgreementProtocol,
    ProtocolMessage,
    classify_event,
)
from repro.protocols.bd import BdProtocol
from repro.protocols.ckd import CkdProtocol
from repro.protocols.gdh import GdhProtocol
from repro.protocols.loopback import LoopbackGroup
from repro.protocols.str_protocol import StrProtocol
from repro.protocols.tgdh import TgdhProtocol

#: All five protocols, keyed by the names used throughout the paper.
PROTOCOLS = {
    "GDH": GdhProtocol,
    "CKD": CkdProtocol,
    "BD": BdProtocol,
    "TGDH": TgdhProtocol,
    "STR": StrProtocol,
}

__all__ = [
    "KeyAgreementProtocol",
    "ProtocolMessage",
    "classify_event",
    "GdhProtocol",
    "CkdProtocol",
    "BdProtocol",
    "TgdhProtocol",
    "StrProtocol",
    "LoopbackGroup",
    "PROTOCOLS",
]
