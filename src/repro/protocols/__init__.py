"""The group key agreement protocols, behind one registry.

The five protocols the paper evaluates (§4) ship registered; anything
else — hierarchical compositions, AGDH-style variants, test doubles —
plugs in through :func:`register` and immediately appears everywhere the
registry is read: the framework's per-group protocol table, every bench
CLI ``--protocol``/``--protocols`` choice list, and the workload engine.

* :mod:`repro.protocols.gdh` — Cliques GDH IKA.3, group Diffie-Hellman with
  a token round, factor-out round and partial-key-list broadcast.
* :mod:`repro.protocols.ckd` — Centralized Key Distribution from the oldest
  member over pairwise Diffie-Hellman channels.
* :mod:`repro.protocols.bd` — Burmester-Desmedt: two all-broadcast rounds,
  constant full exponentiations, hidden small-exponent cost.
* :mod:`repro.protocols.tgdh` — Tree-based group Diffie-Hellman on the
  binary key tree of :mod:`repro.protocols.keytree`.
* :mod:`repro.protocols.str_protocol` — STR, the fully imbalanced
  ("skinny") key tree.

:mod:`repro.protocols.loopback` drives protocol instances over an in-memory
ordered transport for correctness tests and operation counting.

The registry API:

* :func:`register` — add a protocol class under a (case-insensitive)
  name, optionally attaching the ``STEP_PHASES`` phase labels the
  critical-path report uses.
* :func:`available` — every registered name, sorted (the single source
  of truth for CLI choice lists and sweep defaults).
* :func:`get_protocol` — name → class, with the available names in the
  error message.
* :func:`unregister` — remove a registration (test support).

``PROTOCOLS`` remains as a read-only mapping view for backward
compatibility; *indexing* it warns with ``DeprecationWarning`` — new code
should call :func:`get_protocol` / :func:`available` instead.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, Mapping, Optional, Tuple, Type

from repro.protocols.base import (
    KeyAgreementProtocol,
    ProtocolMessage,
    classify_event,
)
from repro.protocols.bd import BdProtocol
from repro.protocols.ckd import CkdProtocol
from repro.protocols.gdh import GdhProtocol
from repro.protocols.loopback import LoopbackGroup
from repro.protocols.str_protocol import StrProtocol
from repro.protocols.tgdh import TgdhProtocol

#: name -> protocol class; mutated only through register/unregister.
_REGISTRY: Dict[str, Type[KeyAgreementProtocol]] = {}


def register(
    name: str,
    cls: Type[KeyAgreementProtocol],
    phases: Optional[Dict[str, str]] = None,
    replace: bool = False,
) -> Type[KeyAgreementProtocol]:
    """Register a protocol class under ``name`` (normalized to upper case).

    ``phases`` optionally sets the class's ``STEP_PHASES`` mapping (the
    per-message-step phase labels the critical-path report prints), so a
    protocol defined outside this package can declare them at
    registration time.  Re-registering the same class under the same
    name is a no-op; binding the name to a *different* class requires
    ``replace=True`` — silently shadowing a protocol would change what
    every benchmark measures.  Returns ``cls`` so it works as a
    decorator: ``@lambda c: register("HIER", c)`` style helpers aside,
    plain calls read best.
    """
    if not (isinstance(cls, type) and issubclass(cls, KeyAgreementProtocol)):
        raise TypeError(
            f"protocol {name!r} must be a KeyAgreementProtocol subclass, "
            f"got {cls!r}"
        )
    key = name.upper()
    current = _REGISTRY.get(key)
    if current is not None and current is not cls and not replace:
        raise ValueError(
            f"protocol {key!r} is already registered to "
            f"{current.__name__}; pass replace=True to rebind it"
        )
    if phases is not None:
        cls.STEP_PHASES = dict(phases)
    _REGISTRY[key] = cls
    return cls


def unregister(name: str) -> None:
    """Remove a registration (primarily for tests adding throwaway
    protocols); unknown names raise the same error as :func:`get_protocol`."""
    key = name.upper()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(_REGISTRY)}"
        )
    del _REGISTRY[key]


def available() -> Tuple[str, ...]:
    """Every registered protocol name, sorted.

    This is the single source of truth: CLI ``choices=``, sweep
    defaults and workload specs all read it, so a newly registered
    protocol appears in all of them without further edits.
    """
    return tuple(sorted(_REGISTRY))


def get_protocol(name: str) -> Type[KeyAgreementProtocol]:
    """The registered class for ``name`` (case-insensitive)."""
    cls = _REGISTRY.get(name.upper() if isinstance(name, str) else name)
    if cls is None:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {list(available())}"
        )
    return cls


class _RegistryView(Mapping):
    """Read-only mapping over the registry, kept for old callers.

    Iteration, ``len`` and ``in`` stay silent (they are how the registry
    is *enumerated*, which ``available()`` also serves); item access is
    the deprecated surface — it bypasses the case normalization and
    error messages of :func:`get_protocol`.
    """

    def __getitem__(self, name: str) -> Type[KeyAgreementProtocol]:
        warnings.warn(
            "indexing repro.protocols.PROTOCOLS is deprecated; use "
            "repro.protocols.get_protocol(name) (and available() for the "
            "name list) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            return _REGISTRY[name]
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"PROTOCOLS({sorted(_REGISTRY)})"


#: Deprecated mapping view of the registry (the pre-registry dict's name).
PROTOCOLS = _RegistryView()

# The paper's five, keyed by the names used throughout (§4).
register("GDH", GdhProtocol)
register("CKD", CkdProtocol)
register("BD", BdProtocol)
register("TGDH", TgdhProtocol)
register("STR", StrProtocol)

__all__ = [
    "KeyAgreementProtocol",
    "ProtocolMessage",
    "classify_event",
    "GdhProtocol",
    "CkdProtocol",
    "BdProtocol",
    "TgdhProtocol",
    "StrProtocol",
    "LoopbackGroup",
    "PROTOCOLS",
    "available",
    "get_protocol",
    "register",
    "unregister",
]
