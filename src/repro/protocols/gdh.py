"""Cliques GDH IKA.3 group Diffie-Hellman (paper §4.1, Figures 1 and 2).

The shared key is ``g^(r_1 r_2 ... r_n)``; it is never transmitted.
What circulates is the list of *partial keys* ``P_i = g^(∏_{j≠i} r_j)``
from which member *i* computes ``K = P_i^{r_i}``.  The **group controller**
(always the most recent member) builds and broadcasts this list; every
member caches the last list, which is what lets any member take over as
controller after the controller leaves.

Additive events (join = merge with one member):
  token round(s) through the new members → last new member broadcasts the
  accumulated value → every other member *factors out* its contribution
  (an Agreed message targeted at the new controller — §6.2.2 explains why
  this must be totally ordered and what that costs on a WAN) → the new
  controller exponentiates each factor with its fresh contribution and
  broadcasts the new partial-key list.

Subtractive events (leave / partition): the surviving controller deletes
the leavers' partial keys, refreshes its own contribution into every
remaining partial key, and broadcasts the list — one round, one message.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gcs.messages import View, ViewEvent
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage, classify_event


class GdhProtocol(KeyAgreementProtocol):
    """One member's GDH IKA.3 instance."""

    name = "GDH"
    STEP_PHASES = {
        "gdh-token": "upflow",
        "gdh-upflow": "upflow",
        "gdh-factor": "factor-out",
        "gdh-keylist": "broadcast",
    }

    def __init__(self, member, group, rng, ledger=None, engine=None):
        super().__init__(member, group, rng, ledger, engine=engine)
        self._r: Optional[int] = None
        #: cached partial-key list from the last key-list broadcast
        self._partials: Dict[str, int] = {}
        self._factors: Dict[str, int] = {}
        self._chain: List[str] = []
        self._previous_members: Tuple[str, ...] = ()

    # ------------------------------------------------------------------

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._factors = {}
        self._chain: List[str] = []
        previous, self._previous_members = self._previous_members, view.members
        if len(view.members) == 1:
            return self._bootstrap()
        event = classify_event(view)
        if event in (ViewEvent.JOIN, ViewEvent.MERGE):
            return self._start_additive(view, previous)
        return self._start_subtractive(view)

    def _bootstrap(self) -> List[ProtocolMessage]:
        self._r = self.ctx.random_exponent(self.rng)
        self._partials = {self.member: self.group.g}
        self._complete(self.ctx.exp_g(self._r))
        return []

    # -- additive events (join / merge) ---------------------------------

    def _new_members(self) -> List[str]:
        """The merging members, in view order (canonical ``joined``)."""
        return [m for m in self.view.members if m in self.view.joined]

    def _start_additive(self, view: View, previous) -> List[ProtocolMessage]:
        new_members = self._new_members()
        old_members = [m for m in view.members if m not in view.joined]
        if (
            not new_members
            or not old_members
            or not set(old_members) <= set(self._partials)
        ):
            # Either no prior subgroup survives intact, or a cascaded event
            # interrupted the previous agreement and the cached partial-key
            # list no longer covers the old membership (every member's list
            # agrees, so the fallback decision is uniform): run initial key
            # agreement led by the oldest member.
            return self._start_formation(view)
        old_controller = old_members[-1]
        if self.member != old_controller:
            return []
        # Refresh our contribution and launch the token down the new chain.
        self._r = self.ctx.random_exponent(self.rng)
        token = self.ctx.exp(self._partials[self.member], self._r)
        self._chain = new_members
        return [
            self._message(
                "gdh-token",
                {"value": token, "chain": list(new_members)},
                broadcast=False,
                target=new_members[0],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def _start_formation(self, view: View) -> List[ProtocolMessage]:
        """Initial key agreement: treat everyone but the oldest as new."""
        if self.member != view.oldest:
            return []
        self._r = self.ctx.random_exponent(self.rng)
        self._partials = {self.member: self.group.g}
        token = self.ctx.exp_g(self._r)
        chain = [m for m in view.members if m != self.member]
        self._chain = chain
        return [
            self._message(
                "gdh-token",
                {"value": token, "chain": list(chain)},
                broadcast=False,
                target=chain[0],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._stale(message):
            return []
        handler = {
            "gdh-token": self._on_token,
            "gdh-upflow": self._on_upflow,
            "gdh-factor": self._on_factor,
            "gdh-keylist": self._on_keylist,
        }.get(message.step)
        if handler is None:
            raise ValueError(f"unknown GDH step {message.step!r}")
        return handler(message)

    def _on_token(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        chain = list(message.body["chain"])
        self._chain = chain
        position = chain.index(self.member)
        if position == len(chain) - 1:
            # Last new member: the new controller.  Broadcast the
            # accumulated value *without* adding a contribution (Figure 1).
            self._factors["__upflow__"] = message.body["value"]
            return [
                self._message(
                    "gdh-upflow",
                    {"value": message.body["value"], "chain": chain},
                    element_count=1,
                )
            ]
        self._r = self.ctx.random_exponent(self.rng)
        value = self.ctx.exp(message.body["value"], self._r)
        return [
            self._message(
                "gdh-token",
                {"value": value, "chain": chain},
                broadcast=False,
                target=chain[position + 1],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def _on_upflow(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        # Everyone except the new controller factors out its contribution
        # and sends the result to the new controller, in Agreed order.
        self._chain = list(message.body["chain"])
        controller = self._chain[-1]
        if self.member == controller:
            self._factors["__upflow__"] = message.body["value"]
            return self._maybe_build_keylist()
        factor = self.ctx.exp(
            message.body["value"], self.ctx.inv_exponent(self._r)
        )
        return [
            self._message(
                "gdh-factor",
                {"factor": factor},
                broadcast=True,
                target=controller,
                requires_agreed=True,
                element_count=1,
            )
        ]

    def _on_factor(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if not self._chain or self.member != self._chain[-1]:
            return []  # Agreed-targeted: only the controller processes it
        self._factors[message.sender] = message.body["factor"]
        return self._maybe_build_keylist()

    def _maybe_build_keylist(self) -> List[ProtocolMessage]:
        expected = len(self.view.members) - 1
        upflow = self._factors.get("__upflow__")
        have = len(self._factors) - ("__upflow__" in self._factors)
        if upflow is None or have < expected:
            return []
        self._r = self.ctx.random_exponent(self.rng)
        partials = {
            sender: self.ctx.exp(factor, self._r)
            for sender, factor in self._factors.items()
            if sender != "__upflow__"
        }
        partials[self.member] = upflow
        self._partials = partials
        self._complete(self.ctx.exp(upflow, self._r))
        return [
            self._message(
                "gdh-keylist",
                {"partials": dict(partials)},
                element_count=len(partials),
            )
        ]

    def _on_keylist(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        self._partials = dict(message.body["partials"])
        self._complete(self.ctx.exp(self._partials[self.member], self._r))
        return []

    # -- subtractive events (leave / partition) --------------------------

    def _start_subtractive(self, view: View) -> List[ProtocolMessage]:
        if not set(view.members) <= set(self._partials):
            # A cascaded event interrupted the previous agreement; the
            # cached list cannot rekey this membership.  Everyone's cached
            # list agrees (views and key lists are totally ordered), so all
            # members uniformly fall back to initial key agreement.
            return self._start_formation(view)
        controller = view.newest  # the most recent remaining member
        if self.member != controller:
            return []
        fresh = self.ctx.random_exponent(self.rng)
        shift = self.ctx.exponent_product(fresh, self.ctx.inv_exponent(self._r))
        partials = {}
        for member in view.members:
            if member == self.member:
                partials[member] = self._partials[member]
            else:
                partials[member] = self.ctx.exp(self._partials[member], shift)
        self._r = fresh
        self._partials = partials
        self._complete(self.ctx.exp(partials[self.member], self._r))
        return [
            self._message(
                "gdh-keylist",
                {"partials": dict(partials)},
                element_count=len(partials),
            )
        ]
