"""Cliques GDH IKA.3 group Diffie-Hellman (paper §4.1, Figures 1 and 2).

The shared key is ``g^(r_1 r_2 ... r_n)``; it is never transmitted.
What circulates is the list of *partial keys* ``P_i = g^(∏_{j≠i} r_j)``
from which member *i* computes ``K = P_i^{r_i}``.  The **group controller**
(always the most recent member) builds and broadcasts this list; every
member caches the last list, which is what lets any member take over as
controller after the controller leaves.

Additive events (join = merge with one member):
  token round(s) through the new members → last new member broadcasts the
  accumulated value → every other member *factors out* its contribution
  (an Agreed message targeted at the new controller — §6.2.2 explains why
  this must be totally ordered and what that costs on a WAN) → the new
  controller exponentiates each factor with its fresh contribution and
  broadcasts the new partial-key list.

Subtractive events (leave / partition): the surviving controller deletes
the leavers' partial keys, refreshes its own contribution into every
remaining partial key, and broadcasts the list — one round, one message.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gcs.messages import View, ViewEvent
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage, classify_event


class GdhProtocol(KeyAgreementProtocol):
    """One member's GDH IKA.3 instance."""

    name = "GDH"
    STEP_PHASES = {
        "gdh-token": "upflow",
        "gdh-upflow": "upflow",
        "gdh-factor": "factor-out",
        "gdh-keylist": "broadcast",
    }

    def __init__(self, member, group, rng, ledger=None, engine=None):
        super().__init__(member, group, rng, ledger, engine=engine)
        self._r: Optional[int] = None
        #: cached partial-key list from the last key-list broadcast
        self._partials: Dict[str, int] = {}
        self._factors: Dict[str, int] = {}
        self._chain: List[str] = []
        self._previous_members: Tuple[str, ...] = ()
        #: True while our contribution has been refreshed but not yet
        #: embedded in an adopted key list — a subtractive shift of a
        #: list that predates the refresh would silently mis-key us
        self._r_dirty = False
        #: epoch in which we last factored out our contribution (a key
        #: list built from this epoch's factors embeds our current
        #: contribution, so adopting it is safe even while dirty)
        self._factored_epoch: Optional[Tuple] = None

    # ------------------------------------------------------------------

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._factors = {}
        self._chain: List[str] = []
        previous, self._previous_members = self._previous_members, view.members
        if len(view.members) == 1:
            return self._bootstrap()
        event = classify_event(view)
        if event in (ViewEvent.JOIN, ViewEvent.MERGE):
            return self._start_additive(view, previous)
        return self._start_subtractive(view)

    def restart(self, view: View) -> List[ProtocolMessage]:
        """Re-form from scratch after a declared stall.

        A stall means the cached lists or contributions diverged across
        members (that is exactly what the fast-path guards detect);
        retrying the cached-list paths would stall again forever.  Every
        member drops its cache — restart runs at the same point in the
        Agreed total order everywhere, so the reset is coordinated —
        and the oldest member leads initial key agreement.
        """
        self.key_epoch = None
        self._begin_epoch(view)
        self._factors = {}
        self._chain = []
        self._partials = {}
        self._factored_epoch = None
        # _r and _r_dirty survive: the restarted formation hands every
        # member a fresh contribution (and clears the flag) on its own.
        self._previous_members = view.members
        if len(view.members) == 1:
            return self._bootstrap()
        return self._start_formation(view)

    def _bootstrap(self) -> List[ProtocolMessage]:
        self._r = self.ctx.random_exponent(self.rng)
        self._partials = {self.member: self.group.g}
        self._r_dirty = False  # a singleton's list trivially embeds it
        self._complete(self.ctx.exp_g(self._r))
        return []

    # -- additive events (join / merge) ---------------------------------

    def _new_members(self) -> List[str]:
        """The merging members, in view order (canonical ``joined``)."""
        return [m for m in self.view.members if m in self.view.joined]

    def _start_additive(self, view: View, previous) -> List[ProtocolMessage]:
        new_members = self._new_members()
        old_members = [m for m in view.members if m not in view.joined]
        if not new_members or not old_members:
            # No prior subgroup survives intact.  This condition is
            # derived from the view alone, so every member reaches it
            # identically: initial key agreement, led by the oldest.
            return self._start_formation(view)
        old_controller = old_members[-1]
        if self.member != old_controller:
            # Exactly one member — the old controller — decides between
            # the cached-list fast path and re-formation.  After a
            # partition, a key-list broadcast may have been adopted on
            # one side only, so per-member fallback decisions can
            # disagree and race *two* agreements in one epoch; their
            # interleaved key lists then complete members with
            # mismatched contributions and the group silently diverges.
            return []
        if not set(old_members) <= set(self._partials):
            # Our cache cannot seed the token (a cascaded event
            # interrupted the previous agreement): re-form, led by us —
            # one initiator per epoch whichever path is taken.
            return self._start_formation(view, leader=self.member)
        # Refresh our contribution and launch the token down the new chain.
        self._r = self.ctx.random_exponent(self.rng)
        self._r_dirty = True
        token = self.ctx.exp(self._partials[self.member], self._r)
        self._chain = new_members
        return [
            self._message(
                "gdh-token",
                {"value": token, "chain": list(new_members)},
                broadcast=False,
                target=new_members[0],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def _start_formation(
        self, view: View, leader: Optional[str] = None
    ) -> List[ProtocolMessage]:
        """Initial key agreement: treat everyone but the leader as new.

        The leader defaults to the oldest member (the view-only fallback
        cases); the fast-path deciders pass themselves so that the
        member making the fallback decision is also the one initiator.
        """
        if leader is None:
            leader = view.oldest
        if self.member != leader:
            return []
        self._r = self.ctx.random_exponent(self.rng)
        self._r_dirty = True
        self._partials = {self.member: self.group.g}
        token = self.ctx.exp_g(self._r)
        chain = [m for m in view.members if m != self.member]
        self._chain = chain
        return [
            self._message(
                "gdh-token",
                {"value": token, "chain": list(chain)},
                broadcast=False,
                target=chain[0],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._stale(message):
            return []
        handler = {
            "gdh-token": self._on_token,
            "gdh-upflow": self._on_upflow,
            "gdh-factor": self._on_factor,
            "gdh-keylist": self._on_keylist,
        }.get(message.step)
        if handler is None:
            raise ValueError(f"unknown GDH step {message.step!r}")
        return handler(message)

    def receive_plan(self, messages: List[ProtocolMessage]) -> List:
        """Predict the broadcast-round exponentiations.

        ``gdh-keylist``: every member lifts its partial by its own
        contribution.  ``gdh-upflow``: every non-controller factors its
        contribution out of the accumulated value.  Token-chain and
        factor handling draw fresh randoms, so they cannot be predicted.
        """
        from repro.crypto.parallel import PowChain

        if self.view is None or not self._r:
            return []
        p = self.group.p
        q = self.group.q
        chains: List[PowChain] = []
        for message in messages:
            if self._stale(message):
                continue
            if message.step == "gdh-keylist":
                if self._r_dirty and self._factored_epoch != self.view.view_id:
                    continue
                partial = message.body["partials"].get(self.member)
                if partial is not None:
                    chains.append(PowChain(p, q, self._r, (partial,)))
            elif message.step == "gdh-upflow":
                chain = message.body["chain"]
                if chain and self.member != chain[-1]:
                    inverse = pow(self._r, -1, q)
                    chains.append(
                        PowChain(p, q, inverse, (message.body["value"],))
                    )
        return chains

    def _on_token(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        chain = list(message.body["chain"])
        self._chain = chain
        position = chain.index(self.member)
        if position == len(chain) - 1:
            # Last new member: the new controller.  Broadcast the
            # accumulated value *without* adding a contribution (Figure 1).
            self._factors["__upflow__"] = message.body["value"]
            return [
                self._message(
                    "gdh-upflow",
                    {"value": message.body["value"], "chain": chain},
                    element_count=1,
                )
            ]
        self._r = self.ctx.random_exponent(self.rng)
        self._r_dirty = True
        value = self.ctx.exp(message.body["value"], self._r)
        return [
            self._message(
                "gdh-token",
                {"value": value, "chain": chain},
                broadcast=False,
                target=chain[position + 1],
                requires_agreed=False,
                element_count=1,
            )
        ]

    def _on_upflow(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        # Everyone except the new controller factors out its contribution
        # and sends the result to the new controller, in Agreed order.
        self._chain = list(message.body["chain"])
        controller = self._chain[-1]
        if self.member == controller:
            self._factors["__upflow__"] = message.body["value"]
            return self._maybe_build_keylist()
        factor = self.ctx.exp(
            message.body["value"], self.ctx.inv_exponent(self._r)
        )
        self._factored_epoch = self.view.view_id
        return [
            self._message(
                "gdh-factor",
                {"factor": factor},
                broadcast=True,
                target=controller,
                requires_agreed=True,
                element_count=1,
            )
        ]

    def _on_factor(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if not self._chain or self.member != self._chain[-1]:
            return []  # Agreed-targeted: only the controller processes it
        self._factors[message.sender] = message.body["factor"]
        return self._maybe_build_keylist()

    def _maybe_build_keylist(self) -> List[ProtocolMessage]:
        expected = len(self.view.members) - 1
        upflow = self._factors.get("__upflow__")
        have = len(self._factors) - ("__upflow__" in self._factors)
        if upflow is None or have < expected:
            return []
        self._r = self.ctx.random_exponent(self.rng)
        partials = {
            sender: self.ctx.exp(factor, self._r)
            for sender, factor in self._factors.items()
            if sender != "__upflow__"
        }
        partials[self.member] = upflow
        self._partials = partials
        self._r_dirty = False
        self._complete(self.ctx.exp(upflow, self._r))
        return [
            self._message(
                "gdh-keylist",
                {"partials": dict(partials)},
                element_count=len(partials),
            )
        ]

    def _on_keylist(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._r_dirty and self._factored_epoch != self.view.view_id:
            # This key list was not built from our factor (we sent none
            # this epoch, so it must be a subtractive shift of a cached
            # list), and our contribution was refreshed by an agreement
            # that never completed — so the list embeds our *old*
            # contribution and the key we would compute silently differs
            # from everyone else's.  Stall instead; the epoch watchdog
            # drives a coordinated re-formation from scratch.
            return []
        self._partials = dict(message.body["partials"])
        self._complete(self.ctx.exp(self._partials[self.member], self._r))
        self._r_dirty = False
        return []

    # -- subtractive events (leave / partition) --------------------------

    def _start_subtractive(self, view: View) -> List[ProtocolMessage]:
        controller = view.newest  # the most recent remaining member
        if self.member != controller:
            # Single decision point, as in the additive case: only the
            # controller chooses between the one-round rekey and
            # re-formation, because cached lists can differ across
            # members after a partition interrupted an agreement.
            return []
        if self._r_dirty or not set(view.members) <= set(self._partials):
            # Our own contribution isn't embedded in our cache (an
            # interrupted agreement refreshed it), or the cache doesn't
            # cover the survivors: the shift rekey would mis-key the
            # group.  Re-form instead, led by us.
            return self._start_formation(view, leader=self.member)
        fresh = self.ctx.random_exponent(self.rng)
        shift = self.ctx.exponent_product(fresh, self.ctx.inv_exponent(self._r))
        partials = {}
        for member in view.members:
            if member == self.member:
                partials[member] = self._partials[member]
            else:
                partials[member] = self.ctx.exp(self._partials[member], shift)
        self._r = fresh
        self._partials = partials
        self._complete(self.ctx.exp(partials[self.member], self._r))
        return [
            self._message(
                "gdh-keylist",
                {"partials": dict(partials)},
                element_count=len(partials),
            )
        ]
