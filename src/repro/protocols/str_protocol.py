"""STR: group key agreement on a fully imbalanced ("skinny") tree
(paper §4.4, Figures 8 and 9).

Members occupy positions 1..n from the bottom of the stack; member *i*
holds session random ``r_i`` with blinded random ``br_i = g^{r_i}``.  The
chain of node keys is ``k_1 = r_1`` and ``k_i = g^{r_i · k_{i-1}}`` —
computable either as ``br_i^{k_{i-1}}`` (by members below) or as
``bk_{i-1}^{r_i}`` (by member *i* itself, from the blinded node key
``bk_{i-1} = g^{k_{i-1}}``).  The group key is ``k_n``.

STR minimizes communication (join/merge: 2 rounds; leave/partition: a
single broadcast) and pays with linear computation: after a leave, the
sponsor — the member just below the deepest leaver — recomputes keys *and*
blinded keys all the way up (the ``3/2``-slope the paper measures in
Figure 12).  Members cache the keys below the change point, which is what
keeps *join* cost constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.parallel import PowChain
from repro.gcs.messages import View, ViewEvent
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage, classify_event


class KeyConfirmationError(Exception):
    """A published blinded key does not match the locally computed key."""


class StrProtocol(KeyAgreementProtocol):
    """One member's STR instance.

    ``key_confirmation=True`` enables §5's un-optimized variant: members
    re-compute the blinded keys the sponsor published and verify them
    against their own chain, at one extra exponentiation per position.
    """

    name = "STR"
    STEP_PHASES = {"str-tree": "tree-sync", "str-bkeys": "bkey-broadcast"}

    def __init__(
        self, member, group, rng, ledger=None, engine=None, key_confirmation=False
    ):
        super().__init__(member, group, rng, ledger, engine=engine)
        self.key_confirmation = key_confirmation
        self._session: Optional[int] = None
        self._order: List[str] = []  # positions 1..n, bottom to top
        self._br: Dict[str, int] = {}  # blinded session randoms by member
        self._bk: Dict[int, int] = {}  # published blinded node keys by position
        self._keys: Dict[int, int] = {}  # locally known node keys by position
        self._collected: Dict[Tuple[str, ...], dict] = {}
        self._covered: set = set()
        self._merging = False

    # ------------------------------------------------------------------

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._collected = {}
        self._covered = set()
        self._merging = False
        if len(view.members) == 1:
            return self._bootstrap()
        if classify_event(view) in (ViewEvent.JOIN, ViewEvent.MERGE):
            return self._start_additive(view)
        if self.member not in self._order or not set(view.members) <= set(
            self._order
        ):
            # A cascaded event interrupted a merge: our stack does not
            # cover the new membership.  Recover by re-stacking the
            # component stacks through the merge machinery.
            return self._start_additive(view)
        return self._start_subtractive(view)

    def restart(self, view: View) -> List[ProtocolMessage]:
        # An aborted run can leave stacks half-stacked (some members
        # merged the component stacks, others did not), and a re-run of
        # the additive path would read blinded node keys that were
        # trimmed away.  Re-form from singletons: every member sponsors
        # its own one-member stack and the merge machinery rebuilds the
        # group stack deterministically.
        self.key_epoch = None
        self._session = self.ctx.random_exponent(self.rng)
        blinded = self.ctx.exp_g(self._session)
        self._order = [self.member]
        self._br = {self.member: blinded}
        self._bk = {1: blinded}
        self._keys = {1: self._session}
        return self.start(view)

    def _bootstrap(self) -> List[ProtocolMessage]:
        self._session = self.ctx.random_exponent(self.rng)
        blinded = self.ctx.exp_g(self._session)
        self._order = [self.member]
        self._br = {self.member: blinded}
        self._bk = {1: blinded}
        self._keys = {1: self._session}
        self._complete(self._session)
        return []

    # -- additive: join and merge ----------------------------------------

    def _start_additive(self, view: View) -> List[ProtocolMessage]:
        self._merging = True
        members_set = set(view.members)
        joined_set = set(view.joined)
        have_order = self.member in self._order
        if self.member in joined_set:
            # Merging side: keep our subgroup stack only if it is live
            # (all its members merge alongside us); discard stale state
            # from a previous tenure.
            live = have_order and set(self._order) <= joined_set
            if not live:
                self._session = self.ctx.random_exponent(self.rng)
                blinded = self.ctx.exp_g(self._session)
                self._order = [self.member]
                self._br = {self.member: blinded}
                self._bk = {1: blinded}
                self._keys = {1: self._session}
            stale = [m for m in self._order if m not in members_set]
        else:
            # Base side: the stack must cover exactly the non-joined members.
            stale = [
                m
                for m in self._order
                if m != self.member
                and (m not in members_set or m in joined_set)
            ]
        if stale:
            self._apply_removal(stale)
        messages: List[ProtocolMessage] = []
        if self._order[-1] == self.member:
            # Component sponsor (topmost member): refresh the session
            # random, recompute the top key, broadcast the component tree.
            if not self._refresh_top():
                # A cascade superseded the epoch whose broadcast would
                # have published the chain below us; the component cannot
                # be extended.  Stay silent — coverage never completes
                # and the stall watchdog re-forms from singleton stacks.
                return messages
            component = {
                "order": list(self._order),
                "br": dict(self._br),
                "bk": dict(self._bk),
            }
            self._register_component(component)
            messages.append(
                self._message(
                    "str-tree",
                    component,
                    element_count=len(self._br) + len(self._bk),
                )
            )
            messages.extend(self._maybe_stack())
        return messages

    def _refresh_top(self) -> bool:
        """Round 1: the component sponsor refreshes its session random.

        Returns False when the top key is uncomputable because a cascaded
        event trimmed the stack and superseded the epoch that would have
        re-published the blinded keys below us.
        """
        position = len(self._order)
        self._session = self.ctx.random_exponent(self.rng)
        self._br[self.member] = self.ctx.exp_g(self._session)
        if position == 1:
            top_key = self._session
            self._bk[1] = self._br[self.member]
        elif (position - 1) in self._bk:
            top_key = self.ctx.exp(self._bk[position - 1], self._session)
            self._bk[position] = self.ctx.exp_g(top_key % self.group.q)
        elif (position - 1) in self._keys:
            # k_p = g^{r_p · k_{p-1}} works from either factor; fall back
            # to our cached node key when bk_{p-1} was never published.
            top_key = self.ctx.exp(
                self._br[self.member], self._keys[position - 1] % self.group.q
            )
            self._bk[position] = self.ctx.exp_g(top_key % self.group.q)
        else:
            return False
        self._keys = {
            pos: key for pos, key in self._keys.items() if pos < position
        }
        self._keys[position] = top_key
        return True

    def _register_component(self, component: dict) -> None:
        self._covered.update(component["order"])
        self._collected[tuple(sorted(component["order"]))] = component

    def _maybe_stack(self) -> List[ProtocolMessage]:
        # Cheap-first coverage test, as in TGDH's fold: O(1) per message,
        # full equality only when the counts line up.
        if len(self._covered) != len(self.view.members) or self._covered != set(
            self.view.members
        ):
            return []
        components = [
            comp
            for _, comp in sorted(
                self._collected.items(), key=lambda kv: (-len(kv[0]), kv[0])
            )
        ]
        base = components[0]
        base_size = len(base["order"])
        old_position = (
            self._order.index(self.member) + 1 if self.member in self._order else 0
        )
        in_base = self.member in base["order"]
        merged_order: List[str] = []
        merged_br: Dict[str, int] = {}
        for comp in components:
            merged_order.extend(comp["order"])
            merged_br.update(comp["br"])
        self._order = merged_order
        self._br = merged_br
        # Only the base component's blinded node keys survive the stacking;
        # everything above position base_size is recomputed.
        self._bk = {pos: bk for pos, bk in base["bk"].items() if pos <= base_size}
        if in_base:
            # Keys below the base top are untouched; the base-top key
            # itself is fresh only at the member who refreshed it (the
            # round-2 sponsor); everyone else recomputes it from the
            # refreshed blinded session random.
            keep_top = base_size if old_position == base_size else base_size - 1
            self._keys = {
                pos: key for pos, key in self._keys.items() if pos <= keep_top
            }
        else:
            self._keys = {}
        self._merging = False
        return self._advance(sponsor_position=base_size)

    # -- subtractive: leave and partition ----------------------------------

    def _start_subtractive(self, view: View) -> List[ProtocolMessage]:
        members_set = set(view.members)
        doomed = [m for m in self._order if m not in members_set]
        sponsor_position = self._apply_removal(doomed)
        sponsor_member = self._order[sponsor_position - 1]
        if sponsor_member == self.member:
            # Sponsor: refresh, recompute keys and blinded keys up the
            # stack, broadcast them — the single round of Figure 9.
            self._session = self.ctx.random_exponent(self.rng)
            self._br[self.member] = self.ctx.exp_g(self._session)
        else:
            # The sponsor's session random is being refreshed; forget the
            # stale blinded value so the chain blocks until its broadcast.
            self._br.pop(sponsor_member, None)
        return self._advance(sponsor_position=sponsor_position)

    def _apply_removal(self, doomed: List[str]) -> int:
        """Remove members; return the sponsor position (new numbering)."""
        if not doomed:
            return 1
        doomed_set = set(doomed)
        lowest_removed = min(self._order.index(m) for m in doomed)
        survivors_below = [
            m for m in self._order[:lowest_removed] if m not in doomed_set
        ]
        self._order = [m for m in self._order if m not in doomed_set]
        for member in doomed:
            self._br.pop(member, None)
        sponsor_position = max(1, len(survivors_below))
        self._bk = {
            pos: bk for pos, bk in self._bk.items() if pos < sponsor_position
        }
        self._keys = {
            pos: key for pos, key in self._keys.items() if pos < sponsor_position
        }
        return sponsor_position

    # -- key computation ----------------------------------------------------

    def _advance(self, sponsor_position: int) -> List[ProtocolMessage]:
        """Compute what we can; the sponsor publishes blinded keys."""
        i_am_sponsor = self._order[sponsor_position - 1] == self.member
        self._compute_chain(publish=i_am_sponsor)
        n = len(self._order)
        if n in self._keys:
            self._complete(self._keys[n])
        if not i_am_sponsor:
            return []
        return [
            self._message(
                "str-bkeys",
                {
                    "br": {self.member: self._br[self.member]},
                    "bk": dict(self._bk),
                    "order": list(self._order),
                },
                element_count=1 + len(self._bk),
            )
        ]

    def _my_position(self) -> int:
        return self._order.index(self.member) + 1

    def _compute_chain(self, publish: bool) -> None:
        """Walk node keys upward from the highest cached position."""
        n = len(self._order)
        p = self._my_position()
        start = max((pos for pos in self._keys if pos >= p), default=None)
        if start is None:
            # Derive our own node key from the blinded key below us.
            if p == 1:
                self._keys[1] = self._session
            elif (p - 1) in self._bk:
                self._keys[p] = self.ctx.exp(self._bk[p - 1], self._session)
            else:
                return  # blocked until the sponsor publishes bk_{p-1}
            start = p
        for j in range(start + 1, n + 1):
            member_j = self._order[j - 1]
            if member_j not in self._br:
                return
            self._keys[j] = self.ctx.exp(
                self._br[member_j], self._keys[j - 1] % self.group.q
            )
            if self.key_confirmation and j in self._bk:
                recomputed = self.ctx.exp_g(self._keys[j] % self.group.q)
                if recomputed != self._bk[j]:
                    raise KeyConfirmationError(
                        f"{self.member}: blinded key mismatch at position {j}"
                    )
        if publish:
            for j in range(p, n + 1):
                if j not in self._bk and j in self._keys:
                    self._bk[j] = self.ctx.exp_g(self._keys[j] % self.group.q)

    # -- message handling -----------------------------------------------------

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._stale(message):
            return []
        if message.step == "str-tree":
            if not self._merging:
                return []
            self._register_component(message.body)
            return self._maybe_stack()
        if message.step == "str-bkeys":
            if self._merging:
                return []
            self._br.update(message.body["br"])
            for pos, bk in message.body["bk"].items():
                self._bk[pos] = bk
            self._order = list(message.body["order"])
            self._compute_chain(publish=False)
            n = len(self._order)
            if n in self._keys:
                self._complete(self._keys[n])
            return []
        raise ValueError(f"unknown STR step {message.step!r}")

    def receive_plan(self, messages: List[ProtocolMessage]) -> List[PowChain]:
        """Predict the chain walk a ``str-bkeys`` batch will trigger.

        Pure overlay of the sponsor's broadcast on our cached stack
        state, mirroring :meth:`_compute_chain` (non-publishing side):
        derive our own node key from ``bk_{p-1}`` if needed, then lift
        each higher member's blinded random by the running node key.
        """
        if (
            self.view is None
            or self._merging
            or self._session is None
            or self.key_confirmation
        ):
            return []
        br = dict(self._br)
        bk = dict(self._bk)
        order = self._order
        relevant = False
        for message in messages:
            if message.step == "str-bkeys" and not self._stale(message):
                relevant = True
                br.update(message.body["br"])
                bk.update(message.body["bk"])
                order = list(message.body["order"])
        if not relevant or self.member not in order:
            return []
        p = self.group.p
        q = self.group.q
        n = len(order)
        pos = order.index(self.member) + 1
        bases: List[int] = []
        start = max((k for k in self._keys if k >= pos), default=None)
        if start is None:
            if pos == 1:
                start_exponent = self._session
                start = 1
            elif (pos - 1) in bk:
                start_exponent = self._session
                bases.append(bk[pos - 1])
                start = pos
            else:
                return []
        else:
            start_exponent = self._keys[start]
        for j in range(start + 1, n + 1):
            member_j = order[j - 1]
            if member_j not in br:
                break
            bases.append(br[member_j])
        if not bases:
            return []
        return [PowChain(p, q, start_exponent, tuple(bases))]
