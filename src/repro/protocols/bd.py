"""Burmester-Desmedt (BD) group key agreement (paper §4.5, Figure 10).

BD is stateless across membership events and fully symmetric: for *any*
membership change, every member runs the same two broadcast rounds —

1. broadcast ``z_i = g^{r_i}``;
2. broadcast ``X_i = (z_{i+1} / z_{i-1})^{r_i}``;

and computes ``K = z_{i-1}^{n r_i} · X_i^{n-1} · X_{i+1}^{n-2} ··· X_{i-2}``
``= g^{r_1 r_2 + r_2 r_3 + ... + r_n r_1}``.

Only three full exponentiations per member, but ``n-1`` *small-exponent*
exponentiations hide in the key derivation (the paper's "hidden cost",
charged as modular multiplications), plus ``2n`` broadcasts and ``2(n-1)``
signature verifications per member — exactly the mix that makes BD the best
protocol for small LAN groups and the worst for large ones.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gcs.messages import View
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage


class BdProtocol(KeyAgreementProtocol):
    """One member's Burmester-Desmedt instance."""

    name = "BD"
    STEP_PHASES = {"bd-z": "round-1", "bd-x": "round-2"}

    def __init__(self, member, group, rng, ledger=None, engine=None):
        super().__init__(member, group, rng, ledger, engine=engine)
        self._r = 0
        self._z: Dict[str, int] = {}
        self._x: Dict[str, int] = {}

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._z = {}
        self._x = {}
        self._r = self.ctx.random_exponent(self.rng)
        z = self.ctx.exp_g(self._r)
        self._z[self.member] = z
        if len(view.members) == 1:
            self._complete(z)
            return []
        return [self._message("bd-z", {"z": z}, element_count=1)]

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        # ``_stale`` and the per-step bookkeeping are inlined with local
        # bindings: every member receives every other member's two
        # broadcasts, so this body runs O(n²) times per rekey.
        view = self.view
        if view is None or message.epoch != view.view_id:
            return []
        step = message.step
        if step == "bd-z":
            z = self._z
            z[message.sender] = message.body["z"]
            if len(z) == len(view.members):
                return [self._second_round()]
            return []
        if step == "bd-x":
            x = self._x
            x[message.sender] = message.body["x"]
            if len(x) == len(view.members):
                self._derive_key()
            return []
        raise ValueError(f"unknown BD step {step!r}")

    def receive_plan(self, messages: List[ProtocolMessage]) -> List:
        """Predict the two per-member full exponentiations.

        A round completes only when the *last* missing broadcast of a
        same-instant batch lands, so the overlay considers the whole
        batch: round 1 completing yields ``(z_next / z_prev)^{r_i}``,
        round 2 completing yields ``z_prev^{(n r_i) mod q}``.  The
        small-exponent ``weighted_product`` never hits the power cache
        and is not predicted.
        """
        from repro.crypto.parallel import PowChain

        view = self.view
        if view is None or not self._r:
            return []
        members = view.members
        if self.member not in members:
            return []
        z = dict(self._z)
        xs = set(self._x)
        saw_z = saw_x = False
        for message in messages:
            if message.epoch != view.view_id:
                continue
            if message.step == "bd-z":
                z[message.sender] = message.body["z"]
                saw_z = True
            elif message.step == "bd-x":
                xs.add(message.sender)
                saw_x = True
        n = len(members)
        i = members.index(self.member)
        prev_z = z.get(members[(i - 1) % n])
        next_z = z.get(members[(i + 1) % n])
        p = self.group.p
        q = self.group.q
        chains: List[PowChain] = []
        round1_completes = saw_z and len(z) == n
        if round1_completes and prev_z is not None and next_z is not None:
            ratio = next_z * pow(prev_z, -1, p) % p
            chains.append(PowChain(p, q, self._r, (ratio,)))
            xs.add(self.member)  # our own X joins the set inline
        if saw_x and len(xs) == n and prev_z is not None and len(z) == n:
            exponent = (n % q) * self._r % q
            chains.append(PowChain(p, q, exponent, (prev_z,)))
        return chains

    def _neighbors(self) -> Dict[str, str]:
        members = self.view.members
        i = members.index(self.member)
        n = len(members)
        return {"prev": members[(i - 1) % n], "next": members[(i + 1) % n]}

    def _second_round(self) -> ProtocolMessage:
        around = self._neighbors()
        ratio = self.ctx.mul(
            self._z[around["next"]], self.ctx.inv_element(self._z[around["prev"]])
        )
        x = self.ctx.exp(ratio, self._r)
        self._x[self.member] = x
        return self._message("bd-x", {"x": x}, element_count=1)

    def _derive_key(self) -> None:
        members = self.view.members
        n = len(members)
        i = members.index(self.member)
        prev = members[(i - 1) % n]
        # z_{i-1}^{n * r_i}: one full exponentiation (the exponent is
        # reduced mod q, so its size is cryptographic, not small).
        exponent = self.ctx.exponent_product(n % self.group.q, self._r)
        key = self.ctx.exp(self._z[prev], exponent)
        # X_i^{n-1} * X_{i+1}^{n-2} * ... * X_{i+n-2}^{1}: the hidden cost.
        # weighted_product charges each factor exactly as a small_exp +
        # mul pair (same ledger delta as the per-factor loop) while the
        # descending weights let it compute via prefix products.
        pairs = [
            (self._x[members[(i + offset) % n]], n - 1 - offset)
            for offset in range(n - 1)
        ]
        self._complete(self.ctx.weighted_product(key, pairs))
