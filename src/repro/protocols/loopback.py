"""In-memory driver for key agreement protocols.

:class:`LoopbackGroup` runs one protocol instance per member over a
synchronous, totally ordered transport — no network, no virtual time —
which is what the correctness tests and the Table 1 operation-counting
benchmarks use.  Messages are delivered in deterministic rounds (all
messages emitted in round *k* are delivered before any emitted in round
*k+1*), so the driver also reports the paper's "communication rounds"
measure directly.

Partitions and merges are first-class: ``partition`` splits off a live
subgroup (whose members keep their protocol state), and ``merge`` folds
another subgroup back in with the canonical "new members" convention (the
subgroup of the oldest member is the base; everyone else re-keys as a
newcomer), matching what the Secure Spread layer derives from the group
communication system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.crypto.engine import EngineSpec, get_engine
from repro.crypto.groups import GROUP_TEST, SchnorrGroup
from repro.crypto.ledger import OpCounts
from repro.crypto.rng import DeterministicRandom
from repro.gcs.messages import View, ViewEvent
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage


@dataclass
class RunStats:
    """What one membership event cost, as the loopback driver measured it."""

    event: ViewEvent
    members: Tuple[str, ...]
    rounds: int
    messages: List[ProtocolMessage]
    op_counts: Dict[str, OpCounts]
    key: int

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    @property
    def broadcasts(self) -> int:
        return sum(1 for m in self.messages if m.broadcast)

    @property
    def unicasts(self) -> int:
        return sum(1 for m in self.messages if not m.broadcast)

    def exponentiations(self, member: Optional[str] = None) -> int:
        """Full exponentiations by one member, or by everyone."""
        if member is not None:
            return self.op_counts[member].exp_count()
        return sum(counts.exp_count() for counts in self.op_counts.values())

    def max_exponentiations(self) -> int:
        """The busiest member's exponentiation count."""
        return max(counts.exp_count() for counts in self.op_counts.values())


class LoopbackGroup:
    """A group of protocol instances driven over an in-memory transport."""

    def __init__(
        self,
        protocol_cls: Type[KeyAgreementProtocol],
        group: SchnorrGroup = GROUP_TEST,
        seed: int = 0,
        engine: EngineSpec = None,
        _births: Optional[Dict[str, int]] = None,
        _birth_counter: Optional[itertools.count] = None,
        _view_counter: Optional[itertools.count] = None,
    ):
        self.protocol_cls = protocol_cls
        self.group = group
        self.seed = seed
        self.engine = get_engine(engine)
        self.protocols: Dict[str, KeyAgreementProtocol] = {}
        self.departed: Dict[str, KeyAgreementProtocol] = {}
        self._births = _births if _births is not None else {}
        self._birth_counter = _birth_counter or itertools.count(1)
        self._view_counter = _view_counter or itertools.count(1)
        self.last_stats: Optional[RunStats] = None

    # -- membership operations ---------------------------------------------

    def members(self) -> Tuple[str, ...]:
        """Current members ordered by join age (oldest first)."""
        return tuple(sorted(self.protocols, key=lambda m: self._births[m]))

    def join(self, name: str) -> RunStats:
        """One member joins (the paper's join event)."""
        if name in self.protocols:
            raise ValueError(f"{name} is already a member")
        rng = DeterministicRandom(self.seed)
        self.protocols[name] = self.departed.pop(
            name, None
        ) or self.protocol_cls(name, self.group, rng, engine=self.engine)
        self._births.setdefault(name, next(self._birth_counter))
        view = self._view(ViewEvent.JOIN, joined=(name,))
        return self._drive(view)

    def leave(self, name: str) -> RunStats:
        """One member leaves (the paper's leave event)."""
        if name not in self.protocols:
            raise ValueError(f"{name} is not a member")
        self.departed[name] = self.protocols.pop(name)
        view = self._view(ViewEvent.LEAVE, left=(name,))
        return self._drive(view)

    def partition(self, minority: List[str]) -> "LoopbackGroup":
        """Split ``minority`` off into its own live subgroup.

        Both sides re-key independently; the returned subgroup can later be
        folded back with :meth:`merge`.
        """
        missing = [m for m in minority if m not in self.protocols]
        if missing:
            raise ValueError(f"not members: {missing}")
        if len(minority) >= len(self.protocols):
            raise ValueError("partition must leave a surviving majority side")
        other = LoopbackGroup(
            self.protocol_cls,
            self.group,
            self.seed,
            engine=self.engine,
            _births=self._births,
            _birth_counter=self._birth_counter,
            _view_counter=self._view_counter,
        )
        for name in minority:
            other.protocols[name] = self.protocols.pop(name)
        majority_view = self._view(ViewEvent.PARTITION, left=tuple(minority))
        self._drive(majority_view)
        minority_view = other._view(
            ViewEvent.PARTITION,
            left=tuple(m for m in self.protocols),
        )
        other._drive(minority_view)
        return other

    def merge(self, other: "LoopbackGroup") -> RunStats:
        """Fold another subgroup back in (the paper's merge event).

        ``joined`` is canonical: the subgroup holding the oldest member
        overall is the base; all other members re-key as newcomers.
        """
        if other.protocol_cls is not self.protocol_cls:
            raise ValueError("cannot merge groups running different protocols")
        all_members = list(self.protocols) + list(other.protocols)
        oldest = min(all_members, key=lambda m: self._births[m])
        base_side = self if oldest in self.protocols else other
        joined = tuple(
            sorted(
                (m for m in all_members if m not in base_side.protocols),
                key=lambda m: self._births[m],
            )
        )
        self.protocols.update(other.protocols)
        other.protocols = {}
        view = self._view(ViewEvent.MERGE, joined=joined)
        return self._drive(view)

    def mass_join(self, names: List[str]) -> RunStats:
        """Several fresh members join at once (merge of newcomers)."""
        rng = DeterministicRandom(self.seed)
        for name in names:
            if name in self.protocols:
                raise ValueError(f"{name} is already a member")
            self.protocols[name] = self.protocol_cls(
                name, self.group, rng, engine=self.engine
            )
            self._births.setdefault(name, next(self._birth_counter))
        event = ViewEvent.MERGE if len(names) > 1 else ViewEvent.JOIN
        view = self._view(event, joined=tuple(names))
        return self._drive(view)

    def mass_leave(self, names: List[str]) -> RunStats:
        """Several members leave at once (the paper's partition event)."""
        for name in names:
            if name not in self.protocols:
                raise ValueError(f"{name} is not a member")
            self.departed[name] = self.protocols.pop(name)
        view = self._view(ViewEvent.PARTITION, left=tuple(names))
        return self._drive(view)

    # -- key accessors --------------------------------------------------------

    def shared_key(self) -> int:
        """The group key, asserting every member agrees on it."""
        keys = {proto.key for proto in self.protocols.values()}
        if len(keys) != 1:
            raise AssertionError(f"members disagree on the key: {len(keys)} values")
        return keys.pop()

    # -- internals -----------------------------------------------------------

    def _view(
        self,
        event: ViewEvent,
        joined: Tuple[str, ...] = (),
        left: Tuple[str, ...] = (),
    ) -> View:
        return View(
            view_id=(1, next(self._view_counter)),
            group="loopback",
            members=self.members(),
            event=event,
            joined=joined,
            left=left,
        )

    def _drive(self, view: View) -> RunStats:
        before = {
            name: proto.ledger.snapshot() for name, proto in self.protocols.items()
        }
        outbox: List[ProtocolMessage] = []
        for name in view.members:
            outbox.extend(self.protocols[name].start(view))
        rounds = 0
        log: List[ProtocolMessage] = []
        while outbox:
            rounds += 1
            log.extend(outbox)
            next_outbox: List[ProtocolMessage] = []
            for message in outbox:
                for name in view.members:
                    if name == message.sender:
                        continue
                    if message.target is not None and message.target != name:
                        continue
                    next_outbox.extend(self.protocols[name].receive(message))
            outbox = next_outbox
            if rounds > 10 * (len(view.members) + 2):
                raise RuntimeError(f"{self.protocol_cls.name} did not converge")
        for name in view.members:
            proto = self.protocols[name]
            if not proto.done_for(view):
                raise AssertionError(f"{name} did not finish keying for {view}")
        stats = RunStats(
            event=view.event,
            members=view.members,
            rounds=rounds,
            messages=log,
            op_counts={
                name: self.protocols[name].ledger.delta_since(before[name])
                for name in view.members
            },
            key=self.shared_key(),
        )
        self.last_stats = stats
        return stats


def build_group(
    protocol_cls: Type[KeyAgreementProtocol],
    size: int,
    group: SchnorrGroup = GROUP_TEST,
    seed: int = 0,
    prefix: str = "m",
    engine: EngineSpec = None,
) -> LoopbackGroup:
    """A convenience: form a group of ``size`` members by sequential joins."""
    loop = LoopbackGroup(protocol_cls, group, seed, engine=engine)
    for index in range(size):
        loop.join(f"{prefix}{index}")
    return loop
