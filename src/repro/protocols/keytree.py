"""The binary key tree underlying TGDH (paper §4.3, Figures 4-7).

Every node carries a secret **key** (known only to the members below it)
and a public **blinded key** ``bkey = g^key`` (known group-wide once
published).  A leaf's key is its member's session random; an internal
node's key is the Diffie-Hellman agreement of its two children:
``key = bkey_sibling ^ key_child``.  The root key is the group key.

The tree structure evolves deterministically at every member — insertion
uses the paper's heuristic ("the rightmost shallowest node which does not
increase the height", footnote 5), and removal promotes the departed
leaf's sibling — so members only ever need to exchange blinded keys.

Secret keys are *local* state: a serialized tree carries blinded keys only
("the keys are never broadcasted", Figure 4's footnote).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class TreeNode:
    """One node of a key tree."""

    __slots__ = ("member", "left", "right", "parent", "key", "bkey", "_height")

    def __init__(
        self,
        member: Optional[str] = None,
        left: Optional["TreeNode"] = None,
        right: Optional["TreeNode"] = None,
    ):
        self.member = member
        self.left = left
        self.right = right
        self.parent: Optional[TreeNode] = None
        if left is not None:
            left.parent = self
        if right is not None:
            right.parent = self
        # Cached subtree height, maintained across structural mutations so
        # the insertion heuristic never re-walks whole subtrees.
        if left is None and right is None:
            self._height = 0
        else:
            self._height = 1 + max(left._height, right._height)
        #: secret key — local knowledge of the members below this node
        self.key: Optional[int] = None
        #: published blinded key — group knowledge; None means invalidated
        self.bkey: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.member is not None

    def height(self) -> int:
        return self._height

    def _recompute_height_up(self) -> None:
        """Refresh cached heights from this node to the root, stopping as
        soon as a recomputed value is unchanged (ancestors are then
        already correct)."""
        node: Optional[TreeNode] = self
        while node is not None:
            fresh = (
                0
                if node.is_leaf
                else 1 + max(node.left._height, node.right._height)
            )
            if fresh == node._height:
                return
            node._height = fresh
            node = node.parent

    def sibling(self) -> Optional["TreeNode"]:
        if self.parent is None:
            return None
        return self.parent.right if self.parent.left is self else self.parent.left


class KeyTree:
    """A member's replica of the group's key tree."""

    def __init__(self, root: TreeNode):
        self.root = root
        # member -> leaf node, so path walks don't rescan every leaf.
        self._leaf_index: Dict[str, TreeNode] = {
            leaf.member: leaf for leaf in self.leaves()
        }
        # Left-to-right member list, rebuilt lazily after structural
        # mutations (TGDH consults membership several times per received
        # message; callers treat the list as read-only).
        self._members_cache: Optional[List[str]] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def singleton(cls, member: str, key: Optional[int] = None) -> "KeyTree":
        node = TreeNode(member=member)
        node.key = key
        return cls(node)

    # -- queries ----------------------------------------------------------

    def leaves(self) -> List[TreeNode]:
        """All leaves, left to right."""
        found: List[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.member is not None:
                found.append(node)
            else:
                stack.append(node.right)
                stack.append(node.left)
        return found

    def members(self) -> List[str]:
        """Member names, left to right (do not mutate the returned list)."""
        cached = self._members_cache
        if cached is None:
            cached = self._members_cache = [leaf.member for leaf in self.leaves()]
        return cached

    def leaf_of(self, member: str) -> TreeNode:
        try:
            return self._leaf_index[member]
        except KeyError:
            raise KeyError(f"{member} is not in the tree") from None

    def rightmost_member(self, node: Optional[TreeNode] = None) -> str:
        """The rightmost leaf's member under ``node`` (default: the root)."""
        node = node or self.root
        while not node.is_leaf:
            node = node.right
        return node.member

    def path(self, member: str) -> List[TreeNode]:
        """Nodes from the member's leaf up to (and including) the root."""
        node: Optional[TreeNode] = self.leaf_of(member)
        nodes = []
        while node is not None:
            nodes.append(node)
            node = node.parent
        return nodes

    def height(self) -> int:
        return self.root.height()

    def node_id(self, node: TreeNode) -> str:
        """Root-relative address: '' for the root, then '0'/'1' per step."""
        bits = []
        while node.parent is not None:
            bits.append("0" if node.parent.left is node else "1")
            node = node.parent
        return "".join(reversed(bits))

    def find(self, node_id: str) -> Optional[TreeNode]:
        """The node at ``node_id``, or None when the path does not exist
        in this tree (divergent shapes after an interrupted cascade)."""
        node = self.root
        for bit in node_id:
            if node is None:
                return None
            node = node.left if bit == "0" else node.right
        return node

    # -- structural mutation ----------------------------------------------

    def insertion_point(self, joining_height: int) -> TreeNode:
        """The paper's heuristic: the rightmost shallowest node where
        hanging a subtree of ``joining_height`` does not increase the
        tree's height; the root if no such node exists."""
        target_height = self.height()
        # A perfect tree has no suitable node at all (every node sits at
        # depth + height == target, so hanging anything under it adds a
        # level) — the BFS below would visit the whole tree just to fall
        # through to the root.  Perfection is a leaf count of 2^height,
        # so that worst case — every second join while a group doubles —
        # is answered in O(1).
        if len(self._leaf_index) == 1 << target_height:
            return self.root
        # A subtree at least as tall as the whole tree can only hang off
        # the root (any node below it would need depth + 1 + height ≤
        # height of the tree, impossible at depth ≥ 0) — the other O(1)
        # common case, merging two grown trees of equal height.
        if joining_height >= target_height:
            return self.root
        # Right-child-first level scan => within a depth, rightmost comes
        # first.  Children are only explored below *unsuitable* nodes:
        # the first suitable node seen is the answer, so nothing deeper
        # matters.  Plain per-level lists — no (node, depth) tuples, no
        # deque — because batched growth calls this once per joining
        # member per receiver, and the allocation churn is measurable.
        level = [self.root]
        limit = target_height - 1
        while level:
            nxt: List[TreeNode] = []
            for node in level:
                height = node._height
                if height < joining_height:
                    height = joining_height
                if height <= limit:
                    return node
                if node.member is None:
                    nxt.append(node.right)
                    nxt.append(node.left)
            level = nxt
            limit -= 1
        return self.root

    def insert_tree(self, other: "KeyTree") -> TreeNode:
        """Graft ``other`` as the right sibling of the insertion point.

        Returns the new intermediate node.  All keys and blinded keys from
        the intermediate node up to the root are invalidated.
        """
        anchor = self.insertion_point(other.height())
        parent = anchor.parent
        intermediate = TreeNode(left=anchor, right=other.root)
        if parent is None:
            self.root = intermediate
        else:
            if parent.left is anchor:
                parent.left = intermediate
            else:
                parent.right = intermediate
            intermediate.parent = parent
            parent._recompute_height_up()
        self._leaf_index.update(other._leaf_index)
        self._members_cache = None
        self._invalidate_up(intermediate)
        return intermediate

    def remove_members(self, names: Iterable[str]) -> List[TreeNode]:
        """Delete the given leaves, promoting each sibling (Figure 7).

        Returns the nodes whose subtrees were promoted (the points whose
        ancestors were invalidated).  Removal order is left-to-right tree
        order, which every member computes identically.
        """
        doomed = set(names)
        if not doomed:
            return []
        self._members_cache = None
        survivors = [m for m in self.members() if m not in doomed]
        if not survivors:
            raise ValueError("cannot remove every member from the tree")
        promoted: List[TreeNode] = []
        for name in [m for m in self.members() if m in doomed]:
            leaf = self.leaf_of(name)
            parent = leaf.parent
            if parent is None:  # removing the only node cannot happen here
                raise ValueError("cannot remove the last leaf")
            sibling = leaf.sibling()
            grand = parent.parent
            sibling.parent = grand
            if grand is None:
                self.root = sibling
            elif grand.left is parent:
                grand.left = sibling
            else:
                grand.right = sibling
            # Fully detach the removed leaf and its bypassed parent so
            # stale references (e.g. recorded promotion points) can be
            # recognized as no longer part of the tree.
            parent.parent = None
            leaf.parent = None
            del self._leaf_index[name]
            if grand is not None:
                grand._recompute_height_up()
            promoted.append(sibling)
            # Only nodes *above* the promotion point become stale; the
            # promoted subtree's own keys are still valid (freshness comes
            # from the sponsor's session-random refresh).
            self._invalidate_up(grand)
        self._members_cache = None
        return promoted

    def invalidate_path(self, member: str) -> None:
        """Invalidate everything above a leaf (after a session-key refresh)."""
        leaf = self.leaf_of(member)
        self._invalidate_up(leaf.parent)

    def _invalidate_up(self, node: Optional[TreeNode]) -> None:
        while node is not None:
            if not node.is_leaf:
                node.key = None
                node.bkey = None
            node = node.parent

    # -- serialization (blinded keys only) --------------------------------

    def serialize(self):
        """Nested-tuple form carrying structure and blinded keys only."""
        return _serialize(self.root)

    @classmethod
    def deserialize(cls, data) -> "KeyTree":
        return cls(_deserialize(data))

    def bkey_count(self) -> int:
        """How many blinded keys a serialization carries (for sizing)."""
        return sum(1 for node in self._all_nodes() if node.bkey is not None)

    def _all_nodes(self) -> List[TreeNode]:
        nodes = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                stack.append(node.left)
                stack.append(node.right)
        return nodes


def serialized_members(data) -> List[str]:
    """Member names in a serialized tree, without building any nodes.

    The registration path only needs the member set to track coverage;
    deserializing whole trees for that would dominate large merges.
    """
    members: List[str] = []
    stack = [data]
    while stack:
        item = stack.pop()
        if item[0] == "L":
            members.append(item[1])
        else:
            stack.append(item[1])
            stack.append(item[2])
    return members


def _serialize(node: TreeNode):
    if node.is_leaf:
        return ("L", node.member, node.bkey)
    return ("N", _serialize(node.left), _serialize(node.right), node.bkey)


def _deserialize(data) -> TreeNode:
    if data[0] == "L":
        node = TreeNode(member=data[1])
        node.bkey = data[2]
        return node
    node = TreeNode(left=_deserialize(data[1]), right=_deserialize(data[2]))
    node.bkey = data[3]
    return node
