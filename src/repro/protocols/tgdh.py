"""Tree-based Group Diffie-Hellman (TGDH) (paper §4.3, Figures 4-7).

Every member replicates the key tree structure and all *published* blinded
keys, and knows the secret keys on the path from its own leaf to the root
(the root key is the group key).  After any membership event the structure
is updated deterministically, stale keys are invalidated, and **sponsors**
— always the rightmost member under the affected node — compute and
broadcast the missing blinded keys until every member can reach the root:

* join/merge: each (sub)group's sponsor broadcasts its refreshed tree
  (round 1); all members graft the trees at the rightmost shallowest
  insertion point; the sponsor under the merge point publishes the new
  blinded keys (round 2);
* leave: the departed leaf's sibling subtree is promoted and its rightmost
  member refreshes and rebroadcasts — one round;
* partition: the same machinery iterates — "if a sponsor could not compute
  the group key, the next sponsor comes into play" — for at most
  tree-height rounds (Figure 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.parallel import PowChain
from repro.gcs.messages import View, ViewEvent
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage, classify_event
from repro.protocols.keytree import KeyTree, TreeNode, serialized_members


class KeyConfirmationError(Exception):
    """A published blinded key does not match the locally computed key."""


class TgdhProtocol(KeyAgreementProtocol):
    """One member's TGDH instance.

    ``key_confirmation=True`` enables the behaviour §5 describes in the
    original Cliques implementation: every member re-computes each blinded
    key the sponsor published and checks it against its own keys ("a form
    of key confirmation").  It costs one extra exponentiation per tree
    level per member; the paper's measurements (and our default) use the
    optimized variant without it.
    """

    name = "TGDH"
    STEP_PHASES = {"tgdh-tree": "tree-sync", "tgdh-bkeys": "bkey-broadcast"}

    def __init__(
        self, member, group, rng, ledger=None, engine=None, key_confirmation=False
    ):
        super().__init__(member, group, rng, ledger, engine=engine)
        self.key_confirmation = key_confirmation
        self._session: Optional[int] = None
        self._tree: Optional[KeyTree] = None
        self._collected: Dict[Tuple[str, ...], object] = {}
        self._covered: set = set()
        self._pending_updates: List[Dict[str, int]] = []
        self._merging = False
        self._sponsors: set = set()

    # ------------------------------------------------------------------

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._collected = {}
        self._covered = set()
        self._pending_updates = []
        self._merging = False
        self._sponsors = set()
        if len(view.members) == 1:
            return self._bootstrap()
        if classify_event(view) in (ViewEvent.JOIN, ViewEvent.MERGE):
            return self._start_additive(view)
        if self._tree is None or not set(view.members) <= set(
            self._tree.members()
        ):
            # A cascaded event interrupted a merge: our tree does not cover
            # the new membership.  Recover by re-merging the component
            # trees (each member's tree state is consistent within its
            # component, so the merge machinery reassembles the group).
            return self._start_additive(view)
        return self._start_subtractive(view)

    def restart(self, view: View) -> List[ProtocolMessage]:
        # An aborted run can leave component trees half-merged, and
        # *differently* so at different members.  Re-form from singleton
        # leaves: every member sponsors itself and the n-way merge
        # machinery reassembles the group tree deterministically.
        self.key_epoch = None
        self._session = self.ctx.random_exponent(self.rng)
        self._tree = KeyTree.singleton(self.member, key=self._session)
        return self.start(view)

    def _bootstrap(self) -> List[ProtocolMessage]:
        self._session = self.ctx.random_exponent(self.rng)
        self._tree = KeyTree.singleton(self.member, key=self._session)
        self._complete(self._session)
        return []

    # -- additive: join and merge ----------------------------------------

    def _start_additive(self, view: View) -> List[ProtocolMessage]:
        self._merging = True
        members_set = set(view.members)
        joined_set = set(view.joined)
        have_tree = (
            self._tree is not None and self.member in self._tree.members()
        )
        if self.member in joined_set:
            # Merging side.  Keep our subgroup tree only if it is *live* —
            # all its members merge alongside us (tree ⊆ joined).  A stale
            # tree from a previous tenure is discarded.
            live = have_tree and set(self._tree.members()) <= joined_set
            if not live:
                self._session = self.ctx.random_exponent(self.rng)
                self._tree = KeyTree.singleton(self.member, key=self._session)
            stale = [m for m in self._tree.members() if m not in members_set]
        else:
            # Base side: the tree must cover exactly the non-joined members.
            stale = [
                m
                for m in self._tree.members()
                if m != self.member
                and (m not in members_set or m in joined_set)
            ]
        if stale:
            self._tree.remove_members(stale)
        messages: List[ProtocolMessage] = []
        if self._tree.rightmost_member() == self.member:
            # Component sponsor: refresh our session random, recompute the
            # path, and broadcast the component tree (round 1).
            self._refresh_leaf()
            self._compute_path_keys()
            self._fill_path_bkeys(include_root=True, unrestricted=True)
            serialized = self._tree.serialize()
            self._register_tree(serialized)
            messages.append(
                self._message(
                    "tgdh-tree",
                    {"tree": serialized},
                    element_count=self._tree.bkey_count(),
                )
            )
            messages.extend(self._maybe_fold())
        return messages

    def _register_tree(self, serialized) -> None:
        members = serialized_members(serialized)
        self._covered.update(members)
        self._collected[tuple(sorted(members))] = serialized

    def _maybe_fold(self) -> List[ProtocolMessage]:
        # Cheap-first coverage test: the length compare is O(1) per
        # message; the full set equality runs only once, when the counts
        # finally line up.
        if len(self._covered) != len(self.view.members) or self._covered != set(
            self.view.members
        ):
            return []
        # The collected component trees must partition the membership.
        # A cascade can leave them *overlapping* (a member's stale
        # singleton alongside a full component tree that also contains
        # it); folding that would plant duplicate leaves and corrupt the
        # tree.  Every member sees the same Agreed broadcasts, so all of
        # them detect the overlap and stall identically — the epoch
        # watchdog then drives a coordinated restart from singleton
        # leaves, which always partitions cleanly.
        if sum(len(members) for members in self._collected) != len(
            self.view.members
        ):
            return []
        # Deterministic fold: largest tree first, ties by member names.
        trees = [
            KeyTree.deserialize(data)
            for _, data in sorted(
                self._collected.items(), key=lambda kv: (-len(kv[0]), kv[0])
            )
        ]
        base = trees[0]
        intermediates = []
        for other in trees[1:]:
            intermediates.append(base.insert_tree(other))
        self._tree = base
        # The sponsors of the update round: the rightmost member under
        # each merge point ("the rightmost member of the subtree rooted at
        # the merge point becomes the sponsor", Figure 4).
        self._sponsors = {
            base.rightmost_member(node) for node in intermediates
        }
        self._merging = False
        leaf = self._tree.leaf_of(self.member)
        leaf.key = self._session
        for updates in self._pending_updates:
            for node_id, bkey in updates.items():
                node = self._tree.find(node_id)
                if node is not None:  # unknown id: divergent fold, see receive()
                    node.bkey = bkey
        self._pending_updates = []
        return self._advance()

    # -- subtractive: leave and partition ---------------------------------

    def _start_subtractive(self, view: View) -> List[ProtocolMessage]:
        members_set = set(view.members)
        doomed = [m for m in self._tree.members() if m not in members_set]
        promoted = self._tree.remove_members(doomed)
        attached = [
            node for node in promoted if self._is_attached(node)
        ]
        # Every promoted subtree's rightmost member is a sponsor
        # (Figure 6); the shallowest rightmost one also refreshes.
        self._sponsors = {
            self._tree.rightmost_member(node) for node in attached
        }
        refresher = self._pick_refresher(attached)
        self._sponsors.add(refresher)
        if refresher == self.member:
            self._refresh_leaf()
        else:
            # Everyone knows who refreshes and treats its old blinded keys
            # as stale until the sponsor's broadcast arrives.
            leaf = self._tree.leaf_of(refresher)
            leaf.bkey = None
            self._tree.invalidate_path(refresher)
        return self._advance()

    def _is_attached(self, node: TreeNode) -> bool:
        while node.parent is not None:
            node = node.parent
        return node is self._tree.root

    def _pick_refresher(self, promoted: List[TreeNode]) -> str:
        """The shallowest rightmost sponsor changes its share (Figure 6)."""
        if not promoted:
            return self._tree.rightmost_member()
        def rank(node: TreeNode):
            node_id = self._tree.node_id(node)
            # Shallowest first; rightmost ('1' > '0') wins ties.
            return (len(node_id), tuple(-int(b) for b in node_id))
        chosen = min(promoted, key=rank)
        return self._tree.rightmost_member(chosen)

    # -- the generic completion machinery ---------------------------------

    def _refresh_leaf(self) -> None:
        self._session = self.ctx.random_exponent(self.rng)
        leaf = self._tree.leaf_of(self.member)
        leaf.key = self._session
        leaf.bkey = None
        self._tree.invalidate_path(self.member)

    def _compute_path_keys(self) -> None:
        """Walk our path to the root computing every key we can."""
        path = self._tree.path(self.member)
        current = path[0]
        key = current.key
        for node in path[1:]:
            if node.key is not None:
                key = node.key
                current = node
                continue
            sibling = (
                node.right if node.left is current else node.left
            )
            if sibling.bkey is None:
                return
            node.key = self.ctx.exp(sibling.bkey, key % self.group.q)
            if self.key_confirmation and node.bkey is not None:
                recomputed = self.ctx.exp_g(node.key % self.group.q)
                if recomputed != node.bkey:
                    raise KeyConfirmationError(
                        f"{self.member}: blinded key mismatch at node "
                        f"{self._tree.node_id(node)!r}"
                    )
            key = node.key
            current = node

    def _fill_path_bkeys(
        self, include_root: bool, unrestricted: bool = False
    ) -> List[Tuple[str, int]]:
        """Publish blinded keys for path nodes we sponsor.

        A sponsor publishes every invalidated node on its path whose key it
        now knows — "computes the keys and blinded keys as far up the tree
        as possible, and then broadcasts the set of new blinded keys"
        (Figure 6).  When several sponsors sit under the same node, only
        the rightmost of them publishes it, so broadcasts stay disjoint.
        ``unrestricted`` is the round-1 component-sponsor mode, where the
        caller already knows it is the (only) sponsor of its own tree.

        Returns (node_id, bkey) pairs; each costs one exponentiation (the
        sponsor's 2-per-level work).
        """
        if not unrestricted and self.member not in self._sponsors:
            return []
        published = []
        for node in self._tree.path(self.member):
            if node is self._tree.root and not include_root:
                continue
            if node.key is None or node.bkey is not None:
                continue
            if not unrestricted and not self._publishes(node):
                continue
            node.bkey = self.ctx.exp_g(node.key % self.group.q)
            published.append((self._tree.node_id(node), node.bkey))
        return published

    def _publishes(self, node) -> bool:
        """True when we are the rightmost sponsor under ``node``."""
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                if current.member in self._sponsors:
                    # Rightmost-first DFS: the first sponsor found is the
                    # rightmost one under ``node``.
                    return current.member == self.member
            else:
                stack.append(current.left)
                stack.append(current.right)
        return False

    def _advance(self) -> List[ProtocolMessage]:
        """Compute upward, publish what we sponsor, detect completion."""
        self._compute_path_keys()
        published = self._fill_path_bkeys(include_root=False)
        root = self._tree.root
        if root.key is not None:
            self._complete(root.key)
        if not published:
            return []
        return [
            self._message(
                "tgdh-bkeys",
                {"updates": dict(published)},
                element_count=len(published),
            )
        ]

    # -- message handling ---------------------------------------------------

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._stale(message):
            return []
        if message.step == "tgdh-tree":
            if not self._merging:
                return []
            self._register_tree(message.body["tree"])
            return self._maybe_fold()
        if message.step == "tgdh-bkeys":
            if self._merging:
                # Structural fold not done yet; stash and apply after it.
                self._pending_updates.append(dict(message.body["updates"]))
                return []
            for node_id, bkey in message.body["updates"].items():
                node = self._tree.find(node_id)
                if node is None:
                    # A cascade left the sender's folded tree shaped
                    # differently from ours; this attempt cannot complete.
                    # Drop the unknown node and let the epoch watchdog
                    # drive the coordinated restart (which re-forms the
                    # tree from singleton leaves deterministically).
                    continue
                node.bkey = bkey
            return self._advance()
        raise ValueError(f"unknown TGDH step {message.step!r}")

    def receive_plan(self, messages: List[ProtocolMessage]) -> List[PowChain]:
        """Predict the path-key walk a ``tgdh-bkeys`` batch will trigger.

        Pure overlay of the batch's updates on the current tree: the
        chain mirrors :meth:`_compute_path_keys` — from the lowest known
        key on our path, each missing node lifts the sibling's blinded
        key by the running key (``bkey^(k mod q)``).  Merge rounds and
        key-confirmation recomputes are not predicted.
        """
        if self._tree is None or self._merging or self.key_confirmation:
            return []
        updates: Dict[str, int] = {}
        for message in messages:
            if message.step == "tgdh-bkeys" and not self._stale(message):
                updates.update(message.body["updates"])
        if not updates:
            return []
        tree = self._tree
        p = self.group.p
        q = self.group.q
        chains: List[PowChain] = []
        path = tree.path(self.member)
        current = path[0]
        start = current.key
        bases: List[int] = []
        for node in path[1:]:
            if node.key is not None:
                if bases and start is not None:
                    chains.append(PowChain(p, q, start, tuple(bases)))
                bases = []
                start = node.key
                current = node
                continue
            sibling = node.right if node.left is current else node.left
            bkey = updates.get(tree.node_id(sibling), sibling.bkey)
            if bkey is None or start is None:
                break  # the real walk stops at the first blocked node
            bases.append(bkey)
            current = node
        if bases and start is not None:
            chains.append(PowChain(p, q, start, tuple(bases)))
        return chains
