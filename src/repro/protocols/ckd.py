"""Centralized Key Distribution (CKD) (paper §4.2, Figure 3).

Not contributory: the group key is *generated* by the current controller —
always the **oldest** member — and distributed over long-term pairwise
channels established with authenticated two-party Diffie-Hellman.  Each
pairwise key survives as long as both parties stay in the group, so a
steady-state rekey is a single broadcast; the expensive case is a
controller change, which forces the new controller to re-establish a
channel with every member (the cost the paper weights into its leave
measurements with probability 1/n).

Distribution is by exponentiation: the controller broadcasts
``D_i = K_s^{e_i}`` where ``e_i`` is derived from the pairwise key with
member *i*, and member *i* recovers ``K_s = D_i^(e_i^-1 mod q)`` — which is
why CKD's computation scales linearly like GDH's (§5).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.gcs.messages import View
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage


class CkdProtocol(KeyAgreementProtocol):
    """One member's CKD instance."""

    name = "CKD"
    STEP_PHASES = {
        "ckd-pub": "channel-setup",
        "ckd-reply": "contribution",
        "ckd-dist": "distribution",
    }

    def __init__(self, member, group, rng, ledger=None, engine=None):
        super().__init__(member, group, rng, ledger, engine=engine)
        self._x: Optional[int] = None  # long-term DH private (chosen once)
        self._y: Optional[int] = None  # g^x
        self._pair: Dict[str, int] = {}  # pairwise DH secrets by peer name
        self._awaiting: set = set()

    # ------------------------------------------------------------------

    def _ensure_longterm(self) -> None:
        """Figure 3, step 1: "this selection is performed only once"."""
        if self._x is None:
            self._x = self.ctx.random_exponent(self.rng)
            self._y = self.ctx.exp_g(self._x)

    def _pair_exponent(self, peer: str) -> int:
        """Derive a nonzero exponent mod q from the pairwise DH secret."""
        secret = self._pair[peer]
        digest = hashlib.sha256(
            secret.to_bytes((secret.bit_length() + 7) // 8 or 1, "big")
        ).digest()
        return int.from_bytes(digest, "big") % (self.group.q - 1) + 1

    @property
    def controller(self) -> str:
        return self.view.oldest

    # ------------------------------------------------------------------

    def start(self, view: View) -> List[ProtocolMessage]:
        self._begin_epoch(view)
        self._ensure_longterm()
        # A pairwise channel lives only while both parties are in the
        # group: every member prunes channels to departed peers, keeping
        # both ends' channel state symmetric across partitions.
        current = set(view.members)
        for peer in [p for p in self._pair if p not in current]:
            del self._pair[peer]
        if len(view.members) == 1:
            secret = self.ctx.random_exponent(self.rng)
            self._complete(self.ctx.exp_g(secret))
            return []
        if self.member != self.controller:
            return []
        # Controller: establish any missing channels, then distribute.
        self._awaiting = {
            m for m in view.members if m != self.member and m not in self._pair
        }
        if self._awaiting:
            # Name the members we need replies from: their own channel state
            # may be stale (e.g. a rejoining member still caching the pair
            # from its previous tenure).
            return [
                self._message(
                    "ckd-pub",
                    {"y": self._y, "needed": sorted(self._awaiting)},
                    element_count=1,
                )
            ]
        return [self._distribute()]

    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self._stale(message):
            return []
        if message.step == "ckd-pub":
            return self._on_pub(message)
        if message.step == "ckd-reply":
            return self._on_reply(message)
        if message.step == "ckd-dist":
            self._on_dist(message)
            return []
        raise ValueError(f"unknown CKD step {message.step!r}")

    def _on_pub(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self.member == self.controller:
            return []
        if self.member not in message.body["needed"]:
            return []  # the controller already holds our channel
        self._pair[message.sender] = self.ctx.exp(message.body["y"], self._x)
        return [
            self._message(
                "ckd-reply",
                {"y": self._y},
                broadcast=False,
                target=message.sender,
                requires_agreed=False,
                element_count=1,
            )
        ]

    def _on_reply(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        if self.member != self.controller:
            return []
        self._pair[message.sender] = self.ctx.exp(message.body["y"], self._x)
        self._awaiting.discard(message.sender)
        if self._awaiting:
            return []
        return [self._distribute()]

    def _distribute(self) -> ProtocolMessage:
        secret_exponent = self.ctx.random_exponent(self.rng)
        group_secret = self.ctx.exp_g(secret_exponent)
        table = {}
        for member in self.view.members:
            if member == self.member:
                continue
            table[member] = self.ctx.exp(group_secret, self._pair_exponent(member))
        self._complete(group_secret)
        return self._message("ckd-dist", {"table": table}, element_count=len(table))

    def _on_dist(self, message: ProtocolMessage) -> None:
        blinded = message.body["table"][self.member]
        exponent = self._pair_exponent(message.sender)
        group_secret = self.ctx.exp(blinded, self.ctx.inv_exponent(exponent))
        self._complete(group_secret)

    def receive_plan(self, messages: List[ProtocolMessage]) -> List:
        """Predict the broadcast-round exponentiations.

        ``ckd-pub``: each needed member derives the pairwise secret from
        the controller's public value.  ``ckd-dist``: each member
        unblinds its table entry with the inverse pair exponent (the
        pair-exponent hash is pure, so it can run here).
        """
        from repro.crypto.parallel import PowChain

        if self.view is None or self._x is None:
            return []
        p = self.group.p
        q = self.group.q
        chains: List[PowChain] = []
        for message in messages:
            if self._stale(message):
                continue
            if message.step == "ckd-pub":
                if (
                    self.member != self.controller
                    and self.member in message.body["needed"]
                ):
                    chains.append(
                        PowChain(p, q, self._x, (message.body["y"],))
                    )
            elif message.step == "ckd-dist":
                blinded = message.body["table"].get(self.member)
                if blinded is None or message.sender not in self._pair:
                    continue
                exponent = self._pair_exponent(message.sender)
                chains.append(
                    PowChain(p, q, pow(exponent, -1, q), (blinded,))
                )
        return chains
