"""Common machinery for the key agreement protocols.

A protocol instance belongs to one member of one group and lives across
membership events, carrying long-term state (GDH's cached partial-key list,
CKD's pairwise channels, the TGDH/STR trees).  The hosting layer (the
loopback harness for tests, Secure Spread for simulations) feeds it:

* :meth:`KeyAgreementProtocol.start` with each new membership
  :class:`~repro.gcs.messages.View`, and
* :meth:`KeyAgreementProtocol.receive` with every protocol message of the
  current epoch, in agreed order;

and collects the messages each call returns.  When
:attr:`KeyAgreementProtocol.key_epoch` equals the current view id, the
member holds the fresh group key in :attr:`KeyAgreementProtocol.key`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.engine import EngineSpec, get_engine
from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.rng import DeterministicRandom
from repro.gcs.messages import View, ViewEvent

#: Signature plus envelope overhead per protocol message, bytes.
MESSAGE_OVERHEAD_BYTES = 192


@dataclass
class ProtocolMessage:
    """One signed key agreement message.

    ``broadcast`` messages go to the whole group; targeted messages name a
    single recipient.  ``requires_agreed`` distinguishes messages that must
    be totally ordered (broadcasts, and GDH's factor-out "unicasts" — see
    §6.2.2) from plain FIFO unicasts (GDH's token chain, CKD's channel
    setup).
    """

    protocol: str
    epoch: Tuple  # the view_id being keyed for
    step: str
    sender: str
    body: Dict[str, Any]
    broadcast: bool = True
    target: Optional[str] = None
    requires_agreed: bool = True
    element_count: int = 0
    element_bits: int = 512

    @property
    def size_bytes(self) -> int:
        """Wire size: envelope + signature + the group elements carried."""
        return MESSAGE_OVERHEAD_BYTES + self.element_count * (self.element_bits // 8)


def classify_event(view: View) -> ViewEvent:
    """Collapse a view's event into the paper's four membership events."""
    if view.event is ViewEvent.INITIAL:
        return ViewEvent.JOIN
    return view.event


class KeyAgreementProtocol(ABC):
    """Base class: identity, crypto context, and the driving interface."""

    #: Protocol name as used in the paper ("GDH", "CKD", "BD", "TGDH", "STR").
    name: str = "?"

    #: Paper-aligned phase label per message step, used by the
    #: critical-path report to say *which part* of the protocol a
    #: blocking CPU batch belonged to.  Subclasses override; steps not
    #: listed (and the host-level ``start``/``restart`` batches) fall
    #: back through :meth:`phase_of`.
    STEP_PHASES: Dict[str, str] = {}

    @classmethod
    def phase_of(cls, step: str) -> str:
        """The protocol phase a message step belongs to."""
        return cls.STEP_PHASES.get(step, "computation")

    def __init__(
        self,
        member: str,
        group: SchnorrGroup,
        rng: DeterministicRandom,
        ledger: Optional[OperationLedger] = None,
        engine: EngineSpec = None,
    ):
        self.member = member
        self.engine = get_engine(engine)
        self.ctx = self.engine.context(group, ledger or OperationLedger())
        self.rng = rng.fork(f"{self.name}:{member}")
        #: optional :class:`repro.obs.Observability` recorder.  The hosting
        #: layer attaches it; the protocol then meters every message it
        #: emits (one counter tick per round/broadcast per member).  The
        #: protocol math itself never reads it.
        self.obs = None
        #: the current shared group key (an element of the group), once agreed
        self.key: Optional[int] = None
        #: the view id the current :attr:`key` belongs to
        self.key_epoch: Optional[Tuple[int, int]] = None
        #: the view currently being (re)keyed
        self.view: Optional[View] = None

    # -- driving interface ------------------------------------------------

    @abstractmethod
    def start(self, view: View) -> List[ProtocolMessage]:
        """Begin (re)keying for a new membership view.

        Called at every member with the identical view, in the same order
        relative to protocol messages (the group communication system
        guarantees this).  Returns the messages this member sends first.
        """

    @abstractmethod
    def receive(self, message: ProtocolMessage) -> List[ProtocolMessage]:
        """Process one protocol message of the current epoch, in agreed order."""

    def receive_plan(self, messages: List[ProtocolMessage]) -> List:
        """The full exponentiations :meth:`receive` is *expected* to
        perform for ``messages`` (one same-instant delivery batch), as
        :class:`~repro.crypto.parallel.PowChain` descriptions.

        This is a prefetch hint for the intra-epoch crypto sharder, not
        part of the protocol: implementations must be pure — no state
        mutation, no ledger charges, no RNG draws — and may
        over- or under-approximate freely.  A predicted chain the
        handler never computes wastes background work; a missed one is
        computed inline as before.  Either way the simulated results
        are untouched (cached powers are pure functions of their keys,
        and the ledger wrappers charge every call regardless).  The
        default predicts nothing.
        """
        return []

    def restart(self, view: View) -> List[ProtocolMessage]:
        """Abort a stalled run and begin anew for the same view.

        Called (at every member, at the same point in the Agreed total
        order) when the epoch watchdog declares the current rekey
        stalled.  Any key already computed for this view is forgotten —
        members that finished before the stall must converge on the
        restarted run's key, not keep the old one.  The base behaviour
        simply re-runs :meth:`start`; protocols whose long-lived state an
        aborted run can leave inconsistent between members override this
        to re-form from scratch.
        """
        self.key_epoch = None
        return self.start(view)

    # -- shared helpers ---------------------------------------------------

    @property
    def ledger(self) -> OperationLedger:
        """The operation ledger charged for this member's crypto work."""
        return self.ctx.ledger

    @property
    def group(self) -> SchnorrGroup:
        return self.ctx.group

    def done_for(self, view: View) -> bool:
        """True when this member holds the key for ``view``."""
        return self.key is not None and self.key_epoch == view.view_id

    def _begin_epoch(self, view: View) -> None:
        """Reset per-epoch bookkeeping; key becomes stale until recomputed."""
        self.view = view
        if self.key_epoch != view.view_id:
            self.key_epoch = None

    def _complete(self, key: int) -> None:
        """Record the agreed key for the current view."""
        self.key = key
        self.key_epoch = self.view.view_id

    def _stale(self, message: ProtocolMessage) -> bool:
        """True for messages from an epoch other than the current one."""
        return self.view is None or message.epoch != self.view.view_id

    def _message(
        self,
        step: str,
        body: Dict[str, Any],
        broadcast: bool = True,
        target: Optional[str] = None,
        requires_agreed: bool = True,
        element_count: int = 0,
    ) -> ProtocolMessage:
        message = ProtocolMessage(
            protocol=self.name,
            epoch=self.view.view_id,
            step=step,
            sender=self.member,
            body=body,
            broadcast=broadcast,
            target=target,
            requires_agreed=requires_agreed,
            element_count=element_count,
            element_bits=self.group.p_bits,
        )
        if self.obs is not None and self.obs.enabled:
            self.obs.counter(
                "protocol.messages",
                protocol=self.name, member=self.member, step=step,
                broadcast=broadcast,
            ).inc()
            self.obs.counter(
                "protocol.bytes", protocol=self.name, member=self.member
            ).inc(message.size_bytes)
        return message
