"""Reproduction of *On the Performance of Group Key Agreement Protocols*
(Amir, Kim, Nita-Rotaru, Tsudik — ICDCS 2002).

The package implements the full Secure Spread stack described in the paper:

* :mod:`repro.crypto` — cryptographic substrate (Schnorr groups, DH, RSA
  signatures, KDF) with per-operation accounting and a calibrated cost model.
* :mod:`repro.sim` — deterministic discrete-event simulation engine with a
  multi-core CPU contention model.
* :mod:`repro.gcs` — a Spread-like group communication system: token-ring
  Agreed (total-order) multicast, view-synchronous membership, partitions
  and merges, on simulated LAN/WAN testbeds.
* :mod:`repro.protocols` — the five group key agreement protocols evaluated
  by the paper: GDH (Cliques IKA.3), CKD, BD, TGDH and STR.
* :mod:`repro.core` — the Secure Spread framework tying the protocols to the
  group communication system, with group-data encryption.
* :mod:`repro.analysis` — the paper's conceptual cost model (Table 1).
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.
"""

from repro.version import __version__

__all__ = ["__version__"]
