"""Reproduction of *On the Performance of Group Key Agreement Protocols*
(Amir, Kim, Nita-Rotaru, Tsudik — ICDCS 2002).

The package implements the full Secure Spread stack described in the paper:

* :mod:`repro.crypto` — cryptographic substrate (Schnorr groups, DH, RSA
  signatures, KDF) with per-operation accounting and a calibrated cost model.
* :mod:`repro.sim` — deterministic discrete-event simulation engine with a
  multi-core CPU contention model.
* :mod:`repro.gcs` — a Spread-like group communication system: token-ring
  Agreed (total-order) multicast, view-synchronous membership, partitions
  and merges, on simulated LAN/WAN testbeds.
* :mod:`repro.protocols` — the five group key agreement protocols evaluated
  by the paper: GDH (Cliques IKA.3), CKD, BD, TGDH and STR.
* :mod:`repro.core` — the Secure Spread framework tying the protocols to the
  group communication system, with group-data encryption.
* :mod:`repro.transport` — the substrate seam: the
  :class:`~repro.transport.Transport` / :class:`~repro.transport.GroupChannel`
  interface both backends implement.
* :mod:`repro.net` — the live backend: an asyncio daemon/client speaking a
  length-prefixed wire protocol over real TCP sockets.
* :mod:`repro.faults` — deterministic, seeded fault injection (link
  faults, daemon crashes, timed scenario schedules).
* :mod:`repro.analysis` — the paper's conceptual cost model (Table 1).
* :mod:`repro.workload` — seeded arrival processes and the multi-group
  churn engine driving sustained join/leave traffic.
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.

The stable public surface is re-exported here; everything else is
internal and may move between releases::

    from repro import SecureSpreadFramework, ExperimentSpec, run_experiment

    spec = ExperimentSpec(protocol="TGDH", event="join", group_size=16)
    print(run_experiment(spec).total_ms)
"""

from repro.bench.harness import ExperimentSpec, run_experiment
from repro.core.framework import SecureSpreadFramework
from repro.crypto.engine import RealEngine, SymbolicEngine, get_engine
from repro.faults import FaultSchedule, LinkFaults, LinkPolicy
from repro.net import AsyncioTransport, LiveGroupRunner, NetClient, NetDaemon
from repro.protocols import available, get_protocol, register
from repro.transport import GroupChannel, Transport
from repro.version import __version__
from repro.workload import WorkloadResult, WorkloadSpec, run_workload

__all__ = [
    "AsyncioTransport",
    "ExperimentSpec",
    "FaultSchedule",
    "GroupChannel",
    "LinkFaults",
    "LinkPolicy",
    "LiveGroupRunner",
    "NetClient",
    "NetDaemon",
    "RealEngine",
    "SecureSpreadFramework",
    "SymbolicEngine",
    "Transport",
    "WorkloadResult",
    "WorkloadSpec",
    "available",
    "get_engine",
    "get_protocol",
    "register",
    "run_experiment",
    "run_workload",
    "__version__",
]
