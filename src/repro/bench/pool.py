"""Parallel experiment pool with a content-addressed result cache.

The paper's evaluation (§6) is a grid of independent experiment cells —
protocol × event × group size × topology.  The simulator is fully
deterministic (same seed + spec ⇒ bit-identical simulated times and
ledger charges, pinned by ``tests/test_determinism.py`` and the engine
crosscheck), which makes the grid embarrassingly parallel *and* perfectly
cacheable:

* :func:`run_cells` shards :class:`Cell`\\ s across worker processes
  (``jobs`` workers, default every CPU) and merges the results in cell
  order, independent of completion order — so ``--jobs 4`` output is
  byte-identical to ``--jobs 1``.
* Each cell's result is stored on disk under a key derived from the
  cell's spec dict and a fingerprint of the ``src/repro`` tree
  (:func:`source_fingerprint`); re-running a sweep only executes cells
  whose inputs changed.  Any source edit invalidates every entry, which
  is the conservative and always-correct choice.

Cell *kinds* map to runner functions registered with
:func:`register_runner`; the scale, chaos and figure sweeps each register
one.  Runners take ``(spec, metrics)`` — a JSON-ready spec dict and a
:class:`~repro.obs.metrics.MetricsRegistry` — and return a JSON-ready
result dict, so results can cross process boundaries and live in the
cache without bespoke serialization.  Worker-side metrics snapshots are
merged back into the caller's registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`), and the pool
itself counts ``bench.pool.cache_hits`` / ``bench.pool.cache_misses`` /
``bench.pool.cells_executed``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".bench-cache"

#: Bumping this invalidates every existing cache entry (use when the
#: meaning of a cached payload changes without a source change).
CACHE_FORMAT = 1

#: kind -> runner(spec, metrics) -> JSON-ready result dict.
CELL_RUNNERS: Dict[str, Callable[[dict, MetricsRegistry], dict]] = {}


def register_runner(
    kind: str,
) -> Callable[[Callable[[dict, MetricsRegistry], dict]], Callable]:
    """Register the runner function for a cell kind (decorator)."""

    def decorate(fn: Callable[[dict, MetricsRegistry], dict]) -> Callable:
        CELL_RUNNERS[kind] = fn
        return fn

    return decorate


def _ensure_runners() -> None:
    """Import every module that registers a cell runner.

    Needed in spawn-started workers, which begin with a fresh interpreter
    and only ever import :mod:`repro.bench.pool` itself.
    """
    import repro.bench.chaos  # noqa: F401
    import repro.bench.load  # noqa: F401
    import repro.bench.scale  # noqa: F401
    import repro.bench.series  # noqa: F401


@dataclass(frozen=True)
class Cell:
    """One unit of schedulable, cacheable work.

    ``spec`` must be a JSON-ready dict: it is the cache key (together
    with ``kind`` and the source fingerprint) and the only thing shipped
    to worker processes.  ``summarize`` optionally renders a finished
    result as a one-line progress message; it stays in the parent
    process and never affects the key.
    """

    kind: str
    spec: Dict[str, Any]
    summarize: Optional[Callable[[dict], str]] = field(
        default=None, compare=False
    )

    def label(self) -> str:
        parts = [self.kind]
        for name in ("protocol", "event", "group_size", "drop_rate"):
            if name in self.spec:
                parts.append(f"{name.split('_')[-1]}={self.spec[name]}")
        return " ".join(parts)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def source_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 over every ``.py`` file in the ``repro`` package tree.

    Paths are hashed relative to the package root with ``/`` separators,
    in sorted order, so the fingerprint is stable across machines and
    checkout locations and changes whenever any source file changes.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    paths.sort(key=lambda p: os.path.relpath(p, root).replace(os.sep, "/"))
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\x00")
    return digest.hexdigest()


def cell_key(cell: Cell, fingerprint: str) -> str:
    """The content address of one cell's result."""
    blob = canonical_json(
        {
            "format": CACHE_FORMAT,
            "kind": cell.kind,
            "spec": cell.spec,
            "fingerprint": fingerprint,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed result store: one JSON file per cell key.

    Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
    sharing a cache directory never observe torn entries; unreadable or
    corrupt entries are treated as misses.
    """

    def __init__(self, directory: str):
        self.directory = directory

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    def load(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def store(self, key: str, cell: Cell, result: dict) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "kind": cell.kind,
            "spec": cell.spec,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # No sort_keys: result dict ordering must survive the
                # round trip, or cached and fresh cells would serialize
                # differently in the merged artifact.
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def execute_cell(
    cell: Cell, metrics: Optional[MetricsRegistry] = None
) -> Tuple[dict, List[dict]]:
    """Run one cell in-process; returns ``(result, metrics snapshot)``."""
    _ensure_runners()
    runner = CELL_RUNNERS.get(cell.kind)
    if runner is None:
        raise KeyError(
            f"no runner registered for cell kind {cell.kind!r}; "
            f"known kinds: {sorted(CELL_RUNNERS)}"
        )
    registry = metrics if metrics is not None else MetricsRegistry(enabled=True)
    result = runner(cell.spec, registry)
    if not isinstance(result, dict):
        raise TypeError(
            f"runner for {cell.kind!r} must return a dict, "
            f"got {type(result).__name__}"
        )
    return result, registry.snapshot()


def _worker(payload: Tuple[str, Dict[str, Any]]) -> Tuple[dict, List[dict]]:
    """Process-pool entry point: rebuild the cell and execute it."""
    kind, spec = payload
    return execute_cell(Cell(kind, spec))


def _mp_context():
    """Prefer fork (inherits the loaded package and runner registry);
    fall back to the platform default (spawn) elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` or ``<= 0`` means every CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    fingerprint: Optional[str] = None,
) -> List[dict]:
    """Execute every cell, in parallel, through the cache.

    Returns one result dict per cell **in input order** — completion
    order never leaks into the output, so a sweep's merged artifact is
    identical for any ``jobs``.  ``jobs=1`` runs the misses inline in
    the calling process (the sequential path); ``jobs=None`` uses every
    CPU.  Cache misses are executed and then stored; pass
    ``use_cache=False`` (or ``cache_dir=None``) to always execute.

    A runner failure propagates: the pool is torn down and the first
    worker exception re-raised, so a sweep never silently drops cells.
    """
    cells = list(cells)
    say = progress or (lambda _line: None)
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    jobs = resolve_jobs(jobs)
    cache = ResultCache(cache_dir) if (use_cache and cache_dir) else None
    total = len(cells)
    results: List[Optional[dict]] = [None] * total
    keys: List[Optional[str]] = [None] * total
    pending: List[int] = []

    if cache is not None and fingerprint is None:
        fingerprint = source_fingerprint()

    registry.gauge("bench.pool.jobs").set(jobs)
    registry.counter("bench.pool.cells").inc(total or 0)
    for index, cell in enumerate(cells):
        if cache is not None:
            keys[index] = cell_key(cell, fingerprint or "")
            cached = cache.load(keys[index])
            if cached is not None:
                results[index] = cached
                registry.counter("bench.pool.cache_hits", kind=cell.kind).inc()
                say(f"[{index + 1}/{total}] {cell.label()}: cache hit")
                continue
            registry.counter("bench.pool.cache_misses", kind=cell.kind).inc()
        pending.append(index)

    def finish(index: int, result: dict, rows: List[dict]) -> None:
        results[index] = result
        if cache is not None:
            cache.store(keys[index], cells[index], result)
        registry.merge_snapshot(rows)
        registry.counter(
            "bench.pool.cells_executed", kind=cells[index].kind
        ).inc()
        cell = cells[index]
        line = f"[{index + 1}/{total}] {cell.label()}: done"
        if cell.summarize is not None:
            line = f"[{index + 1}/{total}] {cell.summarize(result)}"
        say(line)

    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            result, rows = execute_cell(cells[index])
            finish(index, result, rows)
    elif pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            futures = {
                pool.submit(
                    _worker, (cells[index].kind, cells[index].spec)
                ): index
                for index in pending
            }
            for future in as_completed(futures):
                result, rows = future.result()
                finish(futures[future], result, rows)
    return results  # type: ignore[return-value]


def pool_stats(metrics: MetricsRegistry) -> Dict[str, int]:
    """Hit/miss/executed totals the CLI prints after a pooled sweep."""
    return {
        "cells": int(metrics.counter_total("bench.pool.cells")),
        "cache_hits": int(metrics.counter_total("bench.pool.cache_hits")),
        "cache_misses": int(metrics.counter_total("bench.pool.cache_misses")),
        "executed": int(metrics.counter_total("bench.pool.cells_executed")),
    }
