"""Experiment harness regenerating the paper's evaluation (§6).

:mod:`repro.bench.harness` runs one experiment cell — a (testbed, protocol,
DH size, event, group size) combination — on the full simulated stack and
returns the paper's measurements (total elapsed time and the membership
service component).  :mod:`repro.bench.series` sweeps group sizes the way
Figures 11, 12 and 14 do.  :mod:`repro.bench.report` renders the series as
the tables/CSV the benchmark suite prints.
"""

from repro.bench.chaos import ChaosCell, render_chaos_table, run_chaos
from repro.bench.harness import (
    EventMeasurement,
    ExperimentSpec,
    grow_group,
    grow_group_batched,
    measure_event,
    run_experiment,
)
from repro.bench.plot import render_plot
from repro.bench.report import render_series, series_to_csv
from repro.bench.scale import render_scale_table, run_scale
from repro.bench.series import FigureSeries, sweep_group_sizes

__all__ = [
    "ChaosCell",
    "EventMeasurement",
    "ExperimentSpec",
    "run_experiment",
    "measure_event",
    "grow_group",
    "grow_group_batched",
    "FigureSeries",
    "sweep_group_sizes",
    "render_plot",
    "render_series",
    "series_to_csv",
    "run_scale",
    "render_scale_table",
    "run_chaos",
    "render_chaos_table",
]
