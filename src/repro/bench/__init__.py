"""Experiment harness regenerating the paper's evaluation (§6).

:mod:`repro.bench.harness` runs one experiment cell — a (testbed, protocol,
DH size, event, group size) combination — on the full simulated stack and
returns the paper's measurements (total elapsed time and the membership
service component).  :mod:`repro.bench.series` sweeps group sizes the way
Figures 11, 12 and 14 do.  :mod:`repro.bench.pool` shards grid cells
across worker processes behind a content-addressed result cache;
:mod:`repro.bench.compare` diffs two benchmark artifacts for the exact
perf-regression gate.  :mod:`repro.bench.report` renders the series as
the tables/CSV the benchmark suite prints.  :mod:`repro.bench.load`
sweeps sustained multi-group churn workloads (:mod:`repro.workload`)
across protocols and arrival processes.
"""

from repro.bench.chaos import (
    ChaosCell,
    render_chaos_table,
    run_chaos,
    run_chaos_cell,
)
from repro.bench.compare import compare_files, compare_payloads
from repro.bench.harness import (
    EventMeasurement,
    ExperimentSpec,
    grow_group,
    grow_group_batched,
    measure_event,
    run_experiment,
)
from repro.bench.load import (
    render_load_table,
    run_load,
    run_load_cell,
)
from repro.bench.plot import render_plot
from repro.bench.pool import (
    Cell,
    ResultCache,
    cell_key,
    pool_stats,
    register_runner,
    run_cells,
    source_fingerprint,
)
from repro.bench.report import render_series, series_to_csv
from repro.bench.scale import (
    render_scale_table,
    run_scale,
    run_scale_cell,
)
from repro.bench.series import (
    FigureSeries,
    measure_protocol_curve,
    run_figure_cell,
    sweep_group_sizes,
    sweep_group_sizes_parallel,
)

__all__ = [
    "Cell",
    "ChaosCell",
    "EventMeasurement",
    "ExperimentSpec",
    "FigureSeries",
    "ResultCache",
    "cell_key",
    "compare_files",
    "compare_payloads",
    "grow_group",
    "grow_group_batched",
    "measure_event",
    "measure_protocol_curve",
    "pool_stats",
    "register_runner",
    "render_chaos_table",
    "render_load_table",
    "render_plot",
    "render_scale_table",
    "render_series",
    "run_cells",
    "run_chaos",
    "run_chaos_cell",
    "run_experiment",
    "run_figure_cell",
    "run_load",
    "run_load_cell",
    "run_scale",
    "run_scale_cell",
    "series_to_csv",
    "source_fingerprint",
    "sweep_group_sizes",
    "sweep_group_sizes_parallel",
]
