"""Large-n scaling benchmark: ``python -m repro.bench scale``.

The paper stops at 50 members (its testbed's practical limit); this
benchmark extends the same measurement — total elapsed time of a join and
a leave on a settled group — to groups of up to 1024 members on the
simulated testbeds, which is exactly the regime the paper's conclusion
speculates about.

Two things make large n tractable:

* groups are grown with :func:`~repro.bench.harness.grow_group_batched`
  (one rekey per size step instead of one per join), and
* the default crypto engine is ``"symbolic"``, which skips the bignum
  arithmetic while charging the identical operation ledger — the
  simulated times are the same as the real engine's by construction (see
  DESIGN.md, "Crypto engines").

Per-protocol conventions at scale follow the figure sweeps, except CKD's
1/n-weighted controller-leave term is dropped: at n ≥ 32 the weight is
≤ 3% while the controller leave costs a second full rekey epoch, so the
term is noise that would double CKD's simulation cost.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Sequence

from repro.bench.harness import (
    LARGE_RUN_MAX_EVENTS,
    EventMeasurement,
    ExperimentSpec,
    grow_group_batched,
    _rejoin,
)

#: Group sizes sampled by default — powers of two from 32 to 1024.
SCALE_SIZES = (32, 64, 128, 256, 512, 1024)

#: All five protocols the paper measures.
SCALE_PROTOCOLS = ("BD", "CKD", "GDH", "STR", "TGDH")


def run_scale(
    protocols: Sequence[str] = SCALE_PROTOCOLS,
    sizes: Sequence[int] = SCALE_SIZES,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    repeats: int = 1,
    seed: int = 0,
    max_events: int = LARGE_RUN_MAX_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
) -> List[EventMeasurement]:
    """Join and leave total-elapsed times for every protocol and size.

    For each protocol the group is grown batched to each size in turn; at
    each size a join and a leave are measured (``repeats`` samples each,
    size-restoring).  Returns the measurements in sweep order
    (protocol-major; per size: join then leave).
    """
    sizes = sorted(set(sizes))
    say = progress or (lambda _line: None)
    measurements: List[EventMeasurement] = []
    for protocol in protocols:
        spec = ExperimentSpec(
            protocol=protocol,
            event="join",
            group_size=sizes[0],
            dh_group=dh_group,
            topology=topology,
            repeats=repeats,
            seed=seed,
            engine=engine,
        )
        framework = spec.build_framework(observe=False)
        members: List = []
        extra = 0
        for size in sizes:
            grown = grow_group_batched(
                framework,
                size,
                start=len(members),
                existing=members,
                max_events=max_events,
            )
            members += grown
            join_totals, join_memberships = [], []
            leave_totals, leave_memberships = [], []
            for _ in range(repeats):
                # Measured join of one extra member, then restore.
                extra += 1
                joiner = framework.member(
                    f"x{extra}",
                    (size + extra) % len(framework.world.topology.machines),
                )
                framework.mark_event()
                joiner.join()
                framework.run_until_idle(max_events=max_events)
                record = framework.timeline.latest_complete()
                join_totals.append(record.total_elapsed())
                join_memberships.append(record.membership_elapsed())
                joiner.leave()  # restore the size (unmeasured)
                framework.run_until_idle(max_events=max_events)
                # Measured leave of the middle member, then restore.
                victim_index = size // 2
                victim = members[victim_index]
                framework.mark_event()
                victim.leave()
                framework.run_until_idle(max_events=max_events)
                record = framework.timeline.latest_complete()
                leave_totals.append(record.total_elapsed())
                leave_memberships.append(record.membership_elapsed())
                members[victim_index] = _rejoin(framework, victim)
            for event, totals, memberships in (
                ("join", join_totals, join_memberships),
                ("leave", leave_totals, leave_memberships),
            ):
                measurements.append(
                    EventMeasurement(
                        protocol=protocol,
                        event=event,
                        group_size=size,
                        dh_group=dh_group,
                        topology=framework.world.topology.name,
                        total_ms=sum(totals) / len(totals),
                        membership_ms=sum(memberships) / len(memberships),
                        samples=repeats,
                        engine=framework.engine.name,
                    )
                )
            say(
                f"{protocol} n={size}: join "
                f"{measurements[-2].total_ms:.1f} ms, leave "
                f"{measurements[-1].total_ms:.1f} ms"
            )
    return measurements


def scale_payload(
    measurements: Sequence[EventMeasurement], **meta
) -> dict:
    """The BENCH_scale.json payload: run metadata + serialized cells."""
    payload = {"benchmark": "scale"}
    payload.update(meta)
    payload["measurements"] = [m.to_dict() for m in measurements]
    return payload


def write_scale_json(
    path: str, measurements: Sequence[EventMeasurement], **meta
) -> dict:
    payload = scale_payload(measurements, **meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def render_scale_table(measurements: Sequence[EventMeasurement]) -> str:
    """A compact per-event table: one row per size, one column per protocol."""
    protocols = sorted({m.protocol for m in measurements})
    sizes = sorted({m.group_size for m in measurements})
    cells = {(m.protocol, m.event, m.group_size): m for m in measurements}
    lines = []
    for event in ("join", "leave"):
        if not any(m.event == event for m in measurements):
            continue
        lines.append(f"{event} total elapsed (ms)")
        header = ["    n"] + [f"{p:>12s}" for p in protocols]
        lines.append("".join(header))
        for size in sizes:
            row = [f"{size:5d}"]
            for protocol in protocols:
                m = cells.get((protocol, event, size))
                row.append(f"{m.total_ms:12.1f}" if m else " " * 12)
            lines.append("".join(row))
        lines.append("")
    return "\n".join(lines).rstrip()
