"""Large-n scaling benchmark: ``python -m repro.bench scale``.

The paper stops at 50 members (its testbed's practical limit); this
benchmark extends the same measurement — total elapsed time of a join and
a leave on a settled group — to groups of up to 1024 members on the
simulated testbeds, which is exactly the regime the paper's conclusion
speculates about.

Three things make large n tractable:

* groups are grown with :func:`~repro.bench.harness.grow_group_batched`
  (one rekey per cell instead of one per join),
* the default crypto engine is ``"symbolic"``, which skips the bignum
  arithmetic while charging the identical operation ledger — the
  simulated times are the same as the real engine's by construction (see
  DESIGN.md, "Crypto engines"), and
* every (protocol, size) pair is an independent *cell* — a fresh
  framework grown batched straight to the target size — so the sweep
  shards across worker processes and caches per cell
  (:mod:`repro.bench.pool`).

Per-protocol conventions at scale follow the figure sweeps, except CKD's
1/n-weighted controller-leave term is dropped: at n ≥ 32 the weight is
≤ 3% while the controller leave costs a second full rekey epoch, so the
term is noise that would double CKD's simulation cost.

Each cell also records the exact operation-ledger charges of its
measured events (``EventMeasurement.ops``): integer counts that the
``bench compare`` regression gate can diff bit-for-bit.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Sequence

from repro.bench.harness import (
    LARGE_RUN_MAX_EVENTS,
    EventMeasurement,
    ExperimentSpec,
    _rejoin,
    grow_group_batched,
)
from repro.bench.pool import Cell, register_runner, run_cells
from repro.crypto.ledger import OpCounts
from repro.obs.metrics import MetricsRegistry
from repro.protocols import available

#: Group sizes sampled by default — powers of two from 32 to 1024.
SCALE_SIZES = (32, 64, 128, 256, 512, 1024)

#: Every registered protocol (the paper's five, plus any plug-ins
#: registered before this module is imported).
SCALE_PROTOCOLS = available()


def _ledger_totals(principals) -> OpCounts:
    """Summed operation-ledger snapshot across a set of members."""
    totals = OpCounts()
    for member in principals:
        totals = totals + member.protocol.ledger.snapshot()
    return totals


def _ops_dict(counts: OpCounts) -> dict:
    """JSON-ready integer totals for one measured event."""
    return {
        "exponentiations": counts.exp_count(),
        "small_exp_multiplications": counts.small_mult_count(),
        "multiplications": counts.mult_count(),
        "signatures": counts.signatures,
        "verifications": counts.verifications,
    }


@register_runner("scale")
def run_scale_cell(
    spec: dict, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """One (protocol, group size) cell: measured join and leave.

    A fresh framework is grown batched straight to ``group_size``, then
    a join and a leave are measured ``repeats`` times each (size-
    restoring, join samples first).  Returns
    ``{"join": EventMeasurement dict, "leave": EventMeasurement dict}``
    — JSON-ready, so the cell can cross process boundaries and live in
    the result cache.

    With ``spec["observe"]`` set the cell runs fully traced and folds the
    framework's own metrics (notably the ``member.rekey_ms`` latency
    histograms) into the caller's registry; observability is passive, so
    the measured times are identical either way.
    """
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    size = int(spec["group_size"])
    repeats = int(spec.get("repeats", 1))
    observe = bool(spec.get("observe", False))
    max_events = int(spec.get("max_events", LARGE_RUN_MAX_EVENTS))
    espec = ExperimentSpec(
        protocol=spec["protocol"],
        event="join",
        group_size=size,
        dh_group=spec.get("dh_group", "dh-512"),
        topology=spec.get("topology", "lan"),
        repeats=repeats,
        seed=int(spec.get("seed", 0)),
        engine=spec.get("engine", "symbolic"),
        shard_jobs=int(spec.get("shard_jobs", 0)),
    )
    framework = espec.build_framework(observe=observe)
    members = grow_group_batched(framework, size, max_events=max_events)
    principals = list(members)
    machines = len(framework.world.topology.machines)
    join_totals: List[float] = []
    join_memberships: List[float] = []
    leave_totals: List[float] = []
    leave_memberships: List[float] = []
    join_ops = OpCounts()
    leave_ops = OpCounts()
    extra = 0
    for _ in range(repeats):
        # Measured join of one extra member, then restore.
        extra += 1
        joiner = framework.member(f"x{extra}", (size + extra) % machines)
        principals.append(joiner)
        before = _ledger_totals(principals)
        framework.mark_event()
        joiner.join()
        framework.run_until_idle(max_events=max_events)
        join_ops = join_ops + (_ledger_totals(principals) - before)
        record = framework.timeline.latest_complete()
        join_totals.append(record.total_elapsed())
        join_memberships.append(record.membership_elapsed())
        joiner.leave()  # restore the size (unmeasured)
        framework.run_until_idle(max_events=max_events)
        # Measured leave of the middle member, then restore.
        victim_index = size // 2
        victim = members[victim_index]
        before = _ledger_totals(principals)
        framework.mark_event()
        victim.leave()
        framework.run_until_idle(max_events=max_events)
        leave_ops = leave_ops + (_ledger_totals(principals) - before)
        record = framework.timeline.latest_complete()
        leave_totals.append(record.total_elapsed())
        leave_memberships.append(record.membership_elapsed())
        members[victim_index] = _rejoin(framework, victim)
        principals.append(members[victim_index])
    registry.histogram(
        "bench.cell.sim_ms", kind="scale", protocol=espec.protocol
    ).observe(sum(join_totals) + sum(leave_totals))
    if observe:
        registry.merge_snapshot(framework.obs.metrics.snapshot())
    result = {}
    for event, totals, memberships, ops in (
        ("join", join_totals, join_memberships, join_ops),
        ("leave", leave_totals, leave_memberships, leave_ops),
    ):
        result[event] = EventMeasurement(
            protocol=espec.protocol,
            event=event,
            group_size=size,
            dh_group=espec.dh_group,
            topology=framework.world.topology.name,
            total_ms=sum(totals) / len(totals),
            membership_ms=sum(memberships) / len(memberships),
            samples=repeats,
            engine=framework.engine.name,
            ops=_ops_dict(ops),
        ).to_dict()
    return result


def scale_cells(
    protocols: Sequence[str],
    sizes: Sequence[int],
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    repeats: int = 1,
    seed: int = 0,
    observe: bool = False,
    max_events: int = LARGE_RUN_MAX_EVENTS,
    shard_jobs: int = 0,
) -> List[Cell]:
    """The sweep's cell grid, protocol-major with sizes ascending.

    ``shard_jobs`` enters the spec only when nonzero: sharding is a pure
    wall-clock optimization (bit-identical results), but the spec is the
    cache key, so the default grid must keep its existing keys.
    """
    cells: List[Cell] = []
    for protocol in protocols:
        for size in sorted(set(sizes)):
            spec = {
                "protocol": protocol,
                "group_size": size,
                "dh_group": dh_group,
                "topology": topology,
                "repeats": repeats,
                "seed": seed,
                "engine": engine,
                "observe": observe,
                "max_events": max_events,
            }
            if shard_jobs:
                spec["shard_jobs"] = shard_jobs

            def summarize(result, protocol=protocol, size=size):
                return (
                    f"{protocol} n={size}: join "
                    f"{result['join']['total_ms']:.1f} ms, leave "
                    f"{result['leave']['total_ms']:.1f} ms"
                )

            cells.append(Cell("scale", spec, summarize=summarize))
    return cells


def run_scale(
    protocols: Sequence[str] = SCALE_PROTOCOLS,
    sizes: Sequence[int] = SCALE_SIZES,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    repeats: int = 1,
    seed: int = 0,
    observe: bool = False,
    max_events: int = LARGE_RUN_MAX_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    shard_jobs: int = 0,
) -> List[EventMeasurement]:
    """Join and leave total-elapsed times for every protocol and size.

    Cells are sharded over ``jobs`` worker processes and merged in grid
    order (protocol-major; per size: join then leave), so the output is
    identical for any ``jobs``.  With ``cache_dir`` set, previously
    computed cells are served from the content-addressed cache.  An
    engine *instance* (rather than a name) cannot cross process or cache
    boundaries, so it forces the inline uncached path.
    """
    if not (engine is None or isinstance(engine, str)):
        jobs, cache_dir, use_cache = 1, None, False
    cells = scale_cells(
        protocols,
        sizes,
        topology=topology,
        dh_group=dh_group,
        engine=engine,
        repeats=repeats,
        seed=seed,
        observe=observe,
        max_events=max_events,
        shard_jobs=shard_jobs,
    )
    results = run_cells(
        cells,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        metrics=metrics,
        progress=progress,
    )
    measurements: List[EventMeasurement] = []
    for result in results:
        measurements.append(EventMeasurement.from_dict(result["join"]))
        measurements.append(EventMeasurement.from_dict(result["leave"]))
    return measurements


def scale_payload(
    measurements: Sequence[EventMeasurement], **meta
) -> dict:
    """The BENCH_scale.json payload: run metadata + serialized cells."""
    payload = {"benchmark": "scale"}
    payload.update(meta)
    payload["measurements"] = [m.to_dict() for m in measurements]
    return payload


def write_scale_json(
    path: str, measurements: Sequence[EventMeasurement], **meta
) -> dict:
    payload = scale_payload(measurements, **meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def render_scale_table(measurements: Sequence[EventMeasurement]) -> str:
    """A compact per-event table: one row per size, one column per protocol."""
    protocols = sorted({m.protocol for m in measurements})
    sizes = sorted({m.group_size for m in measurements})
    cells = {(m.protocol, m.event, m.group_size): m for m in measurements}
    lines = []
    for event in ("join", "leave"):
        if not any(m.event == event for m in measurements):
            continue
        lines.append(f"{event} total elapsed (ms)")
        header = ["    n"] + [f"{p:>12s}" for p in protocols]
        lines.append("".join(header))
        for size in sizes:
            row = [f"{size:5d}"]
            for protocol in protocols:
                m = cells.get((protocol, event, size))
                row.append(f"{m.total_ms:12.1f}" if m else " " * 12)
            lines.append("".join(row))
        lines.append("")
    return "\n".join(lines).rstrip()
