"""Command-line front end: regenerate figures, or trace/attribute a rekey.

Examples::

    python -m repro.bench --figure 11            # LAN join, 512 & 1024
    python -m repro.bench --figure 14 --repeats 1
    python -m repro.bench --figure 12 --sizes 4 13 26 --csv out/
    python -m repro.bench --table 1
    python -m repro.bench trace --protocol TGDH --size 16 --event join \
        -o trace.json                            # Chrome/Perfetto trace
    python -m repro.bench report --protocol BD --size 13 --event leave
    python -m repro.bench scale                  # join/leave up to n=1024
    python -m repro.bench scale --sizes 32 128 512 --protocols TGDH STR
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.table1 import render_table1
from repro.bench.harness import _fresh_framework, grow_group
from repro.bench.plot import render_plot
from repro.bench.report import render_series, series_to_csv
from repro.bench.scale import (
    SCALE_SIZES,
    render_scale_table,
    run_scale,
    write_scale_json,
)
from repro.bench.series import DEFAULT_SIZES, sweep_group_sizes
from repro.gcs.topology import TESTBEDS, lan_testbed, medium_wan_testbed, wan_testbed
from repro.obs import render_report, validate_chrome_trace

PROTOCOLS = ("BD", "CKD", "GDH", "STR", "TGDH")

TOPOLOGIES = TESTBEDS

#: Subcommands (everything else is the legacy flag interface).
SUBCOMMANDS = ("trace", "report", "scale")

#: figure number -> list of (title, testbed factory, event, dh group)
FIGURES = {
    "11": [
        ("Figure 11 (left): Join - DH 512 (LAN)", lan_testbed, "join", "dh-512"),
        ("Figure 11 (right): Join - DH 1024 (LAN)", lan_testbed, "join", "dh-1024"),
    ],
    "12": [
        ("Figure 12 (left): Leave - DH 512 (LAN)", lan_testbed, "leave", "dh-512"),
        ("Figure 12 (right): Leave - DH 1024 (LAN)", lan_testbed, "leave", "dh-1024"),
    ],
    "14": [
        ("Figure 14 (left): Join - DH 512 (WAN)", wan_testbed, "join", "dh-512"),
        ("Figure 14 (right): Leave - DH 512 (WAN)", wan_testbed, "leave", "dh-512"),
    ],
    "medium-wan": [
        ("Future work: Join (70ms RTT WAN)", medium_wan_testbed, "join", "dh-512"),
        ("Future work: Leave (70ms RTT WAN)", medium_wan_testbed, "leave", "dh-512"),
    ],
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation of 'On the Performance of "
        "Group Key Agreement Protocols' (ICDCS 2002) on the simulated "
        "testbeds.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--figure", choices=sorted(FIGURES), help="figure to regenerate"
    )
    target.add_argument(
        "--table", choices=["1"], help="table to print"
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="group sizes to sample (default: the paper's 2-50 sweep)",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=list(PROTOCOLS),
        choices=PROTOCOLS, help="protocols to include",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="events averaged per size"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed"
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each series as CSV into this directory",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render each series as an ASCII chart",
    )
    return parser


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Trace one membership event on the full simulated "
        "stack, or print its span-based per-epoch phase attribution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--protocol", choices=PROTOCOLS, default="TGDH",
            help="key agreement protocol (default TGDH)",
        )
        p.add_argument(
            "--size", type=int, default=16,
            help="settled group size before the event (default 16)",
        )
        p.add_argument(
            "--event", choices=("join", "leave"), default="join",
            help="membership event to trace (default join)",
        )
        p.add_argument(
            "--topology", choices=sorted(TOPOLOGIES), default="lan",
            help="testbed to simulate (default lan)",
        )
        p.add_argument(
            "--dh-group", default="dh-512", help="DH group (default dh-512)"
        )
        p.add_argument(
            "--seed", type=int, default=0, help="simulation seed"
        )

    trace = sub.add_parser(
        "trace", help="emit a Chrome trace-event JSON (Perfetto-loadable)"
    )
    add_common(trace)
    trace.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace-event JSON output path (default trace.json)",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also dump raw spans + metrics as JSON lines",
    )
    report = sub.add_parser(
        "report",
        help="print the per-epoch membership/communication/computation "
        "decomposition, reconciled against the rekey timeline",
    )
    add_common(report)
    return parser


def build_scale_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench scale",
        description="Measure join/leave total elapsed time at large group "
        "sizes (batched growth; symbolic crypto engine by default, whose "
        "simulated times match the real engine's by construction).",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(SCALE_SIZES),
        help="group sizes to sample (default: 32..1024, powers of two)",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=list(PROTOCOLS),
        choices=PROTOCOLS, help="protocols to include",
    )
    parser.add_argument(
        "--engine", choices=("real", "symbolic"), default="symbolic",
        help="crypto engine (default symbolic; identical simulated times)",
    )
    parser.add_argument(
        "--topology", choices=sorted(TOPOLOGIES), default="lan",
        help="testbed to simulate (default lan)",
    )
    parser.add_argument(
        "--dh-group", default="dh-512", help="DH group (default dh-512)"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="events averaged per size"
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "-o", "--output", default="BENCH_scale.json",
        help="JSON output path (default BENCH_scale.json)",
    )
    return parser


def run_scale_command(argv: Sequence[str]) -> int:
    args = build_scale_parser().parse_args(argv)
    measurements = run_scale(
        protocols=args.protocols,
        sizes=args.sizes,
        topology=args.topology,
        dh_group=args.dh_group,
        engine=args.engine,
        repeats=args.repeats,
        seed=args.seed,
        progress=lambda line: print(f"  {line}", flush=True),
    )
    write_scale_json(
        args.output,
        measurements,
        sizes=sorted(set(args.sizes)),
        protocols=list(args.protocols),
        engine=args.engine,
        topology=args.topology,
        dh_group=args.dh_group,
        repeats=args.repeats,
        seed=args.seed,
    )
    print()
    print(render_scale_table(measurements))
    print(f"\nwrote {args.output}: {len(measurements)} measurements")
    return 0


def _run_observed_event(args):
    """Grow a group, run one observed membership event, return the framework."""
    framework = _fresh_framework(
        TOPOLOGIES[args.topology], args.protocol, args.dh_group, args.seed,
        observe=True,
    )
    members = grow_group(framework, args.size)
    if args.event == "join":
        joiner = framework.member(
            "x1", (args.size + 1) % len(framework.world.topology.machines)
        )
        framework.mark_event()
        joiner.join()
    else:
        victim = members[args.size // 2]
        framework.mark_event()
        victim.leave()
    framework.run_until_idle()
    return framework


def run_subcommand(argv: Sequence[str]) -> int:
    if argv[0] == "scale":
        return run_scale_command(argv[1:])
    args = build_obs_parser().parse_args(argv)
    framework = _run_observed_event(args)
    title = (
        f"{args.event} at n={args.size}, {args.protocol}, {args.dh_group}, "
        f"{framework.world.topology.name}"
    )
    if args.command == "trace":
        trace = framework.obs.write_chrome_trace(args.output)
        validate_chrome_trace(trace)
        print(
            f"wrote {args.output}: {len(trace['traceEvents'])} trace events "
            f"({len(framework.obs.spans)} spans, "
            f"{framework.obs.spans.dropped} dropped) — {title}"
        )
        print("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
        if args.jsonl:
            lines = framework.obs.to_jsonl(args.jsonl)
            print(f"wrote {args.jsonl}: {lines} JSON lines (spans + metrics)")
    else:
        print(render_report(framework.timeline, framework.obs.spans, title))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return run_subcommand(argv)
    args = build_parser().parse_args(argv)
    if args.table == "1":
        print(render_table1())
        print()
        print(render_table1(n=10, m=4, p=4))
        return 0
    for title, testbed, event, dh_group in FIGURES[args.figure]:
        series = sweep_group_sizes(
            testbed,
            args.protocols,
            event,
            dh_group=dh_group,
            sizes=args.sizes,
            repeats=args.repeats,
            seed=args.seed,
            name=title,
        )
        print(render_series(series, title))
        print()
        if args.plot:
            print(render_plot(series, title=title))
            print()
        if args.csv:
            slug = title.split(":")[0].lower().replace(" ", "_")
            path = os.path.join(args.csv, f"{slug}_{event}_{dh_group}.csv")
            series_to_csv(series, path)
            print(f"  wrote {path}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
