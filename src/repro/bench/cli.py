"""Command-line front end: regenerate figures, trace/attribute a rekey,
or stress the stack at scale and under faults.

One subcommand per job, all sharing the same core options
(``--engine``, ``--seed``, ``-o/--out``, ``--trace``)::

    python -m repro.bench figure 11              # LAN join, 512 & 1024
    python -m repro.bench figure 14 --repeats 1
    python -m repro.bench figure 12 --sizes 4 13 26 --csv out/
    python -m repro.bench table 1
    python -m repro.bench trace --protocol TGDH --size 16 --event join \
        -o trace.json                            # Chrome/Perfetto trace
    python -m repro.bench report --protocol BD --size 13 --event leave
    python -m repro.bench report --critical-path # append blocking chains
    python -m repro.bench critpath --protocol GDH --size 8 --event leave
    python -m repro.bench scale                  # join/leave up to n=1024
    python -m repro.bench scale --observe        # + rekey percentile table
    python -m repro.bench scale --sizes 32 128 512 --protocols TGDH STR
    python -m repro.bench scale --jobs 4         # shard cells over 4 workers
    python -m repro.bench chaos                  # rekeying under link faults
    python -m repro.bench chaos --drops 0 0.05 0.2 --size 8
    python -m repro.bench load                   # sustained churn, many groups
    python -m repro.bench load --arrivals poisson diurnal --no-storm
    python -m repro.bench load --replay churn.json --protocols TGDH
    python -m repro.bench compare OLD.json NEW.json   # exact regression gate
    python -m repro.bench profile                # wall-clock self-profile
    python -m repro.bench profile --size 64 --protocols BD --no-profiler
    python -m repro.bench live --protocol tgdh -n 8   # real TCP on localhost

``live`` is the only subcommand that runs on the asyncio transport
(``--transport asyncio``, its default): a real daemon process and one
TCP client per member on localhost, measuring wall-clock rekey latency
next to the simulator's virtual-time prediction in ``BENCH_live.json``.
Every other subcommand is simulator-only (``--transport sim``): fault
injection, tracing and virtual time have no live equivalent.

The grid-shaped subcommands (``figure``, ``scale``, ``chaos``, ``load``)
all take
``--jobs N`` (worker processes, default: every CPU), ``--cache-dir``
and ``--no-cache``: cells shard across workers and merge
deterministically, and previously computed cells are served from a
content-addressed on-disk cache keyed by the cell spec, the seed and a
fingerprint of the ``src/repro`` tree (see :mod:`repro.bench.pool`).

The original flag spelling (``--figure 11``, ``--table 1``) keeps
working and takes the same sweep options it always did.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.table1 import render_table1
from repro.bench.chaos import (
    CHAOS_DROP_RATES,
    CHAOS_STALL_TIMEOUT_MS,
    render_chaos_table,
    run_chaos,
    write_chaos_json,
)
from repro.bench.compare import compare_files
from repro.bench.harness import _fresh_framework, grow_group
from repro.bench.load import (
    LOAD_ARRIVALS,
    LOAD_DURATION_MS,
    LOAD_GROUP_SIZE,
    LOAD_GROUPS,
    LOAD_RATE_HZ,
    render_load_table,
    run_load,
    write_load_json,
)
from repro.bench.plot import render_plot
from repro.bench.pool import DEFAULT_CACHE_DIR, pool_stats
from repro.bench.profiling import (
    DEFAULT_BASELINE,
    PROFILE_SIZE,
    profile_micro_sweep,
    render_profile_table,
    wallclock_document,
    write_json,
)
from repro.bench.report import render_series, series_to_csv
from repro.bench.scale import (
    SCALE_SIZES,
    render_scale_table,
    run_scale,
    write_scale_json,
)
from repro.bench.series import (
    DEFAULT_SIZES,
    sweep_group_sizes_parallel,
)
from repro.gcs.topology import TESTBEDS
from repro.protocols import available
from repro.workload.engine import DEFAULT_STALL_TIMEOUT_MS
from repro.obs import (
    MetricsRegistry,
    render_critical_paths,
    render_percentiles,
    render_report,
    timeline_critical_paths,
    validate_chrome_trace,
)

TOPOLOGIES = TESTBEDS

#: The subcommand surface (a leading ``--`` selects the legacy flags).
SUBCOMMANDS = (
    "figure", "table", "trace", "report", "critpath", "scale", "chaos",
    "load", "compare", "profile", "live",
)

#: subcommands that can run on the asyncio transport; everything else
#: needs virtual time, fault injection or tracing — simulator add-ons
#: the live backend deliberately does not provide
ASYNCIO_SUBCOMMANDS = ("live",)

#: figure number -> list of (title, testbed name, event, dh group)
FIGURES = {
    "11": [
        ("Figure 11 (left): Join - DH 512 (LAN)", "lan", "join", "dh-512"),
        ("Figure 11 (right): Join - DH 1024 (LAN)", "lan", "join", "dh-1024"),
    ],
    "12": [
        ("Figure 12 (left): Leave - DH 512 (LAN)", "lan", "leave", "dh-512"),
        ("Figure 12 (right): Leave - DH 1024 (LAN)", "lan", "leave", "dh-1024"),
    ],
    "14": [
        ("Figure 14 (left): Join - DH 512 (WAN)", "wan", "join", "dh-512"),
        ("Figure 14 (right): Leave - DH 512 (WAN)", "wan", "leave", "dh-512"),
    ],
    "medium-wan": [
        ("Future work: Join (70ms RTT WAN)", "medium-wan", "join", "dh-512"),
        ("Future work: Leave (70ms RTT WAN)", "medium-wan", "leave", "dh-512"),
    ],
}


# ---------------------------------------------------------------------------
# parsers


def add_protocol_args(
    parser: argparse.ArgumentParser,
    singular: bool = False,
    default: Optional[str] = None,
) -> None:
    """Add the protocol-selection flag, wired to the live registry.

    The choices come from :func:`repro.protocols.available` at parser
    build time, so a protocol registered by an extension shows up in
    every subcommand without touching this module — the registry is the
    single source of truth for protocol names.  ``singular`` adds
    ``--protocol NAME`` (one protocol, default ``default`` or TGDH);
    otherwise ``--protocols NAME...`` (default: all registered).
    """
    choices = available()
    if singular:
        parser.add_argument(
            "--protocol", type=str.upper, choices=choices,
            default=default or "TGDH",
            help=f"key agreement protocol, case-insensitive "
            f"(default {default or 'TGDH'})",
        )
    else:
        parser.add_argument(
            "--protocols", nargs="+", type=str.upper, choices=choices,
            default=list(choices),
            help="protocols to include (default: all registered)",
        )


def build_common_parser() -> argparse.ArgumentParser:
    """The options every subcommand shares (used via ``parents=``)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--engine",
        choices=("real", "real:gmpy2", "real:python", "symbolic"),
        default=None,
        help="crypto engine (default: real bignum arithmetic; scale and "
        "chaos default to symbolic, whose simulated times are identical "
        "by construction; 'real:gmpy2'/'real:python' pin the bignum "
        "backend explicitly, overriding REPRO_BIGNUM)",
    )
    common.add_argument(
        "--seed", type=int, default=0, help="simulation seed"
    )
    common.add_argument(
        "-o", "--out", "--output", dest="out", default=None, metavar="PATH",
        help="output artifact path (each subcommand has its own default)",
    )
    common.add_argument(
        "--trace", dest="trace_log", default=None, metavar="PATH",
        help="also write the flat simulation event log as JSON lines "
        "(honored by trace, report and chaos, whose runs are bounded; "
        "the figure/scale sweeps would overflow any trace)",
    )
    common.add_argument(
        "--transport", choices=("sim", "asyncio"), default="sim",
        help="substrate to run on: the simulated world (default) or the "
        "live asyncio backend over TCP (only the 'live' subcommand; "
        "faults, tracing and virtual-time sweeps are simulator-only)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """The legacy flag interface: ``--figure N`` / ``--table N``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation of 'On the Performance of "
        "Group Key Agreement Protocols' (ICDCS 2002) on the simulated "
        "testbeds.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--figure", choices=sorted(FIGURES), help="figure to regenerate"
    )
    target.add_argument(
        "--table", choices=["1"], help="table to print"
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    _add_figure_options(parser)
    return parser


def _add_figure_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="group sizes to sample (default: the paper's 2-50 sweep)",
    )
    add_protocol_args(parser)
    parser.add_argument(
        "--repeats", type=int, default=2, help="events averaged per size"
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each series as CSV into this directory",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render each series as an ASCII chart",
    )


def _add_event_options(parser: argparse.ArgumentParser) -> None:
    add_protocol_args(parser, singular=True)
    parser.add_argument(
        "--size", type=int, default=16,
        help="settled group size before the event (default 16)",
    )
    parser.add_argument(
        "--event", choices=("join", "leave"), default="join",
        help="membership event to trace (default join)",
    )
    _add_testbed_options(parser)


def _add_testbed_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=sorted(TOPOLOGIES), default="lan",
        help="testbed to simulate (default lan)",
    )
    parser.add_argument(
        "--dh-group", default="dh-512", help="DH group (default dh-512)"
    )


def _add_shard_crypto_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-crypto", dest="shard_crypto", type=int, default=0,
        metavar="N",
        help="worker processes for intra-epoch crypto sharding on the "
        "real engine (default 0: off); results are bit-identical — the "
        "workers only pre-warm the engine's power cache",
    )


def _add_pool_options(parser: argparse.ArgumentParser) -> None:
    """Sharding/caching flags shared by the grid-shaped subcommands."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for grid cells (default: every CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help="content-addressed result cache directory "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", dest="use_cache", action="store_false",
        help="always execute every cell (skip cache reads and writes)",
    )


def build_subcommand_parser() -> argparse.ArgumentParser:
    """The unified subcommand interface.

    Every subparser gets its *own* copy of the common parser: argparse
    ``parents=`` shares the action objects, so a per-subcommand
    ``set_defaults`` on a shared instance would leak its default (e.g.
    chaos's ``BENCH_chaos.json``) into every sibling.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation of 'On the Performance of "
        "Group Key Agreement Protocols' (ICDCS 2002) on the simulated "
        "testbeds, or stress it at scale and under injected faults.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser(
        "figure", parents=[build_common_parser()],
        help="regenerate a paper figure (group-size sweep)",
    )
    figure.add_argument(
        "number", choices=sorted(FIGURES), help="figure to regenerate"
    )
    _add_figure_options(figure)
    _add_pool_options(figure)

    table = sub.add_parser(
        "table", parents=[build_common_parser()], help="print a paper table"
    )
    table.add_argument("number", choices=["1"], help="table to print")

    trace = sub.add_parser(
        "trace", parents=[build_common_parser()],
        help="emit a Chrome trace-event JSON (Perfetto-loadable)",
    )
    _add_event_options(trace)
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also dump raw spans + metrics as JSON lines",
    )
    trace.set_defaults(out="trace.json")

    report = sub.add_parser(
        "report", parents=[build_common_parser()],
        help="print the per-epoch membership/communication/computation "
        "decomposition, reconciled against the rekey timeline",
    )
    _add_event_options(report)
    report.add_argument(
        "--critical-path", dest="critical_path", action="store_true",
        help="append the per-epoch critical-path blocking chains "
        "(the causal walk backwards from each key-install)",
    )

    critpath = sub.add_parser(
        "critpath", parents=[build_common_parser()],
        help="trace one membership event and print, per epoch, the exact "
        "chain of spans that blocked the last key install, plus the "
        "rekey-latency percentile table",
    )
    _add_event_options(critpath)

    scale = sub.add_parser(
        "scale", parents=[build_common_parser()],
        help="measure join/leave total elapsed time at large group sizes "
        "(batched growth; symbolic crypto engine by default)",
    )
    scale.add_argument(
        "--sizes", type=int, nargs="+", default=list(SCALE_SIZES),
        help="group sizes to sample (default: 32..1024, powers of two)",
    )
    add_protocol_args(scale)
    _add_testbed_options(scale)
    scale.add_argument(
        "--repeats", type=int, default=1, help="events averaged per size"
    )
    scale.add_argument(
        "--observe", action="store_true",
        help="run cells with tracing enabled and print the merged "
        "rekey-latency percentile table (observability is passive, so "
        "the measured times are unchanged)",
    )
    _add_shard_crypto_option(scale)
    _add_pool_options(scale)
    scale.set_defaults(engine="symbolic", out="BENCH_scale.json")

    chaos = sub.add_parser(
        "chaos", parents=[build_common_parser()],
        help="measure rekey completion under injected link faults "
        "(drop-rate sweep with the epoch watchdog armed)",
    )
    chaos.add_argument(
        "--drops", type=float, nargs="+", default=list(CHAOS_DROP_RATES),
        help="per-frame drop probabilities to sweep (default: "
        f"{' '.join(str(r) for r in CHAOS_DROP_RATES)})",
    )
    add_protocol_args(chaos)
    chaos.add_argument(
        "--size", type=int, default=6,
        help="settled group size before the faulty join (default 6)",
    )
    _add_testbed_options(chaos)
    chaos.add_argument(
        "--repeats", type=int, default=2, help="samples per cell"
    )
    chaos.add_argument(
        "--stall-timeout-ms", type=float, default=CHAOS_STALL_TIMEOUT_MS,
        help="epoch watchdog timeout in virtual ms "
        f"(default {CHAOS_STALL_TIMEOUT_MS:g})",
    )
    _add_pool_options(chaos)
    chaos.set_defaults(engine="symbolic", out="BENCH_chaos.json")

    load = sub.add_parser(
        "load", parents=[build_common_parser()],
        help="sustained-churn workload: many concurrent groups under "
        "seeded join/leave traffic (rekey latency percentiles, "
        "throughput, post-storm convergence)",
    )
    add_protocol_args(load)
    load.add_argument(
        "--arrivals", nargs="+", default=list(LOAD_ARRIVALS),
        choices=("poisson", "flash", "diurnal"),
        help="arrival processes to sweep (default: "
        f"{' '.join(LOAD_ARRIVALS)})",
    )
    load.add_argument(
        "--groups", type=int, default=LOAD_GROUPS,
        help=f"concurrent groups on the testbed (default {LOAD_GROUPS})",
    )
    load.add_argument(
        "--group-size", type=int, default=LOAD_GROUP_SIZE,
        help=f"settled members per group (default {LOAD_GROUP_SIZE})",
    )
    load.add_argument(
        "--rate", type=float, default=LOAD_RATE_HZ, metavar="HZ",
        help=f"churn events per second across all groups "
        f"(default {LOAD_RATE_HZ:g})",
    )
    load.add_argument(
        "--duration-ms", type=float, default=LOAD_DURATION_MS,
        help=f"sustained-phase length in virtual ms "
        f"(default {LOAD_DURATION_MS:g})",
    )
    load.add_argument(
        "--no-storm", dest="storm", action="store_false",
        help="drop the composed partition storm (a half/half testbed "
        "split at 75%% of the run, healed 300 ms later)",
    )
    load.add_argument(
        "--replay", metavar="PATH", default=None,
        help="replay a recorded churn trace (a JSON list of "
        "{at_ms, group, action} entries) instead of the generated "
        "arrival processes",
    )
    load.add_argument(
        "--stall-timeout-ms", type=float, default=DEFAULT_STALL_TIMEOUT_MS,
        help="epoch watchdog timeout in virtual ms; always armed here — "
        "sustained churn stalls agreements even fault-free "
        f"(default {DEFAULT_STALL_TIMEOUT_MS:g})",
    )
    _add_testbed_options(load)
    _add_pool_options(load)
    load.set_defaults(engine="symbolic", out="BENCH_load.json")

    profile = sub.add_parser(
        "profile", parents=[build_common_parser()],
        help="self-profiling micro-sweep: wall-clock attribution + "
        "cProfile hot-function tables over one real-engine join/leave "
        "cell per protocol, compared against the committed wall-clock "
        "baseline",
    )
    profile.add_argument(
        "--size", type=int, default=PROFILE_SIZE,
        help=f"settled group size per cell (default {PROFILE_SIZE}; the "
        "committed baseline was recorded at the default)",
    )
    add_protocol_args(profile)
    _add_testbed_options(profile)
    profile.add_argument(
        "--top", type=int, default=15,
        help="hot functions per protocol in the profile table (default 15)",
    )
    profile.add_argument(
        "--no-profiler", dest="with_profiler", action="store_false",
        help="skip the cProfile pass (halves the sweep's wall-clock; "
        "BENCH_profile.json then carries timings but no hot tables)",
    )
    profile.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help="recorded pre-optimization sweep to compare wall-clock "
        f"against (default {DEFAULT_BASELINE}; pass '' to skip)",
    )
    profile.add_argument(
        "--wallclock", default="BENCH_wallclock.json", metavar="PATH",
        help="where to write the wall-clock comparison artifact "
        "(default BENCH_wallclock.json)",
    )
    profile.add_argument(
        "--max-wall-regression", dest="max_wall_regression", type=float,
        default=None, metavar="RATIO",
        help="fail (exit 1) when current/baseline total wall-clock "
        "exceeds this ratio; values below 1.0 require a speedup over "
        "the committed baseline (CI gates at 0.6)",
    )
    _add_shard_crypto_option(profile)
    profile.set_defaults(engine="real", out="BENCH_profile.json")

    live = sub.add_parser(
        "live", parents=[build_common_parser()],
        help="run a secure group of N members over real localhost TCP "
        "(a spawned daemon process + one client per member), measure "
        "wall-clock join/leave rekey latency, and cross-validate against "
        "the simulator's virtual-time prediction",
    )
    add_protocol_args(live, singular=True)
    live.add_argument(
        "-n", "--size", type=int, default=8,
        help="settled group size before the measured events (default 8)",
    )
    live.add_argument(
        "--dh-group", default="dh-512", help="DH group (default dh-512)"
    )
    live.add_argument(
        "--host", default="127.0.0.1",
        help="daemon bind address (default 127.0.0.1)",
    )
    live.add_argument(
        "--port", type=int, default=None,
        help="daemon TCP port (default: pick a free one)",
    )
    live.add_argument(
        "--daemon", choices=("spawn", "inline"), default="spawn",
        help="daemon placement: a separate process over real TCP "
        "(default) or embedded in this process's event loop",
    )
    live.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="hard limit for each settle phase (default 60)",
    )
    live.set_defaults(transport="asyncio", out="BENCH_live.json")

    compare = sub.add_parser(
        "compare",
        help="diff two benchmark JSON artifacts cell-by-cell; exits "
        "nonzero on any drift (exact match by default — the simulator "
        "is deterministic)",
    )
    compare.add_argument("old", metavar="OLD.json", help="baseline artifact")
    compare.add_argument("new", metavar="NEW.json", help="candidate artifact")
    compare.add_argument(
        "--tolerance", type=float, default=0.0, metavar="ABS",
        help="absolute tolerance per numeric field (default 0: exact)",
    )
    compare.add_argument(
        "--relative", type=float, default=0.0, metavar="REL",
        help="relative tolerance per numeric field (default 0: exact)",
    )

    return parser


# ---------------------------------------------------------------------------
# subcommand bodies


def _emit(args, lines: List[str]) -> None:
    """Print the rendered text, and copy it to ``--out`` when given."""
    text = "\n".join(lines)
    print(text)
    if getattr(args, "out", None):
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwrote {args.out}")


def _pool_kwargs(args) -> dict:
    """The pool arguments of a parsed command line.

    The legacy ``--figure N`` parser has no pool flags; it runs inline
    and uncached, exactly as it always did.
    """
    return {
        "jobs": getattr(args, "jobs", 1),
        "cache_dir": getattr(args, "cache_dir", None),
        "use_cache": getattr(args, "use_cache", False),
    }


def _print_pool_stats(metrics: MetricsRegistry) -> None:
    stats = pool_stats(metrics)
    if stats["cells"]:
        print(
            f"cells: {stats['cells']} "
            f"({stats['cache_hits']} cache hits, "
            f"{stats['executed']} executed)"
        )


def run_figures(args, figure: str, engine=None) -> int:
    lines: List[str] = []
    metrics = MetricsRegistry(enabled=True)
    for title, topology, event, dh_group in FIGURES[figure]:
        series = sweep_group_sizes_parallel(
            topology,
            args.protocols,
            event,
            dh_group=dh_group,
            sizes=args.sizes,
            repeats=args.repeats,
            seed=args.seed,
            name=title,
            engine=engine,
            metrics=metrics,
            progress=lambda line: print(f"  {line}", flush=True),
            **_pool_kwargs(args),
        )
        lines.append(render_series(series, title))
        lines.append("")
        if args.plot:
            lines.append(render_plot(series, title=title))
            lines.append("")
        if args.csv:
            slug = title.split(":")[0].lower().replace(" ", "_")
            path = os.path.join(args.csv, f"{slug}_{event}_{dh_group}.csv")
            series_to_csv(series, path)
            lines.append(f"  wrote {path}\n")
    _emit(args, lines)
    _print_pool_stats(metrics)
    return 0


def run_table(args) -> int:
    _emit(args, [render_table1(), "", render_table1(n=10, m=4, p=4)])
    return 0


def run_scale_command(args) -> int:
    metrics = MetricsRegistry(enabled=True)
    measurements = run_scale(
        protocols=args.protocols,
        sizes=args.sizes,
        topology=args.topology,
        dh_group=args.dh_group,
        engine=args.engine,
        repeats=args.repeats,
        seed=args.seed,
        observe=args.observe,
        progress=lambda line: print(f"  {line}", flush=True),
        metrics=metrics,
        shard_jobs=args.shard_crypto,
        **_pool_kwargs(args),
    )
    write_scale_json(
        args.out,
        measurements,
        sizes=sorted(set(args.sizes)),
        protocols=list(args.protocols),
        engine=args.engine,
        topology=args.topology,
        dh_group=args.dh_group,
        repeats=args.repeats,
        seed=args.seed,
    )
    print()
    print(render_scale_table(measurements))
    if args.observe:
        print()
        print(render_percentiles(
            metrics.log_histograms(), "Rekey latency percentiles (ms)"
        ))
    print(f"\nwrote {args.out}: {len(measurements)} measurements")
    _print_pool_stats(metrics)
    return 0


def run_chaos_command(args) -> int:
    trace_events: Optional[List[dict]] = [] if args.trace_log else None
    metrics = MetricsRegistry(enabled=True)
    cells = run_chaos(
        protocols=args.protocols,
        drop_rates=args.drops,
        group_size=args.size,
        topology=args.topology,
        dh_group=args.dh_group,
        engine=args.engine,
        repeats=args.repeats,
        seed=args.seed,
        stall_timeout_ms=args.stall_timeout_ms,
        progress=lambda line: print(f"  {line}", flush=True),
        trace_events=trace_events,
        metrics=metrics,
        **_pool_kwargs(args),
    )
    write_chaos_json(
        args.out,
        cells,
        drops=list(args.drops),
        protocols=list(args.protocols),
        group_size=args.size,
        engine=args.engine,
        topology=args.topology,
        dh_group=args.dh_group,
        repeats=args.repeats,
        seed=args.seed,
        stall_timeout_ms=args.stall_timeout_ms,
    )
    print()
    print(render_chaos_table(cells))
    converged = sum(cell.converged for cell in cells)
    samples = sum(cell.samples for cell in cells)
    print(f"\nwrote {args.out}: {len(cells)} cells, "
          f"{converged}/{samples} samples converged")
    if trace_events is not None:
        with open(args.trace_log, "w", encoding="utf-8") as handle:
            for event in trace_events:
                handle.write(json.dumps(event, sort_keys=True, default=str))
                handle.write("\n")
        print(f"wrote {args.trace_log}: {len(trace_events)} trace events")
    _print_pool_stats(metrics)
    if converged < samples:
        # The chaos acceptance bar is full convergence (the watchdog is
        # supposed to recover every rekey); a sweep below it is a failure,
        # not a statistic to print and forget.
        print(
            f"error: {samples - converged} of {samples} samples did not "
            "converge on a shared key",
            file=sys.stderr,
        )
        return 1
    return 0


def run_load_command(args) -> int:
    arrivals = list(args.arrivals)
    trace: List[dict] = []
    if args.replay:
        with open(args.replay, encoding="utf-8") as handle:
            recorded = json.load(handle)
        if isinstance(recorded, dict):
            recorded = recorded.get("events", recorded.get("trace"))
        if not isinstance(recorded, list):
            raise ValueError(
                f"{args.replay}: expected a JSON list of churn events "
                "(or an object with an 'events' list)"
            )
        trace = recorded  # validated by WorkloadSpec at grid build time
        arrivals = ["trace"]
    metrics = MetricsRegistry(enabled=True)
    results = run_load(
        protocols=args.protocols,
        arrivals=arrivals,
        groups=args.groups,
        group_size=args.group_size,
        rate_hz=args.rate,
        duration_ms=args.duration_ms,
        seed=args.seed,
        topology=args.topology,
        dh_group=args.dh_group,
        engine=args.engine,
        stall_timeout_ms=args.stall_timeout_ms,
        storm=args.storm,
        trace=trace,
        progress=lambda line: print(f"  {line}", flush=True),
        metrics=metrics,
        **_pool_kwargs(args),
    )
    write_load_json(
        args.out,
        results,
        protocols=list(args.protocols),
        arrivals=arrivals,
        groups=args.groups,
        group_size=args.group_size,
        rate_hz=args.rate,
        duration_ms=args.duration_ms,
        storm=args.storm,
        engine=args.engine,
        topology=args.topology,
        dh_group=args.dh_group,
        seed=args.seed,
        stall_timeout_ms=args.stall_timeout_ms,
    )
    print()
    print(render_load_table(results))
    converged = sum(1 for cell in results if cell.converged)
    print(f"\nwrote {args.out}: {len(results)} cells, "
          f"{converged}/{len(results)} fully converged")
    _print_pool_stats(metrics)
    if converged < len(results):
        # Same acceptance bar as chaos: the watchdog is supposed to
        # recover every group, so a cell below it is a failure.
        print(
            f"error: {len(results) - converged} of {len(results)} cells "
            "did not converge every group on a shared key",
            file=sys.stderr,
        )
        return 1
    return 0


def run_profile_command(args) -> int:
    metrics = MetricsRegistry(enabled=True)
    profile_doc = profile_micro_sweep(
        protocols=args.protocols,
        size=args.size,
        engine=args.engine or "real",
        topology=args.topology,
        dh_group=args.dh_group,
        seed=args.seed,
        top=args.top,
        with_profiler=args.with_profiler,
        metrics=metrics,
        progress=lambda line: print(f"  {line}", flush=True),
        shard_jobs=args.shard_crypto,
    )
    write_json(args.out, profile_doc)
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"note: no baseline at {args.baseline}; "
                  "writing current numbers only")
        else:
            recorded = baseline.get("spec", {})

            def canon(key, value):
                # 'real:gmpy2' and 'real' are the same engine (the
                # backend changes wall-clock only), so they compare.
                if key == "engine" and isinstance(value, str):
                    return value.split(":", 1)[0]
                return value

            mismatched = [
                key for key in ("group_size", "engine", "topology", "dh_group", "seed")
                if key in recorded
                and canon(key, recorded[key])
                != canon(key, profile_doc["spec"][key])
            ]
            if mismatched:
                # Comparing sweeps with different specs would report a
                # bogus speedup and a guaranteed sim mismatch.
                print(
                    f"note: baseline {args.baseline} was recorded with a "
                    f"different {'/'.join(mismatched)}; skipping comparison"
                )
                baseline = None
    wallclock = wallclock_document(
        profile_doc, baseline,
        max_wall_regression=args.max_wall_regression,
    )
    write_json(args.wallclock, wallclock)
    print()
    print(render_profile_table(profile_doc))
    print(f"\nwrote {args.out}")
    if baseline is not None:
        print(
            f"wrote {args.wallclock}: {wallclock['baseline']['total_wall_s']:.2f}s "
            f"baseline -> {wallclock['current']['total_wall_s']:.2f}s now "
            f"({wallclock['speedup']}x), simulated times "
            + ("identical" if wallclock["sim_identical"] else "DIVERGED")
        )
        if not wallclock["sim_identical"]:
            # Wall-clock is hostbound and only tracked; simulated-time
            # identity is the hard contract and failing it is an error.
            print(
                "error: simulated join/leave times diverge from the "
                "recorded baseline — a wall-clock optimization changed "
                "behaviour",
                file=sys.stderr,
            )
            return 1
        if "wall_ok" in wallclock and not wallclock["wall_ok"]:
            print(
                f"error: wall-clock ratio {wallclock['wall_ratio']} "
                f"exceeds --max-wall-regression "
                f"{wallclock['max_wall_regression']}",
                file=sys.stderr,
            )
            return 1
    else:
        print(f"wrote {args.wallclock} (no baseline comparison)")
        if args.max_wall_regression is not None:
            # The gate was requested but there is nothing to gate
            # against; passing silently would mask a misconfigured CI.
            print(
                "error: --max-wall-regression needs a comparable "
                "baseline",
                file=sys.stderr,
            )
            return 1
    return 0


def run_live_command(args) -> int:
    from repro.bench.live import (
        render_live_table,
        run_live_benchmark,
        write_live_json,
    )

    document = run_live_benchmark(
        protocol=args.protocol,
        size=args.size,
        dh_group=args.dh_group,
        engine=args.engine,
        seed=args.seed,
        host=args.host,
        port=args.port,
        daemon_mode=args.daemon,
        timeout_s=args.timeout,
        progress=lambda line: print(f"  {line}", flush=True),
    )
    write_live_json(args.out, document)
    print()
    print(render_live_table(document))
    print(f"\nwrote {args.out}")
    return 0


def run_compare_command(args) -> int:
    drifts = compare_files(
        args.old, args.new,
        tolerance=args.tolerance, relative=args.relative,
    )
    if drifts:
        print(f"DRIFT: {args.new} diverges from {args.old}:")
        for line in drifts:
            print(f"  {line}")
        print(
            f"{len(drifts)} drifting field(s); the simulator is "
            "deterministic, so this is a behavioral change — refresh the "
            "baseline only if it is intended"
        )
        return 1
    print(f"OK: {args.new} matches {args.old}")
    return 0


def _run_observed_event(args):
    """Grow a group, run one observed membership event, return the framework."""
    framework = _fresh_framework(
        TOPOLOGIES[args.topology], args.protocol, args.dh_group, args.seed,
        observe=True, engine=args.engine,
        trace=bool(getattr(args, "trace_log", None)),
    )
    members = grow_group(framework, args.size)
    if args.event == "join":
        joiner = framework.member(
            "x1", (args.size + 1) % len(framework.world.topology.machines)
        )
        framework.mark_event()
        joiner.join()
    else:
        victim = members[args.size // 2]
        framework.mark_event()
        victim.leave()
    framework.run_until_idle()
    return framework


def _dump_gcs_trace(args, framework) -> None:
    if not getattr(args, "trace_log", None):
        return
    count = framework.world.tracer.to_jsonl(args.trace_log)
    print(f"wrote {args.trace_log}: {count} simulation events")


def run_trace_command(args) -> int:
    framework = _run_observed_event(args)
    title = (
        f"{args.event} at n={args.size}, {args.protocol}, {args.dh_group}, "
        f"{framework.world.topology.name}"
    )
    trace = framework.obs.write_chrome_trace(args.out)
    validate_chrome_trace(trace)
    print(
        f"wrote {args.out}: {len(trace['traceEvents'])} trace events "
        f"({len(framework.obs.spans)} spans, "
        f"{framework.obs.spans.dropped} dropped) — {title}"
    )
    print("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    if args.jsonl:
        lines = framework.obs.to_jsonl(args.jsonl)
        print(f"wrote {args.jsonl}: {lines} JSON lines (spans + metrics)")
    _dump_gcs_trace(args, framework)
    return 0


def run_report_command(args) -> int:
    framework = _run_observed_event(args)
    title = (
        f"{args.event} at n={args.size}, {args.protocol}, {args.dh_group}, "
        f"{framework.world.topology.name}"
    )
    lines = [render_report(framework.timeline, framework.obs.spans, title)]
    if getattr(args, "critical_path", False):
        paths = timeline_critical_paths(framework.timeline, framework.obs.spans)
        lines.append("")
        lines.append(render_critical_paths(paths))
    _emit(args, lines)
    _dump_gcs_trace(args, framework)
    return 0


def run_critpath_command(args) -> int:
    framework = _run_observed_event(args)
    title = (
        f"Critical paths: {args.event} at n={args.size}, {args.protocol}, "
        f"{args.dh_group}, {framework.world.topology.name}"
    )
    paths = timeline_critical_paths(framework.timeline, framework.obs.spans)
    lines = [title, "", render_critical_paths(paths), ""]
    lines.append(render_percentiles(
        framework.obs.metrics.log_histograms(),
        "Rekey latency percentiles (ms)",
    ))
    spans = framework.obs.spans
    if spans.dropped:
        lines.append(
            f"\n!! WARNING: span recorder dropped {spans.dropped} span(s) "
            f"(capacity {spans.capacity}); the chains above may be "
            f"truncated.  Re-run with a larger span capacity."
        )
    _emit(args, lines)
    _dump_gcs_trace(args, framework)
    return 0


def _validate_transport(args) -> None:
    """Reject option combinations the chosen substrate cannot honor.

    ``compare`` has no ``--transport`` flag at all (it never runs a
    substrate), hence the ``getattr`` default.
    """
    transport = getattr(args, "transport", "sim")
    if transport == "asyncio":
        if args.command not in ASYNCIO_SUBCOMMANDS:
            raise ValueError(
                f"the asyncio transport only supports "
                f"{'/'.join(ASYNCIO_SUBCOMMANDS)}; '{args.command}' needs "
                "the simulator's virtual time (run it with --transport sim)"
            )
        if getattr(args, "trace_log", None):
            raise ValueError(
                "--trace records the simulated event log; the asyncio "
                "transport has no simulation to trace — drop --trace or "
                "use --transport sim"
            )
    elif args.command in ASYNCIO_SUBCOMMANDS:
        raise ValueError(
            f"'{args.command}' runs on the live asyncio backend; "
            "--transport sim has no real sockets to measure (drop the "
            "--transport override)"
        )


def run_subcommand(argv: Sequence[str]) -> int:
    args = build_subcommand_parser().parse_args(argv)
    _validate_transport(args)
    if args.command == "live":
        return run_live_command(args)
    if args.command == "figure":
        return run_figures(args, args.number, engine=args.engine)
    if args.command == "table":
        return run_table(args)
    if args.command == "trace":
        return run_trace_command(args)
    if args.command == "report":
        return run_report_command(args)
    if args.command == "critpath":
        return run_critpath_command(args)
    if args.command == "scale":
        return run_scale_command(args)
    if args.command == "load":
        return run_load_command(args)
    if args.command == "compare":
        return run_compare_command(args)
    if args.command == "profile":
        return run_profile_command(args)
    return run_chaos_command(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Every failure — an unreadable artifact, a malformed trace, a sweep
    that trips the livelock guard — exits nonzero with a one-line error
    instead of a traceback, so shell pipelines and CI can gate on it.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] in SUBCOMMANDS:
            return run_subcommand(argv)
        args = build_parser().parse_args(argv)
        if args.table == "1":
            args.out = None
            return run_table(args)
        args.out = None
        return run_figures(args, args.figure, engine=None)
    except (OSError, ValueError, KeyError, RuntimeError, AssertionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
