"""Command-line front end: regenerate any of the paper's figures.

Examples::

    python -m repro.bench --figure 11            # LAN join, 512 & 1024
    python -m repro.bench --figure 14 --repeats 1
    python -m repro.bench --figure 12 --sizes 4 13 26 --csv out/
    python -m repro.bench --table 1
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.table1 import render_table1
from repro.bench.plot import render_plot
from repro.bench.report import render_series, series_to_csv
from repro.bench.series import DEFAULT_SIZES, sweep_group_sizes
from repro.gcs.topology import lan_testbed, medium_wan_testbed, wan_testbed

PROTOCOLS = ("BD", "CKD", "GDH", "STR", "TGDH")

#: figure number -> list of (title, testbed factory, event, dh group)
FIGURES = {
    "11": [
        ("Figure 11 (left): Join - DH 512 (LAN)", lan_testbed, "join", "dh-512"),
        ("Figure 11 (right): Join - DH 1024 (LAN)", lan_testbed, "join", "dh-1024"),
    ],
    "12": [
        ("Figure 12 (left): Leave - DH 512 (LAN)", lan_testbed, "leave", "dh-512"),
        ("Figure 12 (right): Leave - DH 1024 (LAN)", lan_testbed, "leave", "dh-1024"),
    ],
    "14": [
        ("Figure 14 (left): Join - DH 512 (WAN)", wan_testbed, "join", "dh-512"),
        ("Figure 14 (right): Leave - DH 512 (WAN)", wan_testbed, "leave", "dh-512"),
    ],
    "medium-wan": [
        ("Future work: Join (70ms RTT WAN)", medium_wan_testbed, "join", "dh-512"),
        ("Future work: Leave (70ms RTT WAN)", medium_wan_testbed, "leave", "dh-512"),
    ],
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation of 'On the Performance of "
        "Group Key Agreement Protocols' (ICDCS 2002) on the simulated "
        "testbeds.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--figure", choices=sorted(FIGURES), help="figure to regenerate"
    )
    target.add_argument(
        "--table", choices=["1"], help="table to print"
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="group sizes to sample (default: the paper's 2-50 sweep)",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=list(PROTOCOLS),
        choices=PROTOCOLS, help="protocols to include",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="events averaged per size"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed"
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each series as CSV into this directory",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render each series as an ASCII chart",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.table == "1":
        print(render_table1())
        print()
        print(render_table1(n=10, m=4, p=4))
        return 0
    for title, testbed, event, dh_group in FIGURES[args.figure]:
        series = sweep_group_sizes(
            testbed,
            args.protocols,
            event,
            dh_group=dh_group,
            sizes=args.sizes,
            repeats=args.repeats,
            seed=args.seed,
            name=title,
        )
        print(render_series(series, title))
        print()
        if args.plot:
            print(render_plot(series, title=title))
            print()
        if args.csv:
            slug = title.split(":")[0].lower().replace(" ", "_")
            path = os.path.join(args.csv, f"{slug}_{event}_{dh_group}.csv")
            series_to_csv(series, path)
            print(f"  wrote {path}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
