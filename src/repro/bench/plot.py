"""ASCII line plots of figure series — the paper's figures in a terminal.

No plotting dependency: a fixed-size character canvas with one glyph per
protocol, linear interpolation between sampled group sizes, and the same
axes as the paper (group size vs total elapsed milliseconds).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.series import FigureSeries

#: plot glyph per protocol, stable across figures
GLYPHS = {"BD": "B", "CKD": "C", "GDH": "G", "STR": "S", "TGDH": "T"}


def render_plot(
    series: FigureSeries,
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
) -> str:
    """Render the series as an ASCII chart (x: group size, y: elapsed ms)."""
    if width < 16 or height < 6:
        raise ValueError("plot area too small")
    xs = series.sizes
    x_min, x_max = min(xs), max(xs)
    if x_min == x_max:
        raise ValueError("need at least two group sizes to plot")
    y_max = max(max(curve) for curve in series.curves.values())
    y_max = max(y_max, 1e-9)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def place(size: float, value: float, glyph: str) -> None:
        col = round((size - x_min) / (x_max - x_min) * (width - 1))
        row = height - 1 - round(value / y_max * (height - 1))
        row = min(max(row, 0), height - 1)
        if grid[row][col] == " " or grid[row][col] == glyph:
            grid[row][col] = glyph
        else:
            grid[row][col] = "*"  # curves overlap here

    for protocol, curve in sorted(series.curves.items()):
        glyph = GLYPHS.get(protocol, protocol[0])
        # Interpolate between samples so curves read as lines.
        for index in range(len(xs) - 1):
            x0, x1 = xs[index], xs[index + 1]
            y0, y1 = curve[index], curve[index + 1]
            steps = max(2, round((x1 - x0) / (x_max - x_min) * width))
            for step in range(steps + 1):
                frac = step / steps
                place(x0 + frac * (x1 - x0), y0 + frac * (y1 - y0), glyph)

    lines = [title or f"{series.name} — total elapsed ms vs group size"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.0f} |"
        elif row_index == height - 1:
            label = f"{0:8.0f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = " " * 10 + f"{x_min:<6d}" + " " * (width - 14) + f"{x_max:>6d}"
    lines.append(x_axis)
    legend = "   ".join(
        f"{GLYPHS.get(p, p[0])}={p}" for p in sorted(series.curves)
    )
    lines.append(" " * 10 + legend + "   (*=overlap)")
    return "\n".join(lines)
