"""Sustained-load benchmark: many groups under churn (``repro.bench load``).

The paper measures one membership event at a time on a quiet testbed.
This benchmark drives the deployment the system was built for: many
concurrent groups multiplexed over the 13-machine testbed's daemons,
each under a sustained stream of joins and leaves drawn from a seeded
arrival process (:mod:`repro.workload`), optionally with a partition
storm composed on top.  Each (protocol, arrival) cell reports:

* ``rekey_p50_ms`` / ``p95`` / ``p99`` — per-member rekey latency over
  the sustained phase, from the exact ``member.rekey_ms`` log-histograms
  merged across all groups,
* ``throughput_eps`` — member-epochs per virtual second (how many key
  installs the substrate sustained),
* ``converge_ms`` — the quiet tail between the last injection (churn or
  fault) and simulator idle: the time-to-converge after the storm,
* ``stalls`` / ``restarts`` — epoch-watchdog activity (the watchdog is
  always armed here; cascaded churn stalls agreements even fault-free),
* ``converged`` — whether every group ended on one confirmed shared key
  (the acceptance bar, same as the chaos benchmark's).

Cells shard over the benchmark pool like every other grid: byte-identical
results at any ``--jobs``, content-addressed caching, deterministic merge
order.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Sequence

from repro.bench.pool import Cell, register_runner, run_cells
from repro.faults.schedule import partition_storm
from repro.obs.metrics import MetricsRegistry
from repro.workload.engine import (
    DEFAULT_STALL_TIMEOUT_MS,
    WorkloadResult,
    run_workload,
)
from repro.workload.spec import WorkloadSpec

#: Arrival processes swept by default.  ``diurnal`` is one ``--arrivals``
#: away; the default pair keeps the smoke-sized sweep under a second per
#: cell while still contrasting steady-state against bursty traffic.
LOAD_ARRIVALS = ("poisson", "flash")

#: Default sweep shape: enough concurrent groups to multiplex every
#: testbed machine several times over, small enough that a full
#: five-protocol sweep stays interactive.
LOAD_GROUPS = 6
LOAD_GROUP_SIZE = 4
LOAD_RATE_HZ = 20.0
LOAD_DURATION_MS = 1500.0

#: The composed partition storm: one partition/heal cycle splitting the
#: testbed in half, landing at 75% of the run so rekey traffic is in
#: full flight when the network tears.
LOAD_STORM_PERIOD_MS = 300.0
LOAD_STORM_FRACTION = 0.75

#: Event budget per cell (a sustained run schedules far more events than
#: a single-rekey benchmark; beyond this the cell reports non-convergence
#: rather than looping).
LOAD_MAX_EVENTS = 5_000_000


def storm_faults(duration_ms: float, machines: int = 13) -> List[dict]:
    """The default composed storm, as ``WorkloadSpec.faults`` entries:
    split the testbed in half at ``LOAD_STORM_FRACTION`` of the run,
    heal ``LOAD_STORM_PERIOD_MS`` later."""
    half = machines // 2 + machines % 2
    schedule = partition_storm(
        [list(range(half)), list(range(half, machines))],
        rounds=1,
        period_ms=LOAD_STORM_PERIOD_MS,
        start_ms=duration_ms * LOAD_STORM_FRACTION,
    )
    return [event.to_dict() for event in schedule]


@register_runner("load")
def run_load_cell(
    spec: dict, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """One (protocol, arrival) cell: a full sustained run.

    ``spec["workload"]`` is a :meth:`WorkloadSpec.to_spec` dict — the
    exact serialized scenario, so the cell is reproducible from its spec
    alone and the pool's content-addressed cache key covers everything
    that matters.  Returns ``{"cell": WorkloadResult dict}``.
    """
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    workload = WorkloadSpec.from_spec(spec["workload"])
    stall = spec.get("stall_timeout_ms", DEFAULT_STALL_TIMEOUT_MS)
    result = run_workload(
        workload,
        topology=spec.get("topology", "lan"),
        dh_group=spec.get("dh_group", "dh-512"),
        engine=spec.get("engine", "symbolic"),
        stall_timeout_ms=None if stall is None else float(stall),
        max_events=int(spec.get("max_events", LOAD_MAX_EVENTS)),
        metrics=registry,
    )
    registry.histogram(
        "bench.cell.sim_ms", kind="load", protocol=workload.protocol
    ).observe(result.makespan_ms)
    return {"cell": result.to_dict()}


def _load_summary(result: dict) -> str:
    cell = WorkloadResult.from_dict(result["cell"])
    return (
        f"{cell.protocol} {cell.arrival}: "
        f"{cell.converged_groups}/{cell.groups} converged, "
        f"p50={cell.rekey_p50_ms:.1f} ms, "
        f"{cell.throughput_eps:.1f} epochs/s"
    )


def load_cells_grid(
    protocols: Sequence[str],
    arrivals: Sequence[str] = LOAD_ARRIVALS,
    groups: int = LOAD_GROUPS,
    group_size: int = LOAD_GROUP_SIZE,
    rate_hz: float = LOAD_RATE_HZ,
    duration_ms: float = LOAD_DURATION_MS,
    seed: int = 0,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    stall_timeout_ms: Optional[float] = DEFAULT_STALL_TIMEOUT_MS,
    max_events: int = LOAD_MAX_EVENTS,
    storm: bool = False,
    trace: Sequence[dict] = (),
    faults: Sequence[dict] = (),
) -> List[Cell]:
    """The sweep's cell grid, protocol-major with arrivals in given order.

    Every cell of the grid shares the same seed, so all protocols face
    the *identical* churn stream per arrival process — the comparison
    the benchmark exists to make.  ``storm`` composes the default
    partition storm on top of every cell; explicit ``faults`` (fault
    schedule spec dicts) are appended after it.
    """
    composed = list(faults)
    if storm:
        composed = storm_faults(duration_ms) + composed
    cells: List[Cell] = []
    for protocol in protocols:
        for arrival in arrivals:
            workload = WorkloadSpec(
                protocol=protocol,
                arrival=arrival,
                groups=groups,
                group_size=group_size,
                rate_hz=rate_hz,
                duration_ms=duration_ms,
                seed=seed,
                trace=tuple(trace),
                faults=tuple(composed),
            )
            spec = {
                "workload": workload.to_spec(),
                "topology": topology,
                "dh_group": dh_group,
                "engine": engine,
                "stall_timeout_ms": stall_timeout_ms,
                "max_events": max_events,
            }
            cells.append(Cell("load", spec, summarize=_load_summary))
    return cells


def run_load(
    protocols: Sequence[str],
    arrivals: Sequence[str] = LOAD_ARRIVALS,
    groups: int = LOAD_GROUPS,
    group_size: int = LOAD_GROUP_SIZE,
    rate_hz: float = LOAD_RATE_HZ,
    duration_ms: float = LOAD_DURATION_MS,
    seed: int = 0,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    stall_timeout_ms: Optional[float] = DEFAULT_STALL_TIMEOUT_MS,
    max_events: int = LOAD_MAX_EVENTS,
    storm: bool = False,
    trace: Sequence[dict] = (),
    faults: Sequence[dict] = (),
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> List[WorkloadResult]:
    """Sweep protocols × arrival processes under sustained churn.

    Cells shard over ``jobs`` worker processes and merge in grid order
    regardless of completion order, so the artifact is byte-identical at
    any jobs count; with ``cache_dir`` set, unchanged cells are served
    from the content-addressed cache.  An engine *instance* (rather than
    a name) forces the inline uncached path.
    """
    if not (engine is None or isinstance(engine, str)):
        jobs, cache_dir, use_cache = 1, None, False
    cells = load_cells_grid(
        protocols,
        arrivals=arrivals,
        groups=groups,
        group_size=group_size,
        rate_hz=rate_hz,
        duration_ms=duration_ms,
        seed=seed,
        topology=topology,
        dh_group=dh_group,
        engine=engine,
        stall_timeout_ms=stall_timeout_ms,
        max_events=max_events,
        storm=storm,
        trace=trace,
        faults=faults,
    )
    results = run_cells(
        cells,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        metrics=metrics,
        progress=progress,
    )
    return [WorkloadResult.from_dict(result["cell"]) for result in results]


def load_payload(results: Sequence[WorkloadResult], **meta) -> dict:
    """The BENCH_load.json payload: run metadata + serialized cells."""
    payload = {"benchmark": "load"}
    payload.update(meta)
    payload["cells"] = [result.to_dict() for result in results]
    return payload


def write_load_json(path: str, results: Sequence[WorkloadResult], **meta) -> dict:
    payload = load_payload(results, **meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def render_load_table(results: Sequence[WorkloadResult]) -> str:
    """One row per (protocol, arrival): latency, throughput, recovery."""
    lines = [
        "sustained churn across concurrent groups",
        (
            f"{'protocol':>8s} {'arrival':>8s} {'ok':>5s} {'events':>7s} "
            f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s} "
            f"{'epochs/s':>9s} {'stalls':>7s} {'conv ms':>8s}"
        ),
    ]
    for cell in results:
        lines.append(
            f"{cell.protocol:>8s} {cell.arrival:>8s} "
            f"{cell.converged_groups:2d}/{cell.groups:<2d} {cell.events:7d} "
            f"{cell.rekey_p50_ms:8.2f} {cell.rekey_p95_ms:8.2f} "
            f"{cell.rekey_p99_ms:8.2f} {cell.throughput_eps:9.1f} "
            f"{cell.stalls:7d} {cell.converge_ms:8.1f}"
        )
    return "\n".join(lines)
