"""Chaos benchmark: rekeying under injected faults (``repro.bench chaos``).

The paper measures key agreement on a quiet, reliable network.  This
benchmark asks the complementary question the fault-injection subsystem
exists to answer: *does every protocol still reach a confirmed shared key
when the network misbehaves, and what does the recovery cost?*

For each (protocol, drop-rate) cell the group is grown fault-free, then a
uniform per-frame drop policy (:class:`repro.faults.LinkFaults`) is
installed and a join is injected.  The epoch watchdog
(``stall_timeout_ms``) is armed, so a rekey whose messages were eaten by
the network is aborted and restarted in coordinated fashion.  Each cell
reports:

* ``completion_rate`` — fraction of samples where every member converged
  on one confirmed group key (the acceptance bar is 1.0),
* ``stalls`` / ``restarts`` — watchdog activity summed over the samples,
* ``fault_drops`` / ``fault_retries`` — what the fault layer actually did,
* ``time_to_key_ms`` — mean total elapsed time of the *converged*
  samples, i.e. the paper's §6 metric degraded by faults.

Drop rate 0.0 is always worth including: it pins down that the fault
machinery is inert when no faults are configured (zero stalls, zero
restarts, baseline time-to-key).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Callable, List, Optional, Sequence

from repro.bench.harness import grow_group
from repro.bench.pool import Cell, register_runner, run_cells
from repro.core.framework import SecureSpreadFramework
from repro.faults import LinkFaults
from repro.gcs.topology import TESTBEDS
from repro.obs.metrics import MetricsRegistry
from repro.protocols import available

#: Drop rates swept by default.  0.0 is the inertness control.
CHAOS_DROP_RATES = (0.0, 0.05, 0.15)

#: Every registered protocol (the paper's five, plus any plug-ins
#: registered before this module is imported).
CHAOS_PROTOCOLS = available()

#: Epoch watchdog timeout used for chaos runs, virtual ms.  Comfortably
#: above a clean LAN rekey (tens of ms) so the watchdog only fires on
#: genuinely lost progress, far below the livelock guard.
CHAOS_STALL_TIMEOUT_MS = 400.0

#: Event budget per sample.  A faulty rekey retries and restarts, but a
#: sample that needs more than this is reported as non-converged rather
#: than looping forever.
CHAOS_MAX_EVENTS = 3_000_000


@dataclass
class ChaosCell:
    """Aggregated outcome of one (protocol, drop-rate) cell."""

    protocol: str
    drop_rate: float
    group_size: int
    topology: str
    samples: int
    converged: int
    stalls: int
    restarts: int
    fault_drops: int
    fault_retries: int
    time_to_key_ms: Optional[float]
    engine: str = "symbolic"

    @property
    def completion_rate(self) -> float:
        return self.converged / self.samples if self.samples else 0.0

    def to_dict(self) -> dict:
        data = {field.name: getattr(self, field.name) for field in fields(self)}
        data["completion_rate"] = self.completion_rate
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosCell":
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def _converged_key(framework: SecureSpreadFramework, members) -> Optional[tuple]:
    """The (view_id, key) every member agrees on, or None.

    Convergence means: every member's protocol has settled on the *same*
    membership view, holds a key for exactly that view, and all the keys
    are equal — the "confirmed shared key" of the acceptance criteria.
    """
    views = {m.protocol.view.view_id if m.protocol.view else None for m in members}
    if len(views) != 1 or None in views:
        return None
    (view_id,) = views
    for m in members:
        if not m.protocol.done_for(m.protocol.view):
            return None
    keys = {m.protocol.key for m in members}
    if len(keys) != 1:
        return None
    return (view_id, keys.pop())


@register_runner("chaos")
def run_chaos_cell(
    spec: dict, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """One (protocol, drop-rate) cell: ``repeats`` independent samples.

    Every sample runs on a fresh framework seeded ``seed + sample_index``
    so the cell is deterministic in isolation (same protocol, rate, and
    sample seed ⇒ identical run).  Returns
    ``{"cell": ChaosCell dict, "trace_events": [...] | None}`` — JSON-
    ready, so the cell can cross process boundaries and live in the
    result cache.
    """
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    protocol = spec["protocol"]
    rate = float(spec["drop_rate"])
    group_size = int(spec.get("group_size", 6))
    topology = spec.get("topology", "lan")
    repeats = int(spec.get("repeats", 2))
    seed = int(spec.get("seed", 0))
    engine = spec.get("engine", "symbolic")
    stall_timeout_ms = float(
        spec.get("stall_timeout_ms", CHAOS_STALL_TIMEOUT_MS)
    )
    max_events = int(spec.get("max_events", CHAOS_MAX_EVENTS))
    trace = bool(spec.get("trace", False))
    trace_events: Optional[List[dict]] = [] if trace else None
    converged = 0
    stalls = restarts = fault_drops = fault_retries = 0
    times: List[float] = []
    engine_name = str(engine)
    for sample in range(repeats):
        sample_seed = seed + sample
        framework = SecureSpreadFramework(
            TESTBEDS[topology](),
            default_protocol=protocol,
            dh_group=spec.get("dh_group", "dh-512"),
            seed=sample_seed,
            engine=engine,
            stall_timeout_ms=stall_timeout_ms,
            trace=trace,
        )
        engine_name = framework.engine.name
        members = grow_group(framework, group_size)
        if rate > 0.0:
            framework.world.install_link_faults(
                LinkFaults.uniform(seed=sample_seed, drop=rate)
            )
        joiner = framework.member(
            "x1", group_size % len(framework.world.topology.machines)
        )
        framework.mark_event()
        joiner.join()
        try:
            framework.run_until_idle(max_events=max_events)
        except RuntimeError:
            # Livelock guard tripped: count the sample as failed
            # but keep the sweep going.
            pass
        outcome = _converged_key(framework, members + [joiner])
        if outcome is not None:
            converged += 1
            view_id, _key = outcome
            record = framework.timeline.epochs.get(view_id)
            if record is not None and record.complete():
                times.append(record.total_elapsed())
        stalls += framework.rekey_stalls
        restarts += framework.rekey_restarts
        fault_drops += framework.world.network.fault_drops
        fault_retries += framework.world.network.fault_retries
        if trace_events is not None:
            for event in framework.world.tracer.events:
                trace_events.append({
                    "protocol": protocol,
                    "drop_rate": rate,
                    "sample": sample,
                    "time": event.time,
                    "category": event.category,
                    "actor": event.actor,
                    "detail": event.detail,
                })
    cell = ChaosCell(
        protocol=protocol,
        drop_rate=rate,
        group_size=group_size,
        topology=topology,
        samples=repeats,
        converged=converged,
        stalls=stalls,
        restarts=restarts,
        fault_drops=fault_drops,
        fault_retries=fault_retries,
        time_to_key_ms=sum(times) / len(times) if times else None,
        engine=engine_name,
    )
    registry.histogram(
        "bench.cell.sim_ms", kind="chaos", protocol=protocol
    ).observe(sum(times))
    return {"cell": cell.to_dict(), "trace_events": trace_events}


def _chaos_summary(result: dict) -> str:
    cell = ChaosCell.from_dict(result["cell"])
    line = (
        f"{cell.protocol} drop={cell.drop_rate:.2f}: "
        f"{cell.converged}/{cell.samples} converged, "
        f"{cell.restarts} restarts"
    )
    if cell.time_to_key_ms is not None:
        line += f", {cell.time_to_key_ms:.1f} ms to key"
    return line


def chaos_cells_grid(
    protocols: Sequence[str],
    drop_rates: Sequence[float],
    group_size: int = 6,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    repeats: int = 2,
    seed: int = 0,
    stall_timeout_ms: float = CHAOS_STALL_TIMEOUT_MS,
    max_events: int = CHAOS_MAX_EVENTS,
    trace: bool = False,
) -> List[Cell]:
    """The sweep's cell grid, protocol-major with rates in given order."""
    cells: List[Cell] = []
    for protocol in protocols:
        for rate in drop_rates:
            spec = {
                "protocol": protocol,
                "drop_rate": rate,
                "group_size": group_size,
                "topology": topology,
                "dh_group": dh_group,
                "engine": engine,
                "repeats": repeats,
                "seed": seed,
                "stall_timeout_ms": stall_timeout_ms,
                "max_events": max_events,
                "trace": trace,
            }
            cells.append(Cell("chaos", spec, summarize=_chaos_summary))
    return cells


def run_chaos(
    protocols: Sequence[str] = CHAOS_PROTOCOLS,
    drop_rates: Sequence[float] = CHAOS_DROP_RATES,
    group_size: int = 6,
    topology: str = "lan",
    dh_group: str = "dh-512",
    engine="symbolic",
    repeats: int = 2,
    seed: int = 0,
    stall_timeout_ms: float = CHAOS_STALL_TIMEOUT_MS,
    max_events: int = CHAOS_MAX_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    trace_events: Optional[List[dict]] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> List[ChaosCell]:
    """Sweep drop rates × protocols; one :class:`ChaosCell` per pair.

    Cells shard over ``jobs`` worker processes and merge in grid order
    (protocol-major, rates in given order) regardless of completion
    order; with ``cache_dir`` set, unchanged cells are served from the
    content-addressed cache.  An engine *instance* (rather than a name)
    forces the inline uncached path.  Trace events are collected inside
    each cell and appended in grid order, so tracing parallelizes too.

    Pass a list as ``trace_events`` to run with the flat GCS tracer on;
    every sample's events are appended to it as dicts labeled with the
    (protocol, drop rate, sample) cell coordinates.
    """
    if not (engine is None or isinstance(engine, str)):
        jobs, cache_dir, use_cache = 1, None, False
    cells = chaos_cells_grid(
        protocols,
        drop_rates,
        group_size=group_size,
        topology=topology,
        dh_group=dh_group,
        engine=engine,
        repeats=repeats,
        seed=seed,
        stall_timeout_ms=stall_timeout_ms,
        max_events=max_events,
        trace=trace_events is not None,
    )
    results = run_cells(
        cells,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        metrics=metrics,
        progress=progress,
    )
    out: List[ChaosCell] = []
    for result in results:
        out.append(ChaosCell.from_dict(result["cell"]))
        if trace_events is not None and result.get("trace_events"):
            trace_events.extend(result["trace_events"])
    return out


def chaos_payload(cells: Sequence[ChaosCell], **meta) -> dict:
    """The BENCH_chaos.json payload: run metadata + serialized cells."""
    payload = {"benchmark": "chaos"}
    payload.update(meta)
    payload["cells"] = [cell.to_dict() for cell in cells]
    return payload


def write_chaos_json(path: str, cells: Sequence[ChaosCell], **meta) -> dict:
    payload = chaos_payload(cells, **meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def render_chaos_table(cells: Sequence[ChaosCell]) -> str:
    """One row per (protocol, drop rate): convergence and recovery cost."""
    lines = [
        "rekeying under injected link faults",
        (
            f"{'protocol':>8s} {'drop':>6s} {'ok':>5s} {'stalls':>7s} "
            f"{'restarts':>9s} {'drops':>7s} {'retries':>8s} {'to-key ms':>10s}"
        ),
    ]
    for cell in cells:
        to_key = (
            f"{cell.time_to_key_ms:10.1f}"
            if cell.time_to_key_ms is not None
            else f"{'-':>10s}"
        )
        lines.append(
            f"{cell.protocol:>8s} {cell.drop_rate:6.2f} "
            f"{cell.converged:2d}/{cell.samples:<2d} {cell.stalls:7d} "
            f"{cell.restarts:9d} {cell.fault_drops:7d} "
            f"{cell.fault_retries:8d} {to_key}"
        )
    return "\n".join(lines)
