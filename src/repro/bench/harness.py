"""Measurement of single membership events on the full simulated stack.

Reproduces the paper's experimental procedure (§6): members are uniformly
distributed over the testbed machines, the group is grown by sequential
joins, and the reported number is the *total elapsed time* from the
membership event to the moment the last member is notified of the new key
— averaged over several events, with the per-protocol conventions the
paper describes in §6.1.2 (CKD's controller-leave weighting, STR's
middle-member leave, TGDH measured on the tree its own heuristic builds).

An experiment cell is described by an :class:`ExperimentSpec` and run with
:func:`run_experiment`; :func:`measure_event` remains as a thin
backward-compatible wrapper over the old positional surface.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Callable, List, Optional, Union

from repro.core.framework import SecureSpreadFramework
from repro.crypto.engine import CryptoEngine
from repro.gcs.messages import View, ViewEvent
from repro.gcs.topology import TESTBEDS, Topology
from repro.obs.report import epoch_breakdown

#: event budget for large-n runs (the simulator default is sized for the
#: paper's n ≤ 50 sweeps; a 1000-member rekey legitimately needs millions
#: of deliveries).
LARGE_RUN_MAX_EVENTS = 50_000_000


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one experiment cell.

    ``topology`` is a testbed name (``"lan"``, ``"wan"``,
    ``"medium-wan"``) or a zero-argument factory returning a
    :class:`~repro.gcs.topology.Topology`.  ``engine`` is a crypto engine
    spec (``None``/``"real"``/``"symbolic"``/``"real:<backend>"`` or an
    instance, see :func:`repro.crypto.engine.get_engine`).
    ``shard_jobs`` shards each rekey epoch's member crypto across that
    many worker processes (real engine only; 0 disables) — a pure
    wall-clock optimization, bit-identical simulated results (see
    :mod:`repro.crypto.parallel`).
    """

    protocol: str
    event: str
    group_size: int
    dh_group: str = "dh-512"
    topology: Union[str, Callable[[], Topology]] = "lan"
    repeats: int = 2
    seed: int = 0
    breakdown: bool = False
    engine: Union[None, str, CryptoEngine] = None
    shard_jobs: int = 0

    def __post_init__(self):
        if self.event not in ("join", "leave"):
            raise ValueError("event must be 'join' or 'leave'")
        if self.group_size < 1:
            raise ValueError("group_size must be at least 1")
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")
        if isinstance(self.topology, str) and self.topology not in TESTBEDS:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {sorted(TESTBEDS)} or pass a factory"
            )

    def topology_factory(self) -> Callable[[], Topology]:
        if callable(self.topology):
            return self.topology
        return TESTBEDS[self.topology]

    def build_framework(self, observe: Optional[bool] = None) -> SecureSpreadFramework:
        """A fresh framework configured for this cell."""
        engine = self.engine
        if self.shard_jobs:
            from repro.crypto.engine import sharded_engine

            engine = sharded_engine(engine, self.shard_jobs)
        return SecureSpreadFramework(
            self.topology_factory()(),
            default_protocol=self.protocol,
            dh_group=self.dh_group,
            seed=self.seed,
            observe=self.breakdown if observe is None else observe,
            engine=engine,
        )


@dataclass
class EventMeasurement:
    """Averaged timings for one experiment cell.

    ``communication_ms`` and ``computation_ms`` are the span-based phase
    attribution (averaged like the totals); they are ``None`` unless the
    measurement ran with ``breakdown=True``.  When present,
    ``membership_ms + communication_ms + computation_ms == total_ms``
    (each sample reconciles exactly; averaging preserves the identity).

    ``ops`` optionally carries the summed operation-ledger charges of
    the measured event(s) — exponentiations, multiplications, signatures,
    verifications across all members, totalled over the samples.  The
    counts are exact integers (never averaged) so regression gating can
    compare them bit-for-bit; the scale benchmark fills them in.
    """

    protocol: str
    event: str
    group_size: int
    dh_group: str
    topology: str
    total_ms: float
    membership_ms: float
    samples: int
    communication_ms: Optional[float] = None
    computation_ms: Optional[float] = None
    engine: str = "real"
    ops: Optional[dict] = None

    @property
    def key_agreement_ms(self) -> float:
        return self.total_ms - self.membership_ms

    def to_dict(self) -> dict:
        """A JSON-ready dict — the single serialization for all outputs."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventMeasurement":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def _fresh_framework(
    topology_factory: Callable[[], Topology],
    protocol: str,
    dh_group: str,
    seed: int,
    observe: bool = False,
    engine=None,
    trace: bool = False,
) -> SecureSpreadFramework:
    return SecureSpreadFramework(
        topology_factory(),
        default_protocol=protocol,
        dh_group=dh_group,
        seed=seed,
        observe=observe,
        engine=engine,
        trace=trace,
    )


def grow_group(
    framework: SecureSpreadFramework, size: int, start: int = 0, prefix: str = "m"
) -> List:
    """Grow the group to ``size`` members by sequential (settled) joins."""
    members = []
    machines = len(framework.world.topology.machines)
    for index in range(start, size):
        member = framework.member(f"{prefix}{index}", index % machines)
        member.join()
        framework.run_until_idle()
        members.append(member)
    return members


def grow_group_batched(
    framework: SecureSpreadFramework,
    size: int,
    start: int = 0,
    prefix: str = "m",
    existing: Optional[List] = None,
    group_name: str = "secure-group",
    max_events: int = LARGE_RUN_MAX_EVENTS,
    machine_of: Optional[Callable[[int], int]] = None,
) -> List:
    """Grow the group to ``size`` members with a *single* rekey.

    :func:`grow_group` re-runs a full key agreement after every join —
    O(n²) event churn that dominates large-n setup.  Here every member
    defers rekeying while all joins flow through the membership service,
    then one synthetic merge view (newcomers = everything beyond the
    settled base) drives a single agreement over the final membership.
    The resulting membership view is asserted identical to what
    sequential growth settles on.

    ``existing`` is the list of members already in the group (defaults to
    every member created for ``group_name``); returns the new members,
    like :func:`grow_group`.  ``machine_of`` overrides the default
    ``index % machines`` placement — the workload engine uses it to
    stagger many groups across the testbed instead of piling every
    group's member 0 onto machine 0.
    """
    if existing is None:
        existing = framework.members_of(group_name)
    base_names = {member.name for member in existing}
    machines = len(framework.world.topology.machines)
    if machine_of is None:
        def machine_of(index: int) -> int:
            return index % machines
    joiners = [
        framework.member(f"{prefix}{index}", machine_of(index), group_name)
        for index in range(start, size)
    ]
    if not joiners:
        return []
    everyone = list(existing) + joiners
    for member in everyone:
        member.defer_rekey = True
    for member in joiners:
        member.join()
    framework.run_until_idle(max_events=max_events)
    final = max(
        (m._deferred_view for m in everyone if m._deferred_view is not None),
        key=lambda view: view.view_id,
        default=None,
    )
    expected = base_names | {member.name for member in joiners}
    if final is None or set(final.members) != expected:
        raise AssertionError(
            "batched growth did not settle on the expected membership"
        )
    joined = tuple(name for name in final.members if name not in base_names)
    rekey_view = View(
        view_id=final.view_id,
        group=final.group,
        members=final.members,
        event=ViewEvent.MERGE if len(joined) > 1 else ViewEvent.JOIN,
        joined=joined,
        left=(),
    )
    for member in everyone:
        member.defer_rekey = False
        member._deferred_view = None
    for member in everyone:
        member.flush_deferred(rekey_view)
    framework.run_until_idle(max_events=max_events)
    for member in everyone:
        view = member.protocol.view
        if view is None or view.members != final.members:
            raise AssertionError(
                f"{member.name} settled on a different membership view"
            )
        if not member.protocol.done_for(view):
            raise AssertionError(f"{member.name} did not key the grown group")
    return joiners


def run_experiment(spec: ExperimentSpec) -> EventMeasurement:
    """Average elapsed time for one :class:`ExperimentSpec` cell.

    Each repeat performs the event on a settled group of exactly
    ``spec.group_size`` members and restores the size afterwards.

    With ``breakdown=True`` the framework runs with observability enabled
    and the measurement also carries the averaged span-based
    communication/computation attribution (the paper's §6 decomposition).
    Observability is passive, so the timing numbers are identical either
    way.
    """
    framework = spec.build_framework()
    members = grow_group(framework, spec.group_size)
    totals: List[float] = []
    memberships: List[float] = []
    comms: List[float] = []
    computs: List[float] = []
    extra_index = 0
    for repeat in range(spec.repeats):
        if spec.event == "join":
            extra_index += 1
            joiner = framework.member(
                f"x{extra_index}",
                (spec.group_size + extra_index)
                % len(framework.world.topology.machines),
            )
            framework.mark_event()
            joiner.join()
            framework.run_until_idle()
            record = framework.timeline.latest_complete()
            totals.append(record.total_elapsed())
            memberships.append(record.membership_elapsed())
            if spec.breakdown:
                phases = epoch_breakdown(record, framework.obs.spans)
                comms.append(phases.communication_ms)
                computs.append(phases.computation_ms)
            joiner.leave()  # restore the size (unmeasured)
            framework.run_until_idle()
        else:
            total, membership, comm, comput = _measure_leave(
                framework, members, spec.protocol
            )
            totals.append(total)
            memberships.append(membership)
            if spec.breakdown:
                comms.append(comm)
                computs.append(comput)
    return EventMeasurement(
        protocol=spec.protocol,
        event=spec.event,
        group_size=spec.group_size,
        dh_group=spec.dh_group,
        topology=framework.world.topology.name,
        total_ms=sum(totals) / len(totals),
        membership_ms=sum(memberships) / len(memberships),
        samples=spec.repeats,
        communication_ms=sum(comms) / len(comms) if comms else None,
        computation_ms=sum(computs) / len(computs) if computs else None,
        engine=framework.engine.name,
    )


def measure_event(
    topology_factory: Callable[[], Topology],
    protocol: str,
    group_size: int,
    event: str,
    dh_group: str = "dh-512",
    repeats: int = 2,
    seed: int = 0,
    breakdown: bool = False,
    engine=None,
) -> EventMeasurement:
    """Backward-compatible wrapper: build an :class:`ExperimentSpec` and
    run it (the old positional-kwarg surface, kept for existing callers).

    .. deprecated::
        Build an :class:`ExperimentSpec` and call :func:`run_experiment`
        instead; the spec form names every parameter and serializes.
    """
    warnings.warn(
        "measure_event is deprecated; build an ExperimentSpec and call "
        "run_experiment instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_experiment(
        ExperimentSpec(
            protocol=protocol,
            event=event,
            group_size=group_size,
            dh_group=dh_group,
            topology=topology_factory,
            repeats=repeats,
            seed=seed,
            breakdown=breakdown,
            engine=engine,
        )
    )


def _leave_and_time(framework, member):
    framework.mark_event()
    member.leave()
    framework.run_until_idle()
    record = framework.timeline.latest_complete()
    return record.total_elapsed(), record.membership_elapsed(), record


def _rejoin(framework, member):
    """Re-admit a member that left, replacing its protocol instance."""
    fresh = framework.member(
        member.name + "'",
        framework.world.topology.machines.index(member.machine),
        member.group_name,
    )
    fresh.join()
    framework.run_until_idle()
    return fresh


def _measure_leave(framework, members: List, protocol: str):
    """One leave sample, honoring the paper's §6.1.2 conventions.

    Returns ``(total, membership, communication, computation)``; the phase
    attribution entries are ``None`` unless the framework runs with
    observability enabled.  CKD's controller-leave weighting is applied to
    the phase attribution exactly as to the totals.
    """
    n = len(members)
    if protocol == "STR":
        victim_index = n // 2  # the middle of the STR stack
    elif protocol == "CKD":
        victim_index = n // 2  # non-controller case; weighted below
    else:
        victim_index = n // 2
    victim = members[victim_index]
    total, membership, record = _leave_and_time(framework, victim)
    comm, comput = _phases_of(framework, record)
    members[victim_index] = _rejoin(framework, victim)
    if protocol == "CKD":
        # Weight in the controller-leave case with probability 1/n: the
        # departing controller forces full channel re-establishment.
        controller = members[0]
        ctrl_total, ctrl_membership, ctrl_record = _leave_and_time(
            framework, controller
        )
        ctrl_comm, ctrl_comput = _phases_of(framework, ctrl_record)
        replacement = _rejoin(framework, controller)
        members.pop(0)
        members.append(replacement)
        total = (1 - 1 / n) * total + (1 / n) * ctrl_total
        membership = (1 - 1 / n) * membership + (1 / n) * ctrl_membership
        if comm is not None:
            comm = (1 - 1 / n) * comm + (1 / n) * ctrl_comm
            comput = (1 - 1 / n) * comput + (1 / n) * ctrl_comput
    return total, membership, comm, comput


def _phases_of(framework, record):
    """Span-based (communication, computation) for one epoch record, or
    ``(None, None)`` when observability is off."""
    if not framework.obs.enabled:
        return None, None
    phases = epoch_breakdown(record, framework.obs.spans)
    return phases.communication_ms, phases.computation_ms
