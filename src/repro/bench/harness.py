"""Measurement of single membership events on the full simulated stack.

Reproduces the paper's experimental procedure (§6): members are uniformly
distributed over the testbed machines, the group is grown by sequential
joins, and the reported number is the *total elapsed time* from the
membership event to the moment the last member is notified of the new key
— averaged over several events, with the per-protocol conventions the
paper describes in §6.1.2 (CKD's controller-leave weighting, STR's
middle-member leave, TGDH measured on the tree its own heuristic builds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import Topology
from repro.obs.report import epoch_breakdown


@dataclass
class EventMeasurement:
    """Averaged timings for one experiment cell.

    ``communication_ms`` and ``computation_ms`` are the span-based phase
    attribution (averaged like the totals); they are ``None`` unless the
    measurement ran with ``breakdown=True``.  When present,
    ``membership_ms + communication_ms + computation_ms == total_ms``
    (each sample reconciles exactly; averaging preserves the identity).
    """

    protocol: str
    event: str
    group_size: int
    dh_group: str
    topology: str
    total_ms: float
    membership_ms: float
    samples: int
    communication_ms: Optional[float] = None
    computation_ms: Optional[float] = None

    @property
    def key_agreement_ms(self) -> float:
        return self.total_ms - self.membership_ms


def _fresh_framework(
    topology_factory: Callable[[], Topology],
    protocol: str,
    dh_group: str,
    seed: int,
    observe: bool = False,
) -> SecureSpreadFramework:
    return SecureSpreadFramework(
        topology_factory(),
        default_protocol=protocol,
        dh_group=dh_group,
        seed=seed,
        observe=observe,
    )


def grow_group(
    framework: SecureSpreadFramework, size: int, start: int = 0, prefix: str = "m"
) -> List:
    """Grow the group to ``size`` members by sequential (settled) joins."""
    members = []
    machines = len(framework.world.topology.machines)
    for index in range(start, size):
        member = framework.member(f"{prefix}{index}", index % machines)
        member.join()
        framework.run_until_idle()
        members.append(member)
    return members


def measure_event(
    topology_factory: Callable[[], Topology],
    protocol: str,
    group_size: int,
    event: str,
    dh_group: str = "dh-512",
    repeats: int = 2,
    seed: int = 0,
    breakdown: bool = False,
) -> EventMeasurement:
    """Average elapsed time for ``event`` at ``group_size`` members.

    ``event`` is ``"join"`` or ``"leave"`` (the two events the paper
    measures); each repeat performs the event on a settled group of
    exactly ``group_size`` members and restores the size afterwards.

    With ``breakdown=True`` the framework runs with observability enabled
    and the measurement also carries the averaged span-based
    communication/computation attribution (the paper's §6 decomposition).
    Observability is passive, so the timing numbers are identical either
    way.
    """
    if event not in ("join", "leave"):
        raise ValueError("event must be 'join' or 'leave'")
    framework = _fresh_framework(
        topology_factory, protocol, dh_group, seed, observe=breakdown
    )
    members = grow_group(framework, group_size)
    totals: List[float] = []
    memberships: List[float] = []
    comms: List[float] = []
    computs: List[float] = []
    extra_index = 0
    for repeat in range(repeats):
        if event == "join":
            extra_index += 1
            joiner = framework.member(
                f"x{extra_index}",
                (group_size + extra_index) % len(framework.world.topology.machines),
            )
            framework.mark_event()
            joiner.join()
            framework.run_until_idle()
            record = framework.timeline.latest_complete()
            totals.append(record.total_elapsed())
            memberships.append(record.membership_elapsed())
            if breakdown:
                phases = epoch_breakdown(record, framework.obs.spans)
                comms.append(phases.communication_ms)
                computs.append(phases.computation_ms)
            joiner.leave()  # restore the size (unmeasured)
            framework.run_until_idle()
        else:
            total, membership, comm, comput = _measure_leave(
                framework, members, protocol
            )
            totals.append(total)
            memberships.append(membership)
            if breakdown:
                comms.append(comm)
                computs.append(comput)
    return EventMeasurement(
        protocol=protocol,
        event=event,
        group_size=group_size,
        dh_group=dh_group,
        topology=framework.world.topology.name,
        total_ms=sum(totals) / len(totals),
        membership_ms=sum(memberships) / len(memberships),
        samples=repeats,
        communication_ms=sum(comms) / len(comms) if comms else None,
        computation_ms=sum(computs) / len(computs) if computs else None,
    )


def _leave_and_time(framework, member):
    framework.mark_event()
    member.leave()
    framework.run_until_idle()
    record = framework.timeline.latest_complete()
    return record.total_elapsed(), record.membership_elapsed(), record


def _rejoin(framework, member):
    """Re-admit a member that left, replacing its protocol instance."""
    fresh = framework.member(
        member.name + "'",
        framework.world.topology.machines.index(member.machine),
        member.group_name,
    )
    fresh.join()
    framework.run_until_idle()
    return fresh


def _measure_leave(framework, members: List, protocol: str):
    """One leave sample, honoring the paper's §6.1.2 conventions.

    Returns ``(total, membership, communication, computation)``; the phase
    attribution entries are ``None`` unless the framework runs with
    observability enabled.  CKD's controller-leave weighting is applied to
    the phase attribution exactly as to the totals.
    """
    n = len(members)
    if protocol == "STR":
        victim_index = n // 2  # the middle of the STR stack
    elif protocol == "CKD":
        victim_index = n // 2  # non-controller case; weighted below
    else:
        victim_index = n // 2
    victim = members[victim_index]
    total, membership, record = _leave_and_time(framework, victim)
    comm, comput = _phases_of(framework, record)
    members[victim_index] = _rejoin(framework, victim)
    if protocol == "CKD":
        # Weight in the controller-leave case with probability 1/n: the
        # departing controller forces full channel re-establishment.
        controller = members[0]
        ctrl_total, ctrl_membership, ctrl_record = _leave_and_time(
            framework, controller
        )
        ctrl_comm, ctrl_comput = _phases_of(framework, ctrl_record)
        replacement = _rejoin(framework, controller)
        members.pop(0)
        members.append(replacement)
        total = (1 - 1 / n) * total + (1 / n) * ctrl_total
        membership = (1 - 1 / n) * membership + (1 / n) * ctrl_membership
        if comm is not None:
            comm = (1 - 1 / n) * comm + (1 / n) * ctrl_comm
            comput = (1 - 1 / n) * comput + (1 / n) * ctrl_comput
    return total, membership, comm, comput


def _phases_of(framework, record):
    """Span-based (communication, computation) for one epoch record, or
    ``(None, None)`` when observability is off."""
    if not framework.obs.enabled:
        return None, None
    phases = epoch_breakdown(record, framework.obs.spans)
    return phases.communication_ms, phases.computation_ms
