"""Cell-by-cell diff of two benchmark JSON artifacts (``bench compare``).

Because the simulator is deterministic (same seed + spec ⇒ bit-identical
simulated times and ledger charges), two runs of the same sweep on the
same source tree must agree *exactly* — so the regression gate defaults
to zero tolerance, and any drift in a simulated time, an op-ledger
count, or a completion rate is a real behavioral change, not noise.  A
deliberate change refreshes the committed baseline instead of widening a
threshold.

Payload cells (``measurements`` for scale/figure artifacts, ``cells``
for chaos) are matched by their identity fields (protocol, event, group
size, drop rate, topology, DH group); every remaining field is compared
— numbers within ``tolerance + relative * |old|`` (both default 0),
everything else for equality, nested dicts such as the op-ledger counts
recursively.  Missing or extra cells and top-level metadata changes are
drift too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

#: Fields that *identify* a cell rather than measure it.
IDENTITY_FIELDS = (
    "protocol",
    "event",
    "group_size",
    "drop_rate",
    "topology",
    "dh_group",
)

#: Top-level payload keys that describe the run and must match for the
#: comparison to be meaningful at all.
META_FIELDS = ("benchmark", "engine", "seed", "repeats")


def load_payload(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: benchmark payload must be a JSON object")
    return payload


def payload_cells(payload: dict) -> List[dict]:
    """The list of cell dicts, whatever the benchmark kind calls it."""
    for key in ("measurements", "cells"):
        rows = payload.get(key)
        if isinstance(rows, list):
            return rows
    raise ValueError(
        "payload has neither a 'measurements' nor a 'cells' list"
    )


def cell_identity(row: dict) -> Tuple[Tuple[str, Any], ...]:
    return tuple(
        (name, row[name]) for name in IDENTITY_FIELDS if name in row
    )


def _identity_label(identity: Tuple[Tuple[str, Any], ...]) -> str:
    if not identity:
        return "<cell>"
    return " ".join(f"{name}={value}" for name, value in identity)


def _numbers(a: Any, b: Any) -> bool:
    return (
        isinstance(a, (int, float))
        and isinstance(b, (int, float))
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    )


def _diff_value(
    path: str,
    old: Any,
    new: Any,
    tolerance: float,
    relative: float,
    drifts: List[str],
) -> None:
    if _numbers(old, new):
        allowed = tolerance + relative * abs(old)
        if abs(new - old) > allowed:
            drifts.append(
                f"{path}: {old!r} -> {new!r} "
                f"(|Δ|={abs(new - old):g}, allowed {allowed:g})"
            )
    elif isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            if key not in old:
                drifts.append(f"{path}.{key}: missing in OLD, new={new[key]!r}")
            elif key not in new:
                drifts.append(f"{path}.{key}: missing in NEW, old={old[key]!r}")
            else:
                _diff_value(
                    f"{path}.{key}", old[key], new[key],
                    tolerance, relative, drifts,
                )
    elif old != new:
        drifts.append(f"{path}: {old!r} -> {new!r}")


def compare_payloads(
    old: dict,
    new: dict,
    tolerance: float = 0.0,
    relative: float = 0.0,
) -> List[str]:
    """Every drift between two payloads, as human-readable lines.

    An empty list means the artifacts agree within tolerance (exactly,
    by default).
    """
    drifts: List[str] = []
    for name in META_FIELDS:
        if old.get(name) != new.get(name):
            drifts.append(
                f"meta.{name}: {old.get(name)!r} -> {new.get(name)!r}"
            )
    try:
        old_rows, new_rows = payload_cells(old), payload_cells(new)
    except ValueError as error:
        drifts.append(str(error))
        return drifts

    def indexed(rows: List[dict]) -> Dict[Tuple, dict]:
        index: Dict[Tuple, dict] = {}
        for position, row in enumerate(rows):
            identity = cell_identity(row)
            # Duplicate identities (repeated cells) stay distinct by rank.
            while identity in index:
                identity = identity + (("#", position),)
            index[identity] = row
        return index

    old_index, new_index = indexed(old_rows), indexed(new_rows)
    for identity in old_index:
        if identity not in new_index:
            drifts.append(f"{_identity_label(identity)}: missing in NEW")
    for identity in new_index:
        if identity not in old_index:
            drifts.append(f"{_identity_label(identity)}: missing in OLD")
    for identity, old_row in old_index.items():
        new_row = new_index.get(identity)
        if new_row is None:
            continue
        label = _identity_label(identity)
        skip = {name for name, _ in identity}
        for key in sorted(set(old_row) | set(new_row)):
            if key in skip:
                continue
            if key not in old_row:
                drifts.append(
                    f"{label}.{key}: missing in OLD, new={new_row[key]!r}"
                )
            elif key not in new_row:
                drifts.append(
                    f"{label}.{key}: missing in NEW, old={old_row[key]!r}"
                )
            else:
                _diff_value(
                    f"{label}.{key}", old_row[key], new_row[key],
                    tolerance, relative, drifts,
                )
    return drifts


def compare_files(
    old_path: str,
    new_path: str,
    tolerance: float = 0.0,
    relative: float = 0.0,
) -> List[str]:
    """:func:`compare_payloads` over two files on disk."""
    return compare_payloads(
        load_payload(old_path),
        load_payload(new_path),
        tolerance=tolerance,
        relative=relative,
    )
