"""Rendering of figure series as terminal tables and CSV."""

from __future__ import annotations

import os
from typing import Optional

from repro.bench.series import FigureSeries


def render_series(series: FigureSeries, title: Optional[str] = None) -> str:
    """An aligned table: one row per group size, one column per protocol."""
    protocols = sorted(series.curves)
    header = f"{'n':>4s} " + " ".join(f"{p:>9s}" for p in protocols) + f" {'Membship':>9s}"
    lines = [
        title
        or (
            f"{series.name}: {series.event} on {series.topology}, "
            f"{series.dh_group} (total elapsed ms)"
        ),
        header,
        "-" * len(header),
    ]
    for index, size in enumerate(series.sizes):
        cells = " ".join(
            f"{series.curves[p][index]:9.1f}" for p in protocols
        )
        lines.append(f"{size:4d} {cells} {series.membership[index]:9.1f}")
    return "\n".join(lines)


def series_to_csv(series: FigureSeries, path: str) -> None:
    """Write the series as CSV (columns: size, each protocol, membership)."""
    protocols = sorted(series.curves)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write("group_size," + ",".join(protocols) + ",membership\n")
        for index, size in enumerate(series.sizes):
            row = [str(size)]
            row += [f"{series.curves[p][index]:.3f}" for p in protocols]
            row.append(f"{series.membership[index]:.3f}")
            handle.write(",".join(row) + "\n")
