"""Self-profiling benchmark: ``python -m repro.bench profile``.

The cross-layer hot-path optimizations (CHANGES.md PR 5) promise real
wall-clock speedups that *cannot* change simulated results — ledger
charges and the virtual clock are independent of host time.  This
subcommand is the proof and the tripwire:

* it runs a **fixed micro-sweep** (one real-engine join+leave cell per
  protocol at one group size) twice — once plain, timed with
  ``time.perf_counter`` and phase-attributed (grow / measured join /
  measured leave) through a :class:`~repro.obs.MetricsRegistry`, and
  once under :mod:`cProfile` for a hot-function table;
* it emits ``BENCH_profile.json`` (hot-function tables + wall-clock
  phase attribution per protocol) and ``BENCH_wallclock.json`` (the
  micro-sweep's wall-clock totals against the committed pre-optimization
  baseline, with a speedup factor and a simulated-time identity check);
* future PRs re-run it against the same committed baseline, so a
  wall-clock regression — or worse, a simulated-time drift — fails
  loudly instead of rotting silently.

The committed baseline (``benchmarks/results/wallclock_baseline.json``)
records the sweep measured at the pre-optimization tree; its
``sim``-field values double as the identity oracle, because simulated
times are deterministic and engine-independent by construction.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import LARGE_RUN_MAX_EVENTS, ExperimentSpec, _rejoin
from repro.bench.harness import grow_group_batched
from repro.bench.scale import SCALE_PROTOCOLS
from repro.obs.metrics import MetricsRegistry

#: The fixed micro-sweep: one cell per protocol, real engine, LAN, DH-512.
PROFILE_SIZE = 256
PROFILE_PROTOCOLS = SCALE_PROTOCOLS
PROFILE_ENGINE = "real"

#: Default committed baseline the wall-clock artifact compares against.
DEFAULT_BASELINE = "benchmarks/results/wallclock_baseline.json"


def _timed_cell(
    spec: dict, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """One (protocol, size) join+leave cell with wall-clock attribution.

    Mirrors :func:`repro.bench.scale.run_scale_cell`'s measurement
    protocol exactly (same seed, same growth, same victim) so the
    simulated times are comparable with any scale sweep, but brackets
    each phase with ``perf_counter`` and records the host milliseconds
    into ``metrics`` as ``bench.profile.wall_ms`` histograms.
    """
    size = int(spec["group_size"])
    max_events = int(spec.get("max_events", LARGE_RUN_MAX_EVENTS))
    espec = ExperimentSpec(
        protocol=spec["protocol"],
        event="join",
        group_size=size,
        dh_group=spec.get("dh_group", "dh-512"),
        topology=spec.get("topology", "lan"),
        repeats=1,
        seed=int(spec.get("seed", 0)),
        engine=spec.get("engine", PROFILE_ENGINE),
        shard_jobs=int(spec.get("shard_jobs", 0)),
    )
    phases: Dict[str, float] = {}

    def clock(phase: str, started: float) -> float:
        elapsed = time.perf_counter() - started
        phases[phase] = phases.get(phase, 0.0) + elapsed
        if metrics is not None:
            metrics.histogram(
                "bench.profile.wall_ms",
                phase=phase, protocol=espec.protocol,
            ).observe(elapsed * 1000.0)
        return time.perf_counter()

    t = time.perf_counter()
    framework = espec.build_framework(observe=False)
    members = grow_group_batched(framework, size, max_events=max_events)
    machines = len(framework.world.topology.machines)
    t = clock("grow", t)
    joiner = framework.member("x1", (size + 1) % machines)
    framework.mark_event()
    joiner.join()
    framework.run_until_idle(max_events=max_events)
    join_record = framework.timeline.latest_complete()
    joiner.leave()  # restore the size (unmeasured)
    framework.run_until_idle(max_events=max_events)
    t = clock("join", t)
    victim_index = size // 2
    victim = members[victim_index]
    framework.mark_event()
    victim.leave()
    framework.run_until_idle(max_events=max_events)
    leave_record = framework.timeline.latest_complete()
    members[victim_index] = _rejoin(framework, victim)
    clock("leave", t)
    return {
        "protocol": espec.protocol,
        "group_size": size,
        "engine": framework.engine.name,
        "wall_s": round(sum(phases.values()), 4),
        "phases_wall_s": {k: round(v, 4) for k, v in phases.items()},
        "sim": {
            "join_total_ms": join_record.total_elapsed(),
            "leave_total_ms": leave_record.total_elapsed(),
        },
    }


def _hot_functions(stats: pstats.Stats, top: int) -> List[dict]:
    """The ``top`` hottest rows of a profile, by internal time."""
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )
    for (filename, lineno, name), (cc, nc, tottime, cumtime, _) in entries[:top]:
        where = f"{filename}:{lineno}" if lineno else filename
        rows.append(
            {
                "function": name,
                "where": where,
                "ncalls": nc,
                "tottime_s": round(tottime, 4),
                "cumtime_s": round(cumtime, 4),
            }
        )
    return rows


def profile_micro_sweep(
    protocols: Sequence[str] = PROFILE_PROTOCOLS,
    size: int = PROFILE_SIZE,
    engine: str = PROFILE_ENGINE,
    topology: str = "lan",
    dh_group: str = "dh-512",
    seed: int = 0,
    top: int = 15,
    with_profiler: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    progress=None,
    shard_jobs: int = 0,
) -> dict:
    """Run the fixed micro-sweep; return the profile document.

    The timed pass always runs (it is what ``BENCH_wallclock.json`` is
    built from); the cProfile pass is optional because the profiler
    roughly doubles the sweep's wall-clock.
    """
    cells: Dict[str, dict] = {}
    total = 0.0
    for protocol in protocols:
        spec = {
            "protocol": protocol,
            "group_size": size,
            "engine": engine,
            "topology": topology,
            "dh_group": dh_group,
            "seed": seed,
        }
        if shard_jobs:
            spec["shard_jobs"] = shard_jobs
        cell = _timed_cell(spec, metrics=metrics)
        total += cell["wall_s"]
        if with_profiler:
            profiler = cProfile.Profile()
            profiler.enable()
            _timed_cell(spec)
            profiler.disable()
            stats = pstats.Stats(profiler, stream=io.StringIO())
            cell["hot_functions"] = _hot_functions(stats, top)
        cells[protocol] = cell
        if progress is not None:
            progress(f"{protocol} n={size}: {cell['wall_s']:.2f}s wall")
    doc_spec = {
        "protocols": list(protocols),
        "group_size": size,
        "engine": engine,
        "topology": topology,
        "dh_group": dh_group,
        "seed": seed,
    }
    if shard_jobs:
        doc_spec["shard_jobs"] = shard_jobs
    return {
        "schema": "repro.bench.profile/1",
        "spec": doc_spec,
        "total_wall_s": round(total, 4),
        "cells": cells,
    }


def wallclock_document(
    profile_doc: dict,
    baseline: Optional[dict],
    max_wall_regression: Optional[float] = None,
) -> dict:
    """The wall-clock artifact: current sweep vs the committed baseline.

    ``sim_identical`` is the load-bearing field: wall-clock numbers vary
    with the host, but the simulated join/leave times of the same spec
    are deterministic — any mismatch means an optimization changed
    behaviour, which the whole PR-5 contract forbids.

    ``max_wall_regression`` optionally turns the wall-clock comparison
    into a (tolerant) gate: ``wall_ok`` is False when the current total
    exceeds ``baseline_total * max_wall_regression``.  The tolerance
    absorbs host variance; values below 1.0 *require* a speedup over
    the committed baseline (the CI trajectory gate runs at 0.6 against
    the pre-optimization baseline).
    """
    current = {
        "total_wall_s": profile_doc["total_wall_s"],
        "per_protocol": {
            name: {
                "wall_s": cell["wall_s"],
                "sim": cell["sim"],
            }
            for name, cell in profile_doc["cells"].items()
        },
    }
    document = {
        "schema": "repro.bench.wallclock/1",
        "spec": profile_doc["spec"],
        "current": current,
    }
    if baseline is not None:
        base_cells = baseline.get("per_protocol", {})
        comparable = [
            name for name in current["per_protocol"] if name in base_cells
        ]
        base_total = sum(base_cells[n]["wall_s"] for n in comparable)
        cur_total = sum(
            current["per_protocol"][n]["wall_s"] for n in comparable
        )
        identical = all(
            base_cells[n]["sim"] == current["per_protocol"][n]["sim"]
            for n in comparable
        )
        document["baseline"] = {
            "source": baseline.get("source", "?"),
            "total_wall_s": round(base_total, 4),
            "per_protocol": {n: base_cells[n] for n in comparable},
        }
        document["speedup"] = (
            round(base_total / cur_total, 2) if cur_total else None
        )
        document["sim_identical"] = identical
        if max_wall_regression is not None:
            ratio = (cur_total / base_total) if base_total else None
            document["wall_ratio"] = (
                round(ratio, 3) if ratio is not None else None
            )
            document["max_wall_regression"] = max_wall_regression
            document["wall_ok"] = (
                ratio is not None and ratio <= max_wall_regression
            )
    return document


def write_json(path: str, document: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_profile_table(profile_doc: dict, rows: int = 8) -> str:
    """A terminal summary: wall clock per cell plus its hottest functions."""
    lines = []
    spec = profile_doc["spec"]
    lines.append(
        f"micro-sweep: n={spec['group_size']} {spec['engine']} engine, "
        f"{spec['topology']}, {spec['dh_group']}, seed {spec['seed']}"
    )
    for name, cell in profile_doc["cells"].items():
        phases = cell["phases_wall_s"]
        attributed = ", ".join(
            f"{phase} {phases[phase]:.2f}s" for phase in ("grow", "join", "leave")
            if phase in phases
        )
        lines.append(f"  {name:<5} {cell['wall_s']:7.2f}s  ({attributed})")
        for row in cell.get("hot_functions", [])[:rows]:
            lines.append(
                f"      {row['tottime_s']:8.3f}s {row['ncalls']:>9}x  "
                f"{row['function']}  [{row['where']}]"
            )
    lines.append(f"total: {profile_doc['total_wall_s']:.2f}s")
    return "\n".join(lines)
