"""Group-size sweeps: the series behind Figures 11, 12 and 14.

A :class:`FigureSeries` holds, for each protocol, the elapsed-time curve
over group sizes, plus the membership-service baseline the paper plots
alongside.  Growth is incremental — the group is grown once per protocol
and measured at each sampled size — matching the paper's measurement loop
and keeping simulation time manageable.

Each measured cell is an :class:`~repro.bench.harness.EventMeasurement`,
so figure sweeps and the scale benchmark share one serialization path;
the curves are assembled from the measurements by
:meth:`FigureSeries.from_measurements`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import (
    EventMeasurement,
    _fresh_framework,
    _measure_leave,
    grow_group,
)
from repro.bench.pool import Cell, register_runner, run_cells
from repro.gcs.topology import TESTBEDS, Topology
from repro.obs.metrics import MetricsRegistry

#: The default group sizes sampled along the paper's 0-50 member x-axis.
DEFAULT_SIZES = (2, 4, 8, 13, 20, 26, 33, 40, 50)


@dataclass
class FigureSeries:
    """Elapsed-time curves for one (figure, DH size, event) combination."""

    name: str
    event: str
    dh_group: str
    topology: str
    sizes: List[int]
    #: protocol -> elapsed milliseconds per size
    curves: Dict[str, List[float]]
    #: membership-service baseline per size
    membership: List[float]
    #: the per-cell measurements the curves were assembled from (empty for
    #: hand-constructed series)
    measurements: List[EventMeasurement] = field(default_factory=list)

    @classmethod
    def from_measurements(
        cls,
        name: str,
        measurements: Sequence[EventMeasurement],
        sizes: Sequence[int],
    ) -> "FigureSeries":
        """Assemble curves from per-cell measurements.

        Measurements are expected in sweep order (protocol-major, sizes
        ascending within each protocol); the membership baseline takes the
        last measurement per size, matching the sweep's last-protocol-wins
        convention.
        """
        sizes = list(sizes)
        index_of = {size: position for position, size in enumerate(sizes)}
        curves: Dict[str, List[float]] = {}
        membership: List[float] = [0.0] * len(sizes)
        for m in measurements:
            position = index_of[m.group_size]
            curves.setdefault(m.protocol, [0.0] * len(sizes))[
                position
            ] = m.total_ms
            membership[position] = m.membership_ms
        first = measurements[0]
        return cls(
            name=name,
            event=first.event,
            dh_group=first.dh_group,
            topology=first.topology,
            sizes=sizes,
            curves=curves,
            membership=membership,
            measurements=list(measurements),
        )

    def to_dict(self) -> dict:
        """JSON-ready payload, cells serialized via ``EventMeasurement``."""
        return {
            "name": self.name,
            "event": self.event,
            "dh_group": self.dh_group,
            "topology": self.topology,
            "sizes": list(self.sizes),
            "measurements": [m.to_dict() for m in self.measurements],
        }

    def at(self, protocol: str, size: int) -> float:
        """The measured time of ``protocol`` at group size ``size``."""
        return self.curves[protocol][self.sizes.index(size)]

    def membership_at(self, size: int) -> float:
        return self.membership[self.sizes.index(size)]

    def winner(self, size: int) -> str:
        """The fastest protocol at a group size."""
        index = self.sizes.index(size)
        return min(self.curves, key=lambda proto: self.curves[proto][index])

    def loser(self, size: int) -> str:
        """The slowest protocol at a group size."""
        index = self.sizes.index(size)
        return max(self.curves, key=lambda proto: self.curves[proto][index])

    def crossover(self, cheap_small: str, cheap_large: str):
        """The sampled size interval where two curves swap order.

        Returns ``(last size where cheap_small wins, first size where
        cheap_large wins)`` — e.g. the paper's BD-vs-GDH crossover "around
        thirty members" — or None when the ordering never flips.
        """
        last_small_win = None
        for index, size in enumerate(self.sizes):
            a = self.curves[cheap_small][index]
            b = self.curves[cheap_large][index]
            if a < b:
                last_small_win = size
            elif last_small_win is not None:
                return (last_small_win, size)
        return None


def measure_protocol_curve(
    topology_factory: Callable[[], Topology],
    protocol: str,
    event: str,
    dh_group: str = "dh-512",
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 2,
    seed: int = 0,
    engine=None,
) -> List[EventMeasurement]:
    """One protocol's elapsed-time curve over group sizes.

    The group is grown incrementally on a single framework; at each
    sampled size the event is applied ``repeats`` times (size-restoring)
    and the total elapsed times averaged — exactly the paper's
    measurement loop.  This is the figure sweeps' unit of parallel work:
    curves for different protocols are independent, but the sizes within
    one curve share framework state and must stay sequential.
    """
    if event not in ("join", "leave"):
        raise ValueError("event must be 'join' or 'leave'")
    sizes = sorted(set(sizes))
    measurements: List[EventMeasurement] = []
    framework = _fresh_framework(
        topology_factory, protocol, dh_group, seed, engine=engine
    )
    members: List = []
    extra = 0
    for size in sizes:
        members += grow_group(framework, size, start=len(members))
        totals, memberships = [], []
        for _ in range(repeats):
            if event == "join":
                extra += 1
                joiner = framework.member(
                    f"x{extra}",
                    (size + extra) % len(framework.world.topology.machines),
                )
                framework.mark_event()
                joiner.join()
                framework.run_until_idle()
                record = framework.timeline.latest_complete()
                totals.append(record.total_elapsed())
                memberships.append(record.membership_elapsed())
                joiner.leave()
                framework.run_until_idle()
            else:
                total, membership, _, _ = _measure_leave(
                    framework, members, protocol
                )
                totals.append(total)
                memberships.append(membership)
        measurements.append(
            EventMeasurement(
                protocol=protocol,
                event=event,
                group_size=size,
                dh_group=dh_group,
                topology=framework.world.topology.name,
                total_ms=sum(totals) / len(totals),
                membership_ms=sum(memberships) / len(memberships),
                samples=repeats,
                engine=framework.engine.name,
            )
        )
    return measurements


@register_runner("figure")
def run_figure_cell(
    spec: dict, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """One figure cell: a single protocol's full size sweep.

    ``spec["topology"]`` must be a testbed *name* so the cell can be
    hashed and shipped to worker processes.  Returns
    ``{"measurements": [EventMeasurement dict, ...]}`` in size order.
    """
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    measurements = measure_protocol_curve(
        TESTBEDS[spec["topology"]],
        spec["protocol"],
        spec["event"],
        dh_group=spec.get("dh_group", "dh-512"),
        sizes=list(spec.get("sizes", DEFAULT_SIZES)),
        repeats=int(spec.get("repeats", 2)),
        seed=int(spec.get("seed", 0)),
        engine=spec.get("engine"),
    )
    registry.histogram(
        "bench.cell.sim_ms", kind="figure", protocol=spec["protocol"]
    ).observe(sum(m.total_ms for m in measurements))
    return {"measurements": [m.to_dict() for m in measurements]}


def sweep_group_sizes(
    topology_factory: Callable[[], Topology],
    protocols: Sequence[str],
    event: str,
    dh_group: str = "dh-512",
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 2,
    seed: int = 0,
    name: str = "",
    engine=None,
) -> FigureSeries:
    """Measure ``event`` for every protocol across group sizes.

    Sequential reference path: one protocol curve after another in the
    calling process (see :func:`sweep_group_sizes_parallel` for the
    pooled equivalent keyed by testbed name).
    """
    if event not in ("join", "leave"):
        raise ValueError("event must be 'join' or 'leave'")
    sizes = sorted(set(sizes))
    measurements: List[EventMeasurement] = []
    for protocol in protocols:
        measurements.extend(
            measure_protocol_curve(
                topology_factory,
                protocol,
                event,
                dh_group=dh_group,
                sizes=sizes,
                repeats=repeats,
                seed=seed,
                engine=engine,
            )
        )
    return FigureSeries.from_measurements(
        name or f"{event}-{dh_group}", measurements, sizes
    )


def figure_cells(
    topology: str,
    protocols: Sequence[str],
    event: str,
    dh_group: str = "dh-512",
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 2,
    seed: int = 0,
    engine=None,
) -> List[Cell]:
    """One pool cell per protocol curve, in protocol order."""
    sizes = sorted(set(sizes))
    cells: List[Cell] = []
    for protocol in protocols:
        spec = {
            "topology": topology,
            "protocol": protocol,
            "event": event,
            "dh_group": dh_group,
            "sizes": sizes,
            "repeats": repeats,
            "seed": seed,
            "engine": engine,
        }

        def summarize(result, protocol=protocol):
            largest = result["measurements"][-1]
            return (
                f"{protocol} {event} curve done "
                f"(n={largest['group_size']}: {largest['total_ms']:.1f} ms)"
            )

        cells.append(Cell("figure", spec, summarize=summarize))
    return cells


def sweep_group_sizes_parallel(
    topology: str,
    protocols: Sequence[str],
    event: str,
    dh_group: str = "dh-512",
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 2,
    seed: int = 0,
    name: str = "",
    engine=None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FigureSeries:
    """:func:`sweep_group_sizes` through the experiment pool.

    ``topology`` is a testbed *name* (the cell must serialize); each
    protocol curve is one cell, so the assembled series is identical to
    the sequential sweep for any ``jobs``.  An engine instance forces
    the inline uncached path.
    """
    if event not in ("join", "leave"):
        raise ValueError("event must be 'join' or 'leave'")
    if not (engine is None or isinstance(engine, str)):
        jobs, cache_dir, use_cache = 1, None, False
    sizes = sorted(set(sizes))
    cells = figure_cells(
        topology,
        protocols,
        event,
        dh_group=dh_group,
        sizes=sizes,
        repeats=repeats,
        seed=seed,
        engine=engine,
    )
    results = run_cells(
        cells,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        metrics=metrics,
        progress=progress,
    )
    measurements = [
        EventMeasurement.from_dict(cell_dict)
        for result in results
        for cell_dict in result["measurements"]
    ]
    return FigureSeries.from_measurements(
        name or f"{event}-{dh_group}", measurements, sizes
    )
