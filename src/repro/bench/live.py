"""``bench live``: real wall-clock rekey latency on localhost TCP.

Runs the same scenario twice:

1. **simulated** — the paper's LAN testbed in virtual time (the
   prediction): grow a settled group of *n*, measure one join and one
   middle-member leave;
2. **live** — :class:`~repro.net.runner.LiveGroupRunner` drives the
   identical scenario over a real :class:`~repro.net.daemon.NetDaemon`
   and TCP sockets, measuring wall-clock time on the same
   :class:`~repro.core.timing.RekeyTimeline` and the same
   ``member.rekey_ms`` log-histogram substrate.

The two halves land side by side in ``BENCH_live.json`` so the live
numbers can be sanity-checked against the simulator's virtual-time
prediction.  They are *not* expected to match exactly — the simulator
models thirteen dual-CPU Pentium III machines, the live run multiplexes
every member onto this host's event loop — but both follow the same
protocol message flow, so gross disagreement (a deadlock, a quadratic
blowup) is immediately visible.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.bench.harness import grow_group
from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import TESTBEDS
from repro.net.runner import DEFAULT_MACHINES, LiveGroupRunner
from repro.obs.histo import render_percentiles

SCHEMA = "bench-live/v1"


def _epoch_stats(framework: SecureSpreadFramework) -> Dict:
    record = framework.timeline.latest_complete()
    return {
        "total_ms": record.total_elapsed(),
        "membership_ms": record.membership_elapsed(),
        "key_agreement_ms": record.key_agreement_elapsed(),
        "members": len(record.members),
    }


def simulate_prediction(
    protocol: str,
    size: int,
    dh_group: str = "dh-512",
    engine=None,
    seed: int = 0,
    topology: str = "lan",
) -> Dict:
    """The virtual-time prediction for the live scenario.

    Mirrors :meth:`~repro.net.runner.LiveGroupRunner.run` step for step:
    sequential growth to ``size``, a measured join of ``x1`` on machine
    ``size % machines``, an unmeasured restore leave, then a measured
    leave of member ``size // 2``.
    """
    framework = SecureSpreadFramework(
        TESTBEDS[topology](),
        default_protocol=protocol,
        dh_group=dh_group,
        seed=seed,
        observe=True,
        engine=engine,
    )
    members = grow_group(framework, size)
    machines = framework.transport.machine_count()
    joiner = framework.member("x1", size % machines)
    framework.mark_event()
    joiner.join()
    framework.run_until_idle()
    join_stats = _epoch_stats(framework)
    joiner.leave()
    framework.run_until_idle()
    victim = members[size // 2]
    framework.mark_event()
    victim.leave()
    framework.run_until_idle()
    leave_stats = _epoch_stats(framework)
    rekey = framework.obs.log_histogram(
        "member.rekey_ms", group="secure-group", protocol=protocol
    )
    return {
        "topology": framework.world.topology.name,
        "join": join_stats,
        "leave": leave_stats,
        "rekey_ms": {
            "count": rekey.count,
            "mean": rekey.mean,
            "max": rekey.max,
            **rekey.percentiles(),
        },
    }


def run_live_benchmark(
    protocol: str = "TGDH",
    size: int = 8,
    dh_group: str = "dh-512",
    engine=None,
    seed: int = 0,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    daemon_mode: str = "spawn",
    machines: int = DEFAULT_MACHINES,
    timeout_s: float = 60.0,
    progress=None,
) -> Dict:
    """Run both halves and assemble the ``BENCH_live.json`` document."""
    protocol = protocol.upper()
    if progress:
        progress(f"simulating {protocol} n={size} (virtual-time prediction)")
    simulated = simulate_prediction(
        protocol, size, dh_group=dh_group, engine=engine, seed=seed
    )
    if progress:
        progress(
            f"running live {protocol} n={size} over TCP "
            f"({daemon_mode} daemon on {host})"
        )
    runner = LiveGroupRunner(
        protocol=protocol,
        size=size,
        dh_group=dh_group,
        engine=engine,
        seed=seed,
        host=host,
        port=port,
        daemon_mode=daemon_mode,
        machines=machines,
        timeout_s=timeout_s,
    )
    live = asyncio.run(runner.run())
    document = {
        "schema": SCHEMA,
        "spec": {
            "protocol": protocol,
            "group_size": size,
            "dh_group": dh_group,
            "engine": live["engine"],
            "seed": seed,
            "daemon_mode": daemon_mode,
            "machines": machines,
        },
        "simulated": simulated,
        "live": live,
        "cross_validation": {
            "join_live_over_sim": _ratio(
                live["join"]["total_ms"], simulated["join"]["total_ms"]
            ),
            "leave_live_over_sim": _ratio(
                live["leave"]["total_ms"], simulated["leave"]["total_ms"]
            ),
        },
    }
    return document


def _ratio(live_ms: float, sim_ms: float) -> Optional[float]:
    return live_ms / sim_ms if sim_ms > 0 else None


def write_live_json(path: str, document: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_live_table(document: Dict) -> str:
    """Side-by-side live vs simulated summary of one bench-live run."""
    spec = document["spec"]
    live = document["live"]
    simulated = document["simulated"]
    header = (
        f"Live rekey on localhost — {spec['protocol']} n={spec['group_size']} "
        f"{spec['dh_group']} ({spec['engine']} engine, "
        f"{spec['daemon_mode']} daemon)"
    )
    columns = (
        f"{'event':<8s} {'live total':>12s} {'sim total':>12s} "
        f"{'live member':>12s} {'sim member':>12s} {'ratio':>8s}"
    )
    lines = [header, columns, "-" * len(columns)]
    ratios = document["cross_validation"]
    for event, ratio_key in (
        ("join", "join_live_over_sim"),
        ("leave", "leave_live_over_sim"),
    ):
        ratio = ratios[ratio_key]
        ratio_text = f"{ratio:8.2f}" if ratio is not None else f"{'n/a':>8s}"
        lines.append(
            f"{event:<8s} {live[event]['total_ms']:12.3f} "
            f"{simulated[event]['total_ms']:12.3f} "
            f"{live[event]['membership_ms']:12.3f} "
            f"{simulated[event]['membership_ms']:12.3f} "
            + ratio_text
        )
    rekey = live["rekey_ms"]
    lines.append("")
    lines.append(
        f"live member.rekey_ms: count={rekey['count']} "
        f"p50={rekey['p50']:.3f} p95={rekey['p95']:.3f} "
        f"p99={rekey['p99']:.3f} max={rekey['max']:.3f} (wall-clock ms)"
    )
    lines.append(
        f"wall elapsed: {live['wall_elapsed_ms'] / 1000.0:.2f}s "
        f"(daemon on {live['daemon']['host']}:{live['daemon']['port']})"
    )
    return "\n".join(lines)


__all__ = [
    "SCHEMA",
    "render_live_table",
    "render_percentiles",
    "run_live_benchmark",
    "simulate_prediction",
    "write_live_json",
]
