"""``python -m repro.bench`` — see :mod:`repro.bench.cli`."""

import sys

from repro.bench.cli import main

sys.exit(main())
