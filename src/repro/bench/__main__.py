"""``python -m repro.bench`` — see :mod:`repro.bench.cli`.

The ``__name__`` guard matters: spawn-started worker processes of the
experiment pool import this module under a different name, and must not
re-enter the CLI.
"""

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
