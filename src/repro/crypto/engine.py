"""Pluggable crypto engines: real bignum math or symbolic fast-path.

A :class:`CryptoEngine` is a factory for the
:class:`~repro.crypto.modmath.GroupElementContext` a protocol instance
does all its arithmetic through.  Two implementations exist:

:class:`RealEngine`
    Today's from-scratch big-integer path, unchanged semantics, plus
    fixed-base windowed precomputation for ``g^e`` (bit-identical values,
    measurably faster wall-clock).

:class:`SymbolicEngine`
    Group elements are represented by their *discrete logarithms* modulo
    the subgroup order ``q``.  The order-``q`` subgroup of ``Z_p^*`` is
    isomorphic to the additive group ``(Z_q, +)`` via ``g^x ↦ x``, so
    every algebraic identity the protocols rely on — BD's cyclic
    sum-of-products, GDH's accumulated products, the TGDH/STR tree folds,
    CKD's pairwise-secret symmetry — holds *exactly*: members still agree
    on a common group key, only each "element" is now a ``q``-sized token
    instead of a ``p``-sized bignum.  Exponentiation collapses to one
    word-sized multiplication, which is what unlocks 1000-member groups.

Why symbolic timings are bit-identical: all ledger accounting lives in
the recorded wrappers of :class:`GroupElementContext`, which the symbolic
context inherits unchanged — it only overrides the raw arithmetic hooks
underneath.  Simulated time is computed purely from the ledger via the
:class:`~repro.crypto.costmodel.CostModel`; the numeric values flowing
through the protocol never enter the cost computation, and control flow
depends only on membership views, message arrival and the (untouched)
deterministic RNG streams.  Same operations recorded, same costs charged,
same event schedule — the same simulated milliseconds, by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Union

from repro.crypto.bignum import BackendSpec, BignumBackend, get_backend
from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.modmath import GroupElementContext


class CryptoEngine(ABC):
    """Factory for the arithmetic contexts the protocols compute with."""

    #: engine identifier, as accepted by :func:`get_engine` and recorded
    #: in benchmark artifacts.
    name: str = "?"

    @abstractmethod
    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        """A fresh arithmetic context over ``group`` charging ``ledger``."""


#: Shared fixed-base tables, keyed by (modulus, generator, window,
#: backend name) — the tables are immutable and expensive enough to
#: build once per process.
_TABLE_CACHE: Dict[Tuple[int, int, int, str], FixedBaseTable] = {}


class PowerCache:
    """A bounded FIFO cache of ``pow(base, exponent, p)`` results.

    The tree protocols recompute identical full exponentiations many
    times per epoch: every TGDH member on a node's co-path derives the
    same blinded key, and STR members re-lift the same chain links
    (measured on an n=64 real sweep: 87% of TGDH's and 95% of STR's
    ``exp`` calls repeat an earlier (base, exponent) pair — mostly
    *across* members, which is why the cache lives on the engine and is
    shared by every context it creates, not held per member).  A cached
    power is a pure function of its key, so hits are bit-identical to
    recomputation, and the ledger wrapper above the raw hook still
    charges every call — only wall-clock changes.

    Insertion-ordered dict + FIFO eviction keeps the footprint bounded
    without per-hit bookkeeping (an LRU would reorder on every hit).
    """

    def __init__(self, capacity: int = 8192, backend: BackendSpec = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.backend: BignumBackend = get_backend(backend)
        self._values: Dict[Tuple[int, int, int], int] = {}
        self.hits = 0
        self.misses = 0
        self.seeded = 0

    def __len__(self) -> int:
        return len(self._values)

    def pow(self, base: int, exponent: int, modulus: int) -> int:
        key = (modulus, base, exponent)
        result = self._values.get(key)
        if result is not None:
            self.hits += 1
            return result
        self.misses += 1
        backend = self.backend
        result = backend.unwrap(backend.powmod(base, exponent, modulus))
        values = self._values
        if len(values) >= self.capacity:
            del values[next(iter(values))]
        values[key] = result
        return result

    def seed(self, base: int, exponent: int, modulus: int, value: int) -> None:
        """Insert a precomputed power (from a shard worker).

        A cached power is a pure function of its key, so a seeded entry
        is indistinguishable from one computed on a miss — seeding is
        unconditionally safe, whatever the epoch-plan that produced it
        guessed.  Existing entries win (they are identical by
        construction; skipping keeps FIFO age intact).
        """
        key = (modulus, base, exponent)
        values = self._values
        if key in values:
            return
        if len(values) >= self.capacity:
            del values[next(iter(values))]
        values[key] = value
        self.seeded += 1


class RealElementContext(GroupElementContext):
    """Real arithmetic, with repeated exponentiations served from a
    :class:`PowerCache` (accounting in the inherited wrappers is
    untouched — the cache can never change a charged cost)."""

    def __init__(
        self,
        group: SchnorrGroup,
        ledger: Optional[OperationLedger] = None,
        fixed_base: Optional[FixedBaseTable] = None,
        power_cache: Optional[PowerCache] = None,
        backend: BackendSpec = None,
    ):
        super().__init__(group, ledger, fixed_base=fixed_base, backend=backend)
        self._power_cache = power_cache

    def _raw_exp(self, base: int, exponent: int) -> int:
        cache = self._power_cache
        if cache is None:
            backend = self._backend
            return backend.unwrap(backend.powmod(base, exponent, self.group.p))
        return cache.pow(base, exponent, self.group.p)


class RealEngine(CryptoEngine):
    """The real big-integer path, with fixed-base precomputation.

    ``precompute=False`` disables the windowed tables (plain ``pow``
    everywhere); ``power_cache_size=0`` disables the shared
    exponentiation cache.  ``backend`` selects the bignum arithmetic
    (``None`` → the ``REPRO_BIGNUM`` env var, default ``auto``; see
    :mod:`repro.crypto.bignum`), and ``shard_jobs`` enables intra-epoch
    crypto sharding across worker processes (see
    :mod:`repro.crypto.parallel`).  Results are bit-identical in every
    combination — :attr:`name` stays ``"real"`` whatever the backend,
    so benchmark artifacts never depend on which arithmetic ran.
    """

    name = "real"

    def __init__(
        self,
        precompute: bool = True,
        window: int = 6,
        power_cache_size: int = 8192,
        backend: BackendSpec = None,
        shard_jobs: int = 0,
    ):
        self.precompute = precompute
        self.window = window
        self.backend: BignumBackend = get_backend(backend)
        self.power_cache: Optional[PowerCache] = (
            PowerCache(power_cache_size, backend=self.backend)
            if power_cache_size
            else None
        )
        self.shard_pool = None
        if shard_jobs and self.power_cache is not None:
            from repro.crypto.parallel import EpochShardPool

            self.shard_pool = EpochShardPool(
                shard_jobs, backend=self.backend.name
            )

    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        fixed_base = self._table_for(group) if self.precompute else None
        return RealElementContext(
            group,
            ledger,
            fixed_base=fixed_base,
            power_cache=self.power_cache,
            backend=self.backend,
        )

    def _table_for(self, group: SchnorrGroup) -> FixedBaseTable:
        key = (group.p, group.g, self.window, self.backend.name)
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = FixedBaseTable(
                group.p,
                group.g,
                group.q_bits,
                window=self.window,
                backend=self.backend,
            )
            _TABLE_CACHE[key] = table
        return table


class SymbolicElementContext(GroupElementContext):
    """Arithmetic on discrete-log tokens: ``g^x`` is represented by ``x``.

    Only the raw hooks differ from the real context; every recorded
    wrapper — and hence every ledger entry and simulated cost — is
    inherited unchanged.  Under the isomorphism ``g^x ↦ x (mod q)``:
    exponentiation becomes multiplication, multiplication becomes
    addition, inversion becomes negation.
    """

    def _raw_exp(self, base: int, exponent: int) -> int:
        return (base * exponent) % self.group.q

    def _raw_exp_g(self, exponent: int) -> int:
        return exponent % self.group.q

    def _raw_small_exp(self, base: int, exponent: int) -> int:
        return (base * exponent) % self.group.q

    def _raw_mul(self, a: int, b: int) -> int:
        return (a + b) % self.group.q

    def _raw_inv_element(self, a: int) -> int:
        return (-a) % self.group.q

    def _raw_weighted_product(self, start, pairs):
        # Under the isomorphism a weighted product is a weighted *sum*
        # of tokens; the real context's multi-exponentiation shortcut
        # would treat tokens as group elements, so override it whole.
        q = self.group.q
        total = start
        for factor, weight in pairs:
            total = (total + factor * weight) % q
        return total

    def contains(self, element) -> bool:
        # Tokens are dlogs in [0, q); the subgroup test of the real
        # context would reject them even though they denote members.
        return isinstance(element, int) and 0 <= element < self.group.q


class SymbolicEngine(CryptoEngine):
    """Symbolic fast path: dlog tokens instead of bignum group elements."""

    name = "symbolic"

    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        return SymbolicElementContext(group, ledger)


#: Process-wide default instances — engines are stateless apart from the
#: (already shared) table cache, so reusing them is always safe.
REAL_ENGINE = RealEngine()
SYMBOLIC_ENGINE = SymbolicEngine()

_ENGINES: Dict[str, CryptoEngine] = {
    RealEngine.name: REAL_ENGINE,
    SymbolicEngine.name: SYMBOLIC_ENGINE,
}

EngineSpec = Union[None, str, CryptoEngine]

#: Sharded real-engine instances, keyed by (backend, precompute, window,
#: capacity, jobs) — an EpochShardPool owns worker processes, so reuse
#: across cells in one sweep process matters.
_SHARDED: Dict[Tuple, "RealEngine"] = {}


def sharded_engine(which: EngineSpec, jobs: int) -> CryptoEngine:
    """The engine ``which`` resolves to, with intra-epoch sharding.

    Only the real engine has crypto worth sharding; any other engine
    (symbolic — or an explicit instance, whose configuration is the
    caller's business) is returned unchanged.  ``jobs < 1`` disables
    sharding; ``jobs == 1`` evaluates plans inline (the deterministic
    reference path).  Instances are cached per configuration so one
    sweep process reuses one worker pool.
    """
    base = get_engine(which)
    if jobs < 1 or not isinstance(base, RealEngine) or base.shard_pool:
        return base
    # NB: an *empty* PowerCache is falsy (it has __len__) — test for None.
    capacity = (
        base.power_cache.capacity if base.power_cache is not None else 0
    )
    if not capacity:
        return base  # nowhere to seed results
    key = (base.backend.name, base.precompute, base.window, capacity, jobs)
    engine = _SHARDED.get(key)
    if engine is None:
        engine = RealEngine(
            precompute=base.precompute,
            window=base.window,
            power_cache_size=capacity,
            backend=base.backend,
            shard_jobs=jobs,
        )
        _SHARDED[key] = engine
    return engine


def get_engine(which: EngineSpec = None) -> CryptoEngine:
    """Resolve an engine spec: ``None`` (real), a name, or an instance.

    Name specs may pin the real engine's bignum backend with a suffix —
    ``"real:gmpy2"`` / ``"real:python"`` / ``"real:auto"`` — resolved
    through :func:`repro.crypto.bignum.get_backend` and cached per spec.
    The resolved engine still reports :attr:`~CryptoEngine.name` as
    ``"real"``: the backend changes wall-clock only, so artifacts must
    not record it.
    """
    if which is None:
        return REAL_ENGINE
    if isinstance(which, CryptoEngine):
        return which
    try:
        return _ENGINES[which]
    except TypeError:
        pass
    except KeyError:
        if isinstance(which, str) and which.startswith(RealEngine.name + ":"):
            backend_name = which.split(":", 1)[1]
            engine = RealEngine(backend=get_backend(backend_name or None))
            _ENGINES[which] = engine
            return engine
    raise ValueError(
        f"unknown crypto engine {which!r}; expected one of "
        f"{sorted(_ENGINES)}, 'real:<backend>' or a CryptoEngine instance"
    ) from None
