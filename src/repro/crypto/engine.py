"""Pluggable crypto engines: real bignum math or symbolic fast-path.

A :class:`CryptoEngine` is a factory for the
:class:`~repro.crypto.modmath.GroupElementContext` a protocol instance
does all its arithmetic through.  Two implementations exist:

:class:`RealEngine`
    Today's from-scratch big-integer path, unchanged semantics, plus
    fixed-base windowed precomputation for ``g^e`` (bit-identical values,
    measurably faster wall-clock).

:class:`SymbolicEngine`
    Group elements are represented by their *discrete logarithms* modulo
    the subgroup order ``q``.  The order-``q`` subgroup of ``Z_p^*`` is
    isomorphic to the additive group ``(Z_q, +)`` via ``g^x ↦ x``, so
    every algebraic identity the protocols rely on — BD's cyclic
    sum-of-products, GDH's accumulated products, the TGDH/STR tree folds,
    CKD's pairwise-secret symmetry — holds *exactly*: members still agree
    on a common group key, only each "element" is now a ``q``-sized token
    instead of a ``p``-sized bignum.  Exponentiation collapses to one
    word-sized multiplication, which is what unlocks 1000-member groups.

Why symbolic timings are bit-identical: all ledger accounting lives in
the recorded wrappers of :class:`GroupElementContext`, which the symbolic
context inherits unchanged — it only overrides the raw arithmetic hooks
underneath.  Simulated time is computed purely from the ledger via the
:class:`~repro.crypto.costmodel.CostModel`; the numeric values flowing
through the protocol never enter the cost computation, and control flow
depends only on membership views, message arrival and the (untouched)
deterministic RNG streams.  Same operations recorded, same costs charged,
same event schedule — the same simulated milliseconds, by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Union

from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.modmath import GroupElementContext


class CryptoEngine(ABC):
    """Factory for the arithmetic contexts the protocols compute with."""

    #: engine identifier, as accepted by :func:`get_engine` and recorded
    #: in benchmark artifacts.
    name: str = "?"

    @abstractmethod
    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        """A fresh arithmetic context over ``group`` charging ``ledger``."""


#: Shared fixed-base tables, keyed by (modulus, generator, window) — the
#: tables are immutable and expensive enough to build once per process.
_TABLE_CACHE: Dict[Tuple[int, int, int], FixedBaseTable] = {}


class PowerCache:
    """A bounded FIFO cache of ``pow(base, exponent, p)`` results.

    The tree protocols recompute identical full exponentiations many
    times per epoch: every TGDH member on a node's co-path derives the
    same blinded key, and STR members re-lift the same chain links
    (measured on an n=64 real sweep: 87% of TGDH's and 95% of STR's
    ``exp`` calls repeat an earlier (base, exponent) pair — mostly
    *across* members, which is why the cache lives on the engine and is
    shared by every context it creates, not held per member).  A cached
    power is a pure function of its key, so hits are bit-identical to
    recomputation, and the ledger wrapper above the raw hook still
    charges every call — only wall-clock changes.

    Insertion-ordered dict + FIFO eviction keeps the footprint bounded
    without per-hit bookkeeping (an LRU would reorder on every hit).
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._values: Dict[Tuple[int, int, int], int] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

    def pow(self, base: int, exponent: int, modulus: int) -> int:
        key = (modulus, base, exponent)
        result = self._values.get(key)
        if result is not None:
            self.hits += 1
            return result
        self.misses += 1
        result = pow(base, exponent, modulus)
        values = self._values
        if len(values) >= self.capacity:
            del values[next(iter(values))]
        values[key] = result
        return result


class RealElementContext(GroupElementContext):
    """Real arithmetic, with repeated exponentiations served from a
    :class:`PowerCache` (accounting in the inherited wrappers is
    untouched — the cache can never change a charged cost)."""

    def __init__(
        self,
        group: SchnorrGroup,
        ledger: Optional[OperationLedger] = None,
        fixed_base: Optional[FixedBaseTable] = None,
        power_cache: Optional[PowerCache] = None,
    ):
        super().__init__(group, ledger, fixed_base=fixed_base)
        self._power_cache = power_cache

    def _raw_exp(self, base: int, exponent: int) -> int:
        cache = self._power_cache
        if cache is None:
            return pow(base, exponent, self.group.p)
        return cache.pow(base, exponent, self.group.p)


class RealEngine(CryptoEngine):
    """The real big-integer path, with fixed-base precomputation.

    ``precompute=False`` disables the windowed tables (plain ``pow``
    everywhere); ``power_cache_size=0`` disables the shared
    exponentiation cache.  Results are bit-identical in every
    combination.
    """

    name = "real"

    def __init__(
        self,
        precompute: bool = True,
        window: int = 6,
        power_cache_size: int = 8192,
    ):
        self.precompute = precompute
        self.window = window
        self.power_cache: Optional[PowerCache] = (
            PowerCache(power_cache_size) if power_cache_size else None
        )

    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        fixed_base = self._table_for(group) if self.precompute else None
        return RealElementContext(
            group, ledger, fixed_base=fixed_base, power_cache=self.power_cache
        )

    def _table_for(self, group: SchnorrGroup) -> FixedBaseTable:
        key = (group.p, group.g, self.window)
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = FixedBaseTable(
                group.p, group.g, group.q_bits, window=self.window
            )
            _TABLE_CACHE[key] = table
        return table


class SymbolicElementContext(GroupElementContext):
    """Arithmetic on discrete-log tokens: ``g^x`` is represented by ``x``.

    Only the raw hooks differ from the real context; every recorded
    wrapper — and hence every ledger entry and simulated cost — is
    inherited unchanged.  Under the isomorphism ``g^x ↦ x (mod q)``:
    exponentiation becomes multiplication, multiplication becomes
    addition, inversion becomes negation.
    """

    def _raw_exp(self, base: int, exponent: int) -> int:
        return (base * exponent) % self.group.q

    def _raw_exp_g(self, exponent: int) -> int:
        return exponent % self.group.q

    def _raw_small_exp(self, base: int, exponent: int) -> int:
        return (base * exponent) % self.group.q

    def _raw_mul(self, a: int, b: int) -> int:
        return (a + b) % self.group.q

    def _raw_inv_element(self, a: int) -> int:
        return (-a) % self.group.q

    def _raw_weighted_product(self, start, pairs):
        # Under the isomorphism a weighted product is a weighted *sum*
        # of tokens; the real context's multi-exponentiation shortcut
        # would treat tokens as group elements, so override it whole.
        q = self.group.q
        total = start
        for factor, weight in pairs:
            total = (total + factor * weight) % q
        return total

    def contains(self, element) -> bool:
        # Tokens are dlogs in [0, q); the subgroup test of the real
        # context would reject them even though they denote members.
        return isinstance(element, int) and 0 <= element < self.group.q


class SymbolicEngine(CryptoEngine):
    """Symbolic fast path: dlog tokens instead of bignum group elements."""

    name = "symbolic"

    def context(
        self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None
    ) -> GroupElementContext:
        return SymbolicElementContext(group, ledger)


#: Process-wide default instances — engines are stateless apart from the
#: (already shared) table cache, so reusing them is always safe.
REAL_ENGINE = RealEngine()
SYMBOLIC_ENGINE = SymbolicEngine()

_ENGINES: Dict[str, CryptoEngine] = {
    RealEngine.name: REAL_ENGINE,
    SymbolicEngine.name: SYMBOLIC_ENGINE,
}

EngineSpec = Union[None, str, CryptoEngine]


def get_engine(which: EngineSpec = None) -> CryptoEngine:
    """Resolve an engine spec: ``None`` (real), a name, or an instance."""
    if which is None:
        return REAL_ENGINE
    if isinstance(which, CryptoEngine):
        return which
    try:
        return _ENGINES[which]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown crypto engine {which!r}; expected one of "
            f"{sorted(_ENGINES)} or a CryptoEngine instance"
        ) from None
