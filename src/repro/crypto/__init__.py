"""Cryptographic substrate built from scratch on Python integers.

Everything the five key agreement protocols need: Schnorr groups with
512/1024-bit moduli and 160-bit prime-order subgroups (the parameters the
paper uses), two-party Diffie-Hellman, RSA signatures with public exponent 3
(as in the paper's testbed), a SHA-256 based KDF/stream cipher, and — the
piece that powers the performance reproduction — an :class:`OperationLedger`
that counts every cryptographic operation so the simulator can charge
virtual CPU time for it through a calibrated :class:`CostModel`.
"""

from repro.crypto.costmodel import CostModel
from repro.crypto.dh import DiffieHellman
from repro.crypto.engine import (
    CryptoEngine,
    RealEngine,
    SymbolicEngine,
    SymbolicElementContext,
    REAL_ENGINE,
    SYMBOLIC_ENGINE,
    get_engine,
)
from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import (
    SchnorrGroup,
    get_group,
    GROUP_512,
    GROUP_1024,
    GROUP_2048,
    GROUP_TEST,
    GROUP_TINY,
)
from repro.crypto.kdf import derive_key, hmac_sha256, stream_xor
from repro.crypto.ledger import OperationLedger, OpCounts
from repro.crypto.modmath import GroupElementContext
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import RsaKeyPair, RsaSigner, RsaVerifier, generate_rsa_keypair

__all__ = [
    "CostModel",
    "CryptoEngine",
    "RealEngine",
    "SymbolicEngine",
    "SymbolicElementContext",
    "REAL_ENGINE",
    "SYMBOLIC_ENGINE",
    "get_engine",
    "FixedBaseTable",
    "DiffieHellman",
    "SchnorrGroup",
    "get_group",
    "GROUP_512",
    "GROUP_1024",
    "GROUP_2048",
    "GROUP_TEST",
    "GROUP_TINY",
    "derive_key",
    "hmac_sha256",
    "stream_xor",
    "OperationLedger",
    "OpCounts",
    "GroupElementContext",
    "DeterministicRandom",
    "RsaKeyPair",
    "RsaSigner",
    "RsaVerifier",
    "generate_rsa_keypair",
]
