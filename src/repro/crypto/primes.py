"""Primality testing and parameter generation, from scratch.

Provides Miller-Rabin probabilistic primality testing, random prime
generation, and Schnorr-group parameter generation (a prime modulus ``p``
with a prime-order subgroup of order ``q`` dividing ``p - 1``), which is the
algebraic setting all five key agreement protocols operate in — the paper
uses 512- and 1024-bit ``p`` with 160-bit ``q``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.rng import DeterministicRandom

# Small primes used for fast trial-division screening before Miller-Rabin.
_SMALL_PRIMES: Tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)

# Deterministic Miller-Rabin witnesses proven sufficient for n < 3.3e24;
# for larger n we add pseudo-random witnesses.
_DETERMINISTIC_WITNESSES: Tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """True if ``a`` is a Miller-Rabin witness that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rng: Optional[DeterministicRandom] = None, rounds: int = 24) -> bool:
    """Miller-Rabin primality test.

    Deterministic for ``n < 3.3e24`` using fixed witnesses; probabilistic with
    ``rounds`` random witnesses above that (error probability < 4^-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        rng = rng or DeterministicRandom(n & 0xFFFFFFFF)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return not any(_miller_rabin_witness(n, a) for a in witnesses)


def generate_prime(bits: int, rng: DeterministicRandom) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    while True:
        candidate = rng.randint_bits(bits) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: DeterministicRandom) -> int:
    """A random safe prime ``p = 2q + 1`` with ``bits`` bits (slow for large bits)."""
    if bits < 3:
        raise ValueError("bits must be >= 3")
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng):
            return p


def generate_schnorr_parameters(
    p_bits: int, q_bits: int, rng: DeterministicRandom
) -> Tuple[int, int, int]:
    """Generate Schnorr group parameters ``(p, q, g)``.

    ``p`` is a ``p_bits`` prime, ``q`` a ``q_bits`` prime dividing ``p - 1``,
    and ``g`` a generator of the order-``q`` subgroup of ``Z_p^*``.
    """
    if q_bits >= p_bits:
        raise ValueError("q_bits must be smaller than p_bits")
    q = generate_prime(q_bits, rng)
    k_bits = p_bits - q_bits
    while True:
        k = rng.randint_bits(k_bits)
        if k % 2:
            k += 1
        p = q * k + 1
        if p.bit_length() != p_bits:
            continue
        if not is_probable_prime(p, rng):
            continue
        g = _find_subgroup_generator(p, q, rng)
        if g is not None:
            return p, q, g


def _find_subgroup_generator(p: int, q: int, rng: DeterministicRandom) -> Optional[int]:
    """A generator of the order-``q`` subgroup of ``Z_p^*``, or None."""
    cofactor = (p - 1) // q
    for _ in range(64):
        h = rng.randrange(2, p - 1)
        g = pow(h, cofactor, p)
        if g not in (0, 1) and pow(g, q, p) == 1:
            return g
    return None
