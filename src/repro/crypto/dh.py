"""Two-party Diffie-Hellman key exchange (paper ref [4]).

The primitive every protocol in the paper generalizes: GDH extends it to a
chained group computation, TGDH/STR compose it along a tree, CKD uses it to
establish the controller's pairwise channels.
"""

from __future__ import annotations

from repro.crypto.modmath import GroupElementContext
from repro.crypto.rng import DeterministicRandom


class DiffieHellman:
    """One party's half of a Diffie-Hellman exchange.

    >>> from repro.crypto import GROUP_TEST, GroupElementContext, DeterministicRandom
    >>> ctx = GroupElementContext(GROUP_TEST)
    >>> alice = DiffieHellman(ctx, DeterministicRandom(1))
    >>> bob = DiffieHellman(ctx, DeterministicRandom(2))
    >>> alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
    True
    """

    def __init__(self, ctx: GroupElementContext, rng: DeterministicRandom):
        self._ctx = ctx
        self.private = ctx.random_exponent(rng)
        self.public = ctx.exp_g(self.private)

    def shared_secret(self, peer_public: int) -> int:
        """The shared group element ``peer_public^private mod p``."""
        if not self._ctx.contains(peer_public):
            raise ValueError("peer public value is not in the group")
        return self._ctx.exp(peer_public, self.private)

    def refresh(self, rng: DeterministicRandom) -> None:
        """Draw a fresh private share and recompute the public value."""
        self.private = self._ctx.random_exponent(rng)
        self.public = self._ctx.exp_g(self.private)
