"""RSA signatures from scratch (keygen, hash-and-sign, verify).

The paper's testbed signs every key agreement message with 1024-bit RSA and
public exponent 3, so that the per-message verification burden — which
dominates BD's behaviour on the LAN — stays small (§6.1.1).  Signing uses
the Chinese Remainder Theorem as OpenSSL does, which is why sign is ~15x
more expensive than verify with e=3.

Padding is a deterministic full-domain hash (repeated SHA-256 expansion of
the message digest to modulus size), sufficient for a research simulator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.crypto.ledger import OperationLedger
from repro.crypto.primes import generate_prime
from repro.crypto.rng import DeterministicRandom


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair with CRT components for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)


def generate_rsa_keypair(
    bits: int, rng: DeterministicRandom, e: int = 3
) -> RsaKeyPair:
    """Generate an RSA key pair with ``bits``-bit modulus and exponent ``e``.

    Primes are drawn until ``gcd(e, p-1) = gcd(e, q-1) = 1`` (for e=3 this
    rejects primes congruent to 1 mod 3).
    """
    if bits < 16:
        raise ValueError("RSA modulus must be at least 16 bits")
    half = bits // 2
    while True:
        p = _prime_coprime_to(half, e, rng)
        q = _prime_coprime_to(bits - half, e, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = (p - 1) * (q - 1)
        d = pow(e, -1, lam)
        return RsaKeyPair(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
        )


def _prime_coprime_to(bits: int, e: int, rng: DeterministicRandom) -> int:
    while True:
        candidate = generate_prime(bits, rng)
        if (candidate - 1) % e != 0:
            return candidate


#: Bounded FIFO memo of digest expansions.  A broadcast signed once is
#: verified by every receiver, and each verification re-expands the same
#: message digest to modulus size — n - 1 identical expansions per
#: broadcast at group size n.  The expansion is a pure function of
#: (seed, width), so hits are bit-identical.
_DIGEST_CACHE: dict = {}
_DIGEST_CACHE_MAX = 1024


def _full_domain_digest(message: bytes, n: int) -> int:
    """Expand SHA-256(message) to an integer just below ``n``."""
    target_bytes = (n.bit_length() - 1) // 8
    seed = hashlib.sha256(message).digest()
    key = (seed, target_bytes)
    cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < target_bytes:
        blocks.append(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    value = int.from_bytes(b"".join(blocks)[:target_bytes], "big")
    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
        del _DIGEST_CACHE[next(iter(_DIGEST_CACHE))]
    _DIGEST_CACHE[key] = value
    return value


class RsaSigner:
    """Signs messages with a key pair, charging the ledger one signature each."""

    def __init__(self, keypair: RsaKeyPair, ledger: Optional[OperationLedger] = None):
        self.keypair = keypair
        self.ledger = ledger or OperationLedger()

    def sign(self, message: bytes) -> int:
        """CRT signature of the full-domain digest of ``message``."""
        self.ledger.record_signature()
        kp = self.keypair
        m = _full_domain_digest(message, kp.n)
        s_p = pow(m % kp.p, kp.d_p, kp.p)
        s_q = pow(m % kp.q, kp.d_q, kp.q)
        h = (kp.q_inv * (s_p - s_q)) % kp.p
        return s_q + h * kp.q


class RsaVerifier:
    """Verifies signatures, charging the ledger one verification each."""

    def __init__(self, ledger: Optional[OperationLedger] = None):
        self.ledger = ledger or OperationLedger()

    def verify(self, public: RsaPublicKey, message: bytes, signature: int) -> bool:
        """True when ``signature`` is valid for ``message`` under ``public``."""
        self.ledger.record_verification()
        if not 0 < signature < public.n:
            return False
        return pow(signature, public.e, public.n) == _full_domain_digest(
            message, public.n
        )


# Key generation in pure Python is slow for 1024-bit keys, and simulated
# experiments may create hundreds of members.  Members whose behaviour does
# not depend on *which* key they hold can share cached keys per (bits, slot).
_KEY_CACHE: dict = {}


def cached_rsa_keypair(bits: int, slot: int = 0, e: int = 3) -> RsaKeyPair:
    """A deterministic, memoized key pair for simulation principals."""
    cache_key = (bits, slot, e)
    if cache_key not in _KEY_CACHE:
        rng = DeterministicRandom(0x5254 + 1000003 * slot + bits)
        _KEY_CACHE[cache_key] = generate_rsa_keypair(bits, rng, e)
    return _KEY_CACHE[cache_key]
