"""Intra-epoch crypto sharding: fan one rekey's modexps over processes.

The per-member crypto of a single rekey epoch is data-parallel: when a
broadcast round lands, every recipient independently lifts the same
handful of blinded values with its own exponents.  The simulator
executes those receive handlers sequentially (its event loop is single-
threaded by design), but the *arithmetic* they will perform is known the
instant the broadcast bucket activates — each protocol can describe it
as :class:`PowChain`\\ s (see ``receive_plan`` on the protocol classes)
without mutating any state.

This module evaluates those chains across worker processes **between
simulator steps** and seeds the results into the engine's shared
:class:`~repro.crypto.engine.PowerCache`, in deterministic member order,
before the inline handlers run.  The handlers then hit the cache instead
of recomputing.  Transparency is structural, not best-effort:

* a cached power is a pure function of its key, so a seeded entry is
  bit-identical to what the handler would have computed;
* the ledger wrappers still charge every call — simulated times cannot
  change;
* a wrong or missing plan merely wastes (or forgoes) background work —
  the inline handler computes whatever the cache lacks.

Workers receive only plain integers (chains) and return plain integers
(powers), so the pool composes with any bignum backend and never ships
simulator state.  Merging is deterministic: results are seeded in shard
order, which is the original chain order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.bignum import get_backend

#: One seeded cache entry: (modulus, base, exponent, value).
Entry = Tuple[int, int, int, int]


@dataclass(frozen=True)
class PowChain:
    """A dependent run of modular exponentiations, self-contained.

    Starting from exponent ``start``, each base in ``bases`` is raised
    to the running value: ``k ← base^(k mod order) mod modulus`` (the
    ``mod order`` reduction matches the protocols' exponent handling;
    every protocol's starting exponents are already ``< order``, so the
    first step's reduction is the identity).  This is exactly the shape
    of TGDH's path-key walk and STR's chain lift; single exponentiations
    (GDH, CKD) are chains of length one.
    """

    modulus: int
    order: int
    start: int
    bases: Tuple[int, ...]

    def __post_init__(self):
        if self.order < 1 or self.modulus < 1:
            raise ValueError("modulus and order must be positive")


def evaluate_chains(
    chains: Sequence[PowChain], backend_name: Optional[str] = None
) -> List[Entry]:
    """Evaluate chains in order; one entry per *distinct* (base, exp).

    Pure: depends only on the chains and the arithmetic, never on
    simulator state.  Runs in worker processes (and inline for
    single-job pools and tests).
    """
    backend = get_backend(backend_name)
    powmod = backend.powmod
    unwrap = backend.unwrap
    seen: Dict[Tuple[int, int, int], int] = {}
    entries: List[Entry] = []
    for chain in chains:
        k = chain.start
        for base in chain.bases:
            exponent = k % chain.order
            key = (chain.modulus, base, exponent)
            value = seen.get(key)
            if value is None:
                value = unwrap(powmod(base, exponent, chain.modulus))
                seen[key] = value
                entries.append((chain.modulus, base, exponent, value))
            k = value
    return entries


def _eval_worker(payload: Tuple[List[PowChain], Optional[str]]) -> List[Entry]:
    chains, backend_name = payload
    return evaluate_chains(chains, backend_name)


class EpochShardPool:
    """Shards chain batches over worker processes, merging in order.

    ``jobs=1`` evaluates inline (no processes) — the deterministic
    reference path the tests compare against.  The executor is created
    lazily on the first sharded batch and reused for the run's lifetime;
    workers inherit the loaded package via fork where available.

    ``min_chains`` is the break-even guard: batches smaller than it run
    inline, because shipping two chains to a worker costs more than the
    two modexps.
    """

    def __init__(
        self,
        jobs: int,
        backend: Optional[str] = None,
        min_chains: int = 4,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.backend_name = backend
        self.min_chains = min_chains
        self.chains_planned = 0
        self.entries_seeded = 0
        self.batches = 0
        self.plan_errors = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            from repro.bench.pool import _mp_context

            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_mp_context()
            )
        return self._executor

    def evaluate(self, chains: Sequence[PowChain]) -> List[Entry]:
        """All distinct entries of ``chains``, in deterministic order."""
        chains = list(chains)
        if self.jobs == 1 or len(chains) < max(self.min_chains, 2 * self.jobs):
            return evaluate_chains(chains, self.backend_name)
        # Contiguous shards, merged in shard order: the concatenation
        # is the sequential entry list up to (harmless) cross-shard
        # duplicates, which cache seeding skips.
        size = -(-len(chains) // self.jobs)  # ceil
        shards = [
            chains[start : start + size]
            for start in range(0, len(chains), size)
        ]
        futures = [
            self._pool().submit(_eval_worker, (shard, self.backend_name))
            for shard in shards
        ]
        entries: List[Entry] = []
        for future in futures:
            entries.extend(future.result())
        return entries

    def warm(self, cache, chains: Sequence[PowChain]) -> int:
        """Evaluate ``chains`` and seed ``cache``; returns entries seeded."""
        chains = list(chains)
        if not chains:
            return 0
        self.batches += 1
        self.chains_planned += len(chains)
        before = cache.seeded
        for modulus, base, exponent, value in self.evaluate(chains):
            cache.seed(base, exponent, modulus, value)
        seeded = cache.seeded - before
        self.entries_seeded += seeded
        return seeded

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
