"""Deterministic randomness for reproducible experiments.

All key material in a simulation is drawn from one seeded
:class:`DeterministicRandom`, so a figure regenerates bit-identically for a
given seed while remaining statistically random-looking.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRandom:
    """Seedable randomness source for integers and byte strings.

    A thin wrapper over :class:`random.Random` with convenience methods used
    throughout the crypto layer.  Not a secure RNG — this is a research
    simulator; determinism is the feature.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def randint_bits(self, bits: int) -> int:
        """A uniformly random integer with exactly ``bits`` bits (MSB set)."""
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if bits == 1:
            return 1
        return (1 << (bits - 1)) | self._rng.getrandbits(bits - 1)

    def randrange(self, lower: int, upper: int) -> int:
        """A uniformly random integer in ``[lower, upper)``."""
        return self._rng.randrange(lower, upper)

    def random_exponent(self, order: int) -> int:
        """A random exponent in ``[2, order - 1]`` suitable as a DH share."""
        return self._rng.randrange(2, order)

    def random_bytes(self, length: int) -> bytes:
        """``length`` random bytes."""
        return self._rng.getrandbits(length * 8).to_bytes(length, "big")

    def fork(self, label: str) -> "DeterministicRandom":
        """An independent stream derived from this one's seed and ``label``.

        Forking lets every member of a simulated group own a private stream
        whose draws do not depend on the scheduling order of other members.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return DeterministicRandom(int.from_bytes(digest[:8], "big"))

    def shuffle(self, items: list) -> None:
        """In-place deterministic shuffle."""
        self._rng.shuffle(items)

    def choice(self, items):
        """Deterministic choice from a non-empty sequence."""
        return self._rng.choice(items)

    def uniform(self, a: float, b: float) -> float:
        """Deterministic uniform float in ``[a, b)``."""
        return self._rng.uniform(a, b)
