"""Calibrated virtual-time costs for cryptographic operations.

The simulator executes real big-integer math, but *time* in an experiment is
virtual: a :class:`CostModel` converts an operation-count delta
(:class:`~repro.crypto.ledger.OpCounts`) into milliseconds of CPU work.

The default calibration models the paper's testbed — 666 MHz Pentium III
machines running OpenSSL (§6.1.1):

* modular exponentiation with a 160-bit exponent: ~2 ms at 512-bit modulus,
  ~7.2 ms at 1024-bit;
* 1024-bit RSA with public exponent 3: sign ~9.3 ms (CRT), verify ~0.6 ms;
* a full exponentiation costs roughly ``1.5 × |q|`` modular multiplications
  (square-and-multiply), which prices the small-exponent multiplications
  behind BD's hidden cost (the paper's "373 modular multiplications").

Machines of different speeds (the WAN testbed mixes platforms) scale these
costs by a per-machine speed factor in :mod:`repro.sim.cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.crypto.ledger import OpCounts

#: Square-and-multiply multiplications per full exponentiation with a
#: 160-bit exponent: ~160 squarings + ~80 multiplies.
_MULTS_PER_FULL_EXP = 240.0


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual millisecond costs on a reference (speed 1.0) CPU."""

    name: str
    exp_ms: Mapping[int, float]
    sign_ms: float
    verify_ms: float
    reference_bits: int = 512

    def exp_cost(self, modulus_bits: int) -> float:
        """Milliseconds for one full exponentiation at ``modulus_bits``.

        Unlisted modulus sizes scale quadratically from the reference size
        (schoolbook multiplication cost grows with the square of the
        operand size).
        """
        if modulus_bits in self.exp_ms:
            return self.exp_ms[modulus_bits]
        ratio = (modulus_bits / self.reference_bits) ** 2
        return self.exp_ms[self.reference_bits] * ratio

    def mult_cost(self, modulus_bits: int) -> float:
        """Milliseconds for one modular multiplication at ``modulus_bits``."""
        return self.exp_cost(modulus_bits) / _MULTS_PER_FULL_EXP

    def time_of(self, counts: OpCounts) -> float:
        """Total virtual milliseconds of CPU work for an operation delta."""
        total = 0.0
        for bits, n in counts.exponentiations:
            total += n * self.exp_cost(bits)
        for bits, n in counts.small_exp_multiplications:
            total += n * self.mult_cost(bits)
        for bits, n in counts.multiplications:
            total += n * self.mult_cost(bits)
        total += counts.signatures * self.sign_ms
        total += counts.verifications * self.verify_ms
        return total


def pentium3_666() -> CostModel:
    """The paper's LAN/WAN reference platform: 666 MHz Pentium III."""
    return CostModel(
        name="pentium3-666",
        exp_ms={512: 2.0, 1024: 7.2, 2048: 26.0},
        sign_ms=9.3,
        verify_ms=1.2,
    )


def free_crypto() -> CostModel:
    """Zero-cost crypto — isolates pure communication cost in ablations."""
    return CostModel(
        name="free-crypto",
        exp_ms={512: 0.0, 1024: 0.0, 2048: 0.0},
        sign_ms=0.0,
        verify_ms=0.0,
        reference_bits=512,
    )


def expensive_signatures() -> CostModel:
    """DSA-like signature pricing (§6.1.1: "expensive signature verification
    (e.g., as in DSA) noticeably degrades performance")."""
    return CostModel(
        name="dsa-like",
        exp_ms={512: 2.0, 1024: 7.2, 2048: 26.0},
        sign_ms=4.5,
        verify_ms=8.8,
    )
