"""Key derivation, MAC and symmetric encryption built on SHA-256.

Secure Spread encrypts application data under the group key once a group is
operational (paper §3.3).  We implement the symmetric layer from scratch on
:mod:`hashlib`: an expand-style KDF, HMAC-SHA256, and a counter-mode stream
cipher, so group-data confidentiality/integrity needs no external crypto
library.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac


def derive_key(secret: int, label: str, length: int = 32) -> bytes:
    """Derive ``length`` bytes from a group secret (an integer) and a label.

    Counter-mode expansion of ``SHA-256(counter || secret || label)``,
    mirroring HKDF-expand's structure.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    secret_bytes = secret.to_bytes((secret.bit_length() + 7) // 8 or 1, "big")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        counter += 1
        h = hashlib.sha256()
        h.update(counter.to_bytes(4, "big"))
        h.update(secret_bytes)
        h.update(label.encode())
        blocks.append(h.digest())
    return b"".join(blocks)[:length]


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        h = hashlib.sha256()
        h.update(key)
        h.update(nonce)
        h.update(counter.to_bytes(8, "big"))
        blocks.append(h.digest())
        counter += 1
    return b"".join(blocks)[:length]


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with a SHA-256 counter-mode keystream.

    Symmetric: applying it twice with the same key/nonce round-trips.
    """
    stream = _keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))
