"""Operation accounting for cryptographic work.

The paper's entire conceptual analysis (Table 1) is phrased in numbers of
modular exponentiations, signatures and verifications.  Every cryptographic
primitive in :mod:`repro.crypto` is therefore executed against an
:class:`OperationLedger` that records what was done.  The simulator later
converts ledger deltas into virtual CPU time through a
:class:`~repro.crypto.costmodel.CostModel`, and the test-suite checks the
recorded counts against the closed-form Table 1 formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class OpCounts:
    """Immutable snapshot of operation counts.

    Attributes
    ----------
    exponentiations:
        Full modular exponentiations with a cryptographically sized
        (subgroup-order sized, e.g. 160-bit) exponent, keyed by modulus bits.
    small_exp_multiplications:
        Modular multiplications spent on *small-exponent* exponentiations
        (the "hidden cost" of BD's key derivation, paper §5), keyed by
        modulus bits.  A small exponentiation with exponent ``e`` costs about
        ``floor(log2 e) + popcount(e)`` multiplications via
        square-and-multiply; we record that multiplication count.
    multiplications:
        Plain modular multiplications / inversions, keyed by modulus bits.
    signatures:
        Number of digital signatures produced.
    verifications:
        Number of signature verifications performed.
    """

    exponentiations: Tuple[Tuple[int, int], ...] = ()
    small_exp_multiplications: Tuple[Tuple[int, int], ...] = ()
    multiplications: Tuple[Tuple[int, int], ...] = ()
    signatures: int = 0
    verifications: int = 0

    def exp_count(self, bits: int = 0) -> int:
        """Total full exponentiations, optionally restricted to a modulus size."""
        return sum(n for b, n in self.exponentiations if bits in (0, b))

    def small_mult_count(self, bits: int = 0) -> int:
        """Total small-exponent multiplications, optionally by modulus size."""
        return sum(n for b, n in self.small_exp_multiplications if bits in (0, b))

    def mult_count(self, bits: int = 0) -> int:
        """Total plain multiplications, optionally by modulus size."""
        return sum(n for b, n in self.multiplications if bits in (0, b))

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            exponentiations=_merge(self.exponentiations, other.exponentiations, 1),
            small_exp_multiplications=_merge(
                self.small_exp_multiplications, other.small_exp_multiplications, 1
            ),
            multiplications=_merge(self.multiplications, other.multiplications, 1),
            signatures=self.signatures + other.signatures,
            verifications=self.verifications + other.verifications,
        )

    def __sub__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            exponentiations=_merge(self.exponentiations, other.exponentiations, -1),
            small_exp_multiplications=_merge(
                self.small_exp_multiplications, other.small_exp_multiplications, -1
            ),
            multiplications=_merge(self.multiplications, other.multiplications, -1),
            signatures=self.signatures - other.signatures,
            verifications=self.verifications - other.verifications,
        )

    def is_zero(self) -> bool:
        """True when the snapshot records no work at all."""
        return (
            not any(n for _, n in self.exponentiations)
            and not any(n for _, n in self.small_exp_multiplications)
            and not any(n for _, n in self.multiplications)
            and self.signatures == 0
            and self.verifications == 0
        )


def _merge(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...], sign: int
) -> Tuple[Tuple[int, int], ...]:
    merged: Dict[int, int] = dict(a)
    for bits, count in b:
        merged[bits] = merged.get(bits, 0) + sign * count
    return tuple(sorted((bits, n) for bits, n in merged.items() if n))


class OperationLedger:
    """Mutable counter of cryptographic operations.

    One ledger belongs to one *principal* (a group member process); the
    simulator charges that principal's CPU for the delta between two
    snapshots.
    """

    def __init__(self) -> None:
        self._exps: Dict[int, int] = {}
        self._small_mults: Dict[int, int] = {}
        self._mults: Dict[int, int] = {}
        self._signatures = 0
        self._verifications = 0

    def record_exponentiation(self, modulus_bits: int, count: int = 1) -> None:
        """Record ``count`` full (crypto-sized exponent) exponentiations."""
        self._exps[modulus_bits] = self._exps.get(modulus_bits, 0) + count

    def record_small_exponentiation(self, modulus_bits: int, exponent: int) -> None:
        """Record one small-exponent exponentiation as its multiplication cost."""
        if exponent <= 1:
            return
        mults = exponent.bit_length() - 1 + bin(exponent).count("1") - 1
        self._small_mults[modulus_bits] = (
            self._small_mults.get(modulus_bits, 0) + mults
        )

    def record_multiplication(self, modulus_bits: int, count: int = 1) -> None:
        """Record ``count`` plain modular multiplications (or inversions)."""
        self._mults[modulus_bits] = self._mults.get(modulus_bits, 0) + count

    def record_signature(self, count: int = 1) -> None:
        """Record ``count`` digital signatures produced."""
        self._signatures += count

    def record_verification(self, count: int = 1) -> None:
        """Record ``count`` signature verifications."""
        self._verifications += count

    def snapshot(self) -> OpCounts:
        """Immutable snapshot of all counts so far."""
        return OpCounts(
            exponentiations=tuple(sorted(self._exps.items())),
            small_exp_multiplications=tuple(sorted(self._small_mults.items())),
            multiplications=tuple(sorted(self._mults.items())),
            signatures=self._signatures,
            verifications=self._verifications,
        )

    def delta_since(self, earlier: OpCounts) -> OpCounts:
        """Work recorded since ``earlier`` was snapshotted."""
        return self.snapshot() - earlier

    def reset(self) -> None:
        """Forget all recorded work."""
        self._exps.clear()
        self._small_mults.clear()
        self._mults.clear()
        self._signatures = 0
        self._verifications = 0
