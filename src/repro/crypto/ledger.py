"""Operation accounting for cryptographic work.

The paper's entire conceptual analysis (Table 1) is phrased in numbers of
modular exponentiations, signatures and verifications.  Every cryptographic
primitive in :mod:`repro.crypto` is therefore executed against an
:class:`OperationLedger` that records what was done.  The simulator later
converts ledger deltas into virtual CPU time through a
:class:`~repro.crypto.costmodel.CostModel`, and the test-suite checks the
recorded counts against the closed-form Table 1 formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class OpCounts:
    """Immutable snapshot of operation counts.

    Attributes
    ----------
    exponentiations:
        Full modular exponentiations with a cryptographically sized
        (subgroup-order sized, e.g. 160-bit) exponent, keyed by modulus bits.
    small_exp_multiplications:
        Modular multiplications spent on *small-exponent* exponentiations
        (the "hidden cost" of BD's key derivation, paper §5), keyed by
        modulus bits.  A small exponentiation with exponent ``e`` costs about
        ``floor(log2 e) + popcount(e)`` multiplications via
        square-and-multiply; we record that multiplication count.
    multiplications:
        Plain modular multiplications / inversions, keyed by modulus bits.
    signatures:
        Number of digital signatures produced.
    verifications:
        Number of signature verifications performed.
    """

    exponentiations: Tuple[Tuple[int, int], ...] = ()
    small_exp_multiplications: Tuple[Tuple[int, int], ...] = ()
    multiplications: Tuple[Tuple[int, int], ...] = ()
    signatures: int = 0
    verifications: int = 0

    def exp_count(self, bits: int = 0) -> int:
        """Total full exponentiations, optionally restricted to a modulus size."""
        return sum(n for b, n in self.exponentiations if bits in (0, b))

    def small_mult_count(self, bits: int = 0) -> int:
        """Total small-exponent multiplications, optionally by modulus size."""
        return sum(n for b, n in self.small_exp_multiplications if bits in (0, b))

    def mult_count(self, bits: int = 0) -> int:
        """Total plain multiplications, optionally by modulus size."""
        return sum(n for b, n in self.multiplications if bits in (0, b))

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            exponentiations=_merge(self.exponentiations, other.exponentiations, 1),
            small_exp_multiplications=_merge(
                self.small_exp_multiplications, other.small_exp_multiplications, 1
            ),
            multiplications=_merge(self.multiplications, other.multiplications, 1),
            signatures=self.signatures + other.signatures,
            verifications=self.verifications + other.verifications,
        )

    def __sub__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            exponentiations=_merge(self.exponentiations, other.exponentiations, -1),
            small_exp_multiplications=_merge(
                self.small_exp_multiplications, other.small_exp_multiplications, -1
            ),
            multiplications=_merge(self.multiplications, other.multiplications, -1),
            signatures=self.signatures - other.signatures,
            verifications=self.verifications - other.verifications,
        )

    def is_zero(self) -> bool:
        """True when the snapshot records no work at all."""
        return (
            not any(n for _, n in self.exponentiations)
            and not any(n for _, n in self.small_exp_multiplications)
            and not any(n for _, n in self.multiplications)
            and self.signatures == 0
            and self.verifications == 0
        )


def _merge(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...], sign: int
) -> Tuple[Tuple[int, int], ...]:
    merged: Dict[int, int] = dict(a)
    for bits, count in b:
        merged[bits] = merged.get(bits, 0) + sign * count
    return tuple(sorted((bits, n) for bits, n in merged.items() if n))


#: square-and-multiply multiplication counts per small exponent — a pure
#: function of the exponent, shared by every ledger (BD alone asks for
#: weights 1..n−1 once per member per rekey).
_SMALL_EXP_MULTS: Dict[int, int] = {}


class OperationLedger:
    """Mutable counter of cryptographic operations.

    One ledger belongs to one *principal* (a group member process); the
    simulator charges that principal's CPU for the delta between two
    snapshots.
    """

    def __init__(self) -> None:
        self._exps: Dict[int, int] = {}
        self._small_mults: Dict[int, int] = {}
        self._mults: Dict[int, int] = {}
        self._signatures = 0
        self._verifications = 0
        # Pending (not yet folded) records.  ``record_*`` writes land here
        # — one dict update, exactly as cheap as writing the main counters
        # directly — and :meth:`_flush` folds them into the main counters
        # whenever a reader needs totals.  The point: a charge window
        # (``begin_charge``/``charge_pending``) prices *only* the pending
        # dicts, which hold the handful of ops of one protocol step,
        # instead of diffing full-history counters per message.
        self._p_exps: Dict[int, int] = {}
        self._p_small_mults: Dict[int, int] = {}
        self._p_mults: Dict[int, int] = {}
        self._p_signatures = 0
        self._p_verifications = 0
        # per-bits cost memo for the last cost model seen (costs are pure
        # functions of bits).
        self._cost_cache: Tuple = (None, {}, {})

    def record_exponentiation(self, modulus_bits: int, count: int = 1) -> None:
        """Record ``count`` full (crypto-sized exponent) exponentiations."""
        self._p_exps[modulus_bits] = self._p_exps.get(modulus_bits, 0) + count

    def record_small_exponentiation(self, modulus_bits: int, exponent: int) -> None:
        """Record one small-exponent exponentiation as its multiplication cost."""
        if exponent <= 1:
            return
        mults = _SMALL_EXP_MULTS.get(exponent)
        if mults is None:
            mults = exponent.bit_length() - 1 + bin(exponent).count("1") - 1
            if exponent < 4096:  # the weights protocols use; keep it bounded
                _SMALL_EXP_MULTS[exponent] = mults
        self._p_small_mults[modulus_bits] = (
            self._p_small_mults.get(modulus_bits, 0) + mults
        )

    def record_multiplication(self, modulus_bits: int, count: int = 1) -> None:
        """Record ``count`` plain modular multiplications (or inversions)."""
        self._p_mults[modulus_bits] = self._p_mults.get(modulus_bits, 0) + count

    def record_signature(self, count: int = 1) -> None:
        """Record ``count`` digital signatures produced."""
        self._p_signatures += count

    def record_verification(self, count: int = 1) -> None:
        """Record ``count`` signature verifications."""
        self._p_verifications += count

    def _flush(self) -> None:
        """Fold pending records into the cumulative counters."""
        if self._p_exps:
            exps = self._exps
            for bits, n in self._p_exps.items():
                exps[bits] = exps.get(bits, 0) + n
            self._p_exps.clear()
        if self._p_small_mults:
            small = self._small_mults
            for bits, n in self._p_small_mults.items():
                small[bits] = small.get(bits, 0) + n
            self._p_small_mults.clear()
        if self._p_mults:
            mults = self._mults
            for bits, n in self._p_mults.items():
                mults[bits] = mults.get(bits, 0) + n
            self._p_mults.clear()
        if self._p_signatures:
            self._signatures += self._p_signatures
            self._p_signatures = 0
        if self._p_verifications:
            self._verifications += self._p_verifications
            self._p_verifications = 0

    def begin_charge(self) -> None:
        """Open a charge window: whatever is recorded until the matching
        :meth:`charge_pending` call is priced by it.

        Folds any records made outside a window (e.g. signatures charged
        separately) so they cannot leak into this window's bill.  Windows
        do not nest — the caller (``SecureGroupMember._charged``) runs
        one synchronous protocol step per window and nothing inside a
        step re-enters the charging layer.
        """
        self._flush()

    def charge_pending(self, cost_model) -> float:
        """Close the window: price, fold, and return the pending work.

        Bit-identical to ``cost_model.time_of(self.delta_since(mark))``
        for a mark taken at :meth:`begin_charge`: terms accumulate in the
        exact order ``CostModel.time_of`` uses (exponentiations, then
        small-exponent multiplications, then multiplications — each
        ascending by modulus bits — then signatures, then verifications),
        and zero counts are skipped just as ``OpCounts`` merging drops
        them, so the floating-point sums agree to the last bit.
        """
        model, exp_cost_of, mult_cost_of = self._cost_cache
        if model is not cost_model:
            exp_cost_of, mult_cost_of = {}, {}
            self._cost_cache = (cost_model, exp_cost_of, mult_cost_of)
        total = 0.0
        p_exps = self._p_exps
        if p_exps:
            exps = self._exps
            for bits in sorted(p_exps) if len(p_exps) > 1 else p_exps:
                n = p_exps[bits]
                exps[bits] = exps.get(bits, 0) + n
                if n:
                    cost = exp_cost_of.get(bits)
                    if cost is None:
                        cost = exp_cost_of[bits] = cost_model.exp_cost(bits)
                    total += n * cost
            p_exps.clear()
        p_small = self._p_small_mults
        if p_small:
            small = self._small_mults
            for bits in sorted(p_small) if len(p_small) > 1 else p_small:
                n = p_small[bits]
                small[bits] = small.get(bits, 0) + n
                if n:
                    cost = mult_cost_of.get(bits)
                    if cost is None:
                        cost = mult_cost_of[bits] = cost_model.mult_cost(bits)
                    total += n * cost
            p_small.clear()
        p_mults = self._p_mults
        if p_mults:
            mults = self._mults
            for bits in sorted(p_mults) if len(p_mults) > 1 else p_mults:
                n = p_mults[bits]
                mults[bits] = mults.get(bits, 0) + n
                if n:
                    cost = mult_cost_of.get(bits)
                    if cost is None:
                        cost = mult_cost_of[bits] = cost_model.mult_cost(bits)
                    total += n * cost
            p_mults.clear()
        if self._p_signatures:
            total += self._p_signatures * cost_model.sign_ms
            self._signatures += self._p_signatures
            self._p_signatures = 0
        if self._p_verifications:
            total += self._p_verifications * cost_model.verify_ms
            self._verifications += self._p_verifications
            self._p_verifications = 0
        return total

    def snapshot(self) -> OpCounts:
        """Immutable snapshot of all counts so far."""
        self._flush()
        return OpCounts(
            exponentiations=tuple(sorted(self._exps.items())),
            small_exp_multiplications=tuple(sorted(self._small_mults.items())),
            multiplications=tuple(sorted(self._mults.items())),
            signatures=self._signatures,
            verifications=self._verifications,
        )

    def delta_since(self, earlier: OpCounts) -> OpCounts:
        """Work recorded since ``earlier`` was snapshotted."""
        return self.snapshot() - earlier

    def mark(self) -> Tuple:
        """A cheap point-in-time marker for :meth:`charge_since`.

        Plain dict copies — no tuple building or sorting — so marking
        before and charging after every protocol step stays off the
        simulator's hot-path profile.  Use :meth:`snapshot` when the
        delta itself (an :class:`OpCounts`) is needed, e.g. for
        observability counters.  The hot path proper uses
        :meth:`begin_charge`/:meth:`charge_pending`, which skip even the
        dict copies.
        """
        self._flush()
        return (
            dict(self._exps),
            dict(self._small_mults),
            dict(self._mults),
            self._signatures,
            self._verifications,
        )

    def charge_since(self, mark: Tuple, cost_model) -> float:
        """Virtual milliseconds of the work recorded since ``mark``.

        Bit-identical to ``cost_model.time_of(self.delta_since(snapshot))``
        for the matching snapshot: terms are accumulated in the exact
        order ``CostModel.time_of`` uses (exponentiations, small-exponent
        multiplications, multiplications — each ascending by modulus
        bits — then signatures, then verifications), and zero deltas are
        skipped just as ``OpCounts`` merging drops them, so the floating
        point sums agree to the last bit.
        """
        self._flush()
        exps, small_mults, mults, signatures, verifications = mark
        model, exp_cost_of, mult_cost_of = self._cost_cache
        if model is not cost_model:
            exp_cost_of, mult_cost_of = {}, {}
            self._cost_cache = (cost_model, exp_cost_of, mult_cost_of)
        total = 0.0
        for bits in sorted(self._exps):
            n = self._exps[bits] - exps.get(bits, 0)
            if n:
                cost = exp_cost_of.get(bits)
                if cost is None:
                    cost = exp_cost_of[bits] = cost_model.exp_cost(bits)
                total += n * cost
        for bits in sorted(self._small_mults):
            n = self._small_mults[bits] - small_mults.get(bits, 0)
            if n:
                cost = mult_cost_of.get(bits)
                if cost is None:
                    cost = mult_cost_of[bits] = cost_model.mult_cost(bits)
                total += n * cost
        for bits in sorted(self._mults):
            n = self._mults[bits] - mults.get(bits, 0)
            if n:
                cost = mult_cost_of.get(bits)
                if cost is None:
                    cost = mult_cost_of[bits] = cost_model.mult_cost(bits)
                total += n * cost
        total += (self._signatures - signatures) * cost_model.sign_ms
        total += (self._verifications - verifications) * cost_model.verify_ms
        return total

    def reset(self) -> None:
        """Forget all recorded work.

        Marks taken before a reset are invalidated, not rebased: a
        :meth:`charge_since` across a reset reads the post-reset counts.
        """
        self._exps.clear()
        self._small_mults.clear()
        self._mults.clear()
        self._signatures = 0
        self._verifications = 0
        self._p_exps.clear()
        self._p_small_mults.clear()
        self._p_mults.clear()
        self._p_signatures = 0
        self._p_verifications = 0
