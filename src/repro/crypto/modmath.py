"""Ledger-charged modular arithmetic over a Schnorr group.

All protocol arithmetic goes through a :class:`GroupElementContext`, which
executes real big-integer math *and* records every operation to the owning
member's :class:`~repro.crypto.ledger.OperationLedger`.  The simulator then
charges virtual CPU time for the recorded work, which is what makes the
reproduced figures track the paper's cost structure.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.rng import DeterministicRandom


class GroupElementContext:
    """Arithmetic over one Schnorr group, charged to one ledger.

    Exponent arithmetic (mod ``q``) is charged as cheap multiplications;
    element arithmetic (mod ``p``) distinguishes full exponentiations,
    small-exponent exponentiations and single multiplications, matching the
    cost taxonomy the paper's Table 1 and §5 use.
    """

    def __init__(self, group: SchnorrGroup, ledger: Optional[OperationLedger] = None):
        self.group = group
        self.ledger = ledger or OperationLedger()

    # -- element (mod p) operations -------------------------------------

    def exp(self, base: int, exponent: int) -> int:
        """Full modular exponentiation ``base^exponent mod p`` (crypto-sized exponent)."""
        self.ledger.record_exponentiation(self.group.p_bits)
        return pow(base, exponent, self.group.p)

    def exp_g(self, exponent: int) -> int:
        """``g^exponent mod p`` — blinding a secret."""
        return self.exp(self.group.g, exponent)

    def small_exp(self, base: int, exponent: int) -> int:
        """Exponentiation with a *small* exponent (e.g. BD's ``z^(i·r)`` factors).

        Charged as the square-and-multiply multiplication count, which is
        the paper's "hidden cost" of the BD protocol.
        """
        self.ledger.record_small_exponentiation(self.group.p_bits, exponent)
        return pow(base, exponent, self.group.p)

    def mul(self, a: int, b: int) -> int:
        """Modular multiplication ``a·b mod p``."""
        self.ledger.record_multiplication(self.group.p_bits)
        return (a * b) % self.group.p

    def inv_element(self, a: int) -> int:
        """Inverse of a group element mod ``p`` (used by BD's ``z_{i+1}/z_{i-1}``)."""
        self.ledger.record_multiplication(self.group.p_bits)
        return pow(a, -1, self.group.p)

    # -- exponent (mod q) operations ------------------------------------

    def exponent_product(self, a: int, b: int) -> int:
        """Exponent multiplication mod ``q`` (negligible cost: one small mult)."""
        self.ledger.record_multiplication(self.group.q_bits)
        return (a * b) % self.group.q

    def inv_exponent(self, e: int) -> int:
        """Inverse of an exponent mod ``q`` — GDH's factor-out, CKD's recovery."""
        self.ledger.record_multiplication(self.group.q_bits)
        return pow(e, -1, self.group.q)

    def random_exponent(self, rng: DeterministicRandom) -> int:
        """A fresh random session share in ``[2, q - 1]``."""
        return rng.random_exponent(self.group.q)
