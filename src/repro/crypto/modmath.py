"""Ledger-charged modular arithmetic over a Schnorr group.

All protocol arithmetic goes through a :class:`GroupElementContext`, which
executes real big-integer math *and* records every operation to the owning
member's :class:`~repro.crypto.ledger.OperationLedger`.  The simulator then
charges virtual CPU time for the recorded work, which is what makes the
reproduced figures track the paper's cost structure.

The class is deliberately split into *recorded wrappers* (the public API:
``exp``, ``exp_g``, ``mul``, …) and *raw arithmetic hooks* (``_raw_exp``,
``_raw_mul``, …).  The wrappers own all ledger accounting; the hooks own
the math.  :mod:`repro.crypto.engine` subclasses this context to swap the
hooks for symbolic (discrete-log) arithmetic while inheriting the
accounting untouched — which is exactly why symbolic runs produce
bit-identical simulated timings.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.rng import DeterministicRandom


class GroupElementContext:
    """Arithmetic over one Schnorr group, charged to one ledger.

    Exponent arithmetic (mod ``q``) is charged as cheap multiplications;
    element arithmetic (mod ``p``) distinguishes full exponentiations,
    small-exponent exponentiations and single multiplications, matching the
    cost taxonomy the paper's Table 1 and §5 use.

    ``fixed_base`` optionally carries a precomputed
    :class:`~repro.crypto.fixedbase.FixedBaseTable` for the generator,
    accelerating ``exp_g`` wall-clock (bit-identical results, identical
    ledger accounting).
    """

    def __init__(
        self,
        group: SchnorrGroup,
        ledger: Optional[OperationLedger] = None,
        fixed_base: Optional[FixedBaseTable] = None,
    ):
        self.group = group
        self.ledger = ledger or OperationLedger()
        self._fixed_base = fixed_base

    # -- element (mod p) operations: recorded wrappers -------------------

    def exp(self, base: int, exponent: int) -> int:
        """Full modular exponentiation ``base^exponent mod p`` (crypto-sized exponent)."""
        self.ledger.record_exponentiation(self.group.p_bits)
        return self._raw_exp(base, exponent)

    def exp_g(self, exponent: int) -> int:
        """``g^exponent mod p`` — blinding a secret."""
        self.ledger.record_exponentiation(self.group.p_bits)
        return self._raw_exp_g(exponent)

    def small_exp(self, base: int, exponent: int) -> int:
        """Exponentiation with a *small* exponent (e.g. BD's ``z^(i·r)`` factors).

        Charged as the square-and-multiply multiplication count, which is
        the paper's "hidden cost" of the BD protocol.
        """
        self.ledger.record_small_exponentiation(self.group.p_bits, exponent)
        return self._raw_small_exp(base, exponent)

    def mul(self, a: int, b: int) -> int:
        """Modular multiplication ``a·b mod p``."""
        self.ledger.record_multiplication(self.group.p_bits)
        return self._raw_mul(a, b)

    def inv_element(self, a: int) -> int:
        """Inverse of a group element mod ``p`` (used by BD's ``z_{i+1}/z_{i-1}``)."""
        self.ledger.record_multiplication(self.group.p_bits)
        return self._raw_inv_element(a)

    def contains(self, element) -> bool:
        """Membership test for received elements (DH validates peer values)."""
        return isinstance(element, int) and self.group.contains(element)

    # -- element (mod p) operations: raw arithmetic hooks ----------------
    #
    # Never call these directly from protocol code — they bypass the
    # ledger.  Engine implementations override them; accounting above
    # stays shared, which is what keeps symbolic timings bit-identical.

    def _raw_exp(self, base: int, exponent: int) -> int:
        return pow(base, exponent, self.group.p)

    def _raw_exp_g(self, exponent: int) -> int:
        if self._fixed_base is not None:
            return self._fixed_base.pow(exponent)
        return pow(self.group.g, exponent, self.group.p)

    def _raw_small_exp(self, base: int, exponent: int) -> int:
        return pow(base, exponent, self.group.p)

    def _raw_mul(self, a: int, b: int) -> int:
        return (a * b) % self.group.p

    def _raw_inv_element(self, a: int) -> int:
        return pow(a, -1, self.group.p)

    # -- exponent (mod q) operations ------------------------------------
    #
    # Exponents are *not* engine-dependent: both engines draw the same
    # random shares and reduce them mod q, so the streams stay aligned.

    def exponent_product(self, a: int, b: int) -> int:
        """Exponent multiplication mod ``q`` (negligible cost: one small mult)."""
        self.ledger.record_multiplication(self.group.q_bits)
        return (a * b) % self.group.q

    def inv_exponent(self, e: int) -> int:
        """Inverse of an exponent mod ``q`` — GDH's factor-out, CKD's recovery."""
        self.ledger.record_multiplication(self.group.q_bits)
        return pow(e, -1, self.group.q)

    def random_exponent(self, rng: DeterministicRandom) -> int:
        """A fresh random session share in ``[2, q - 1]``."""
        return rng.random_exponent(self.group.q)
