"""Ledger-charged modular arithmetic over a Schnorr group.

All protocol arithmetic goes through a :class:`GroupElementContext`, which
executes real big-integer math *and* records every operation to the owning
member's :class:`~repro.crypto.ledger.OperationLedger`.  The simulator then
charges virtual CPU time for the recorded work, which is what makes the
reproduced figures track the paper's cost structure.

The class is deliberately split into *recorded wrappers* (the public API:
``exp``, ``exp_g``, ``mul``, …) and *raw arithmetic hooks* (``_raw_exp``,
``_raw_mul``, …).  The wrappers own all ledger accounting; the hooks own
the math.  :mod:`repro.crypto.engine` subclasses this context to swap the
hooks for symbolic (discrete-log) arithmetic while inheriting the
accounting untouched — which is exactly why symbolic runs produce
bit-identical simulated timings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crypto.bignum import BackendSpec, get_backend
from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import SchnorrGroup
from repro.crypto.ledger import OperationLedger
from repro.crypto.rng import DeterministicRandom


def sliding_window_pow(
    base: int,
    exponent: int,
    modulus: int,
    window: int = 4,
    backend: BackendSpec = None,
) -> int:
    """``base^exponent mod modulus`` via a sliding window over odd powers.

    The variable-base complement of
    :class:`~repro.crypto.fixedbase.FixedBaseTable`: the per-call table
    holds only the odd powers ``base^1, base^3, …, base^(2^window - 1)``,
    and runs of zero exponent bits cost squarings alone.  Bit-identical
    to the built-in ``pow`` (to which negative exponents fall back).
    """
    if exponent < 0:
        chosen = get_backend(backend)
        return chosen.unwrap(chosen.powmod(base, exponent, modulus))
    return multi_exp(((base, exponent),), modulus, window=window, backend=backend)


def multi_exp(
    pairs: Sequence[Tuple[int, int]],
    modulus: int,
    window: int = 4,
    backend: BackendSpec = None,
) -> int:
    """``prod b_i^{e_i} mod modulus`` — Shamir/Straus simultaneous
    exponentiation with per-base sliding windows.

    One shared square ladder serves every base: each exponent is
    decomposed (least-significant first) into odd ``window``-bit digits
    separated by free runs of zeros, and the ladder multiplies each
    digit's table entry in at its shift.  For ``k`` bases with
    ``b``-bit exponents that is ``~b`` squarings total instead of
    ``~b·k``, which is what makes products of many powers (a general
    weighted product of broadcast elements) cheaper than exponentiating
    factor by factor.  Exponents must be non-negative.

    The ladder runs on the selected bignum backend (table entries and
    the accumulator stay in native representation); the returned value
    is always a plain ``int``, identical for every backend.
    """
    chosen = get_backend(backend)
    wrap = chosen.wrap
    wmod = wrap(modulus)
    filtered = [(wrap(b) % wmod, e) for b, e in pairs if e > 0]
    if any(e < 0 for _, e in pairs):
        raise ValueError("multi_exp requires non-negative exponents")
    if not filtered:
        return chosen.unwrap(wrap(1) % wmod)
    mask = (1 << window) - 1
    # Odd-power tables: tables[i][t] == b_i^(2t+1) mod modulus.
    tables: List[List] = []
    for b, _ in filtered:
        b_sq = b * b % wmod
        row = [b]
        for _ in range((1 << (window - 1)) - 1):
            row.append(row[-1] * b_sq % wmod)
        tables.append(row)
    # Sliding-window digit placement, LSB first: per base, a list of
    # (shift, odd digit) covering the exponent exactly.
    by_shift: dict = {}
    top = 0
    for i, (_, e) in enumerate(filtered):
        shift = 0
        while e:
            if e & 1:
                digit = e & mask
                by_shift.setdefault(shift, []).append((i, digit >> 1))
                e >>= window
                shift += window
            else:
                run = (e & -e).bit_length() - 1
                e >>= run
                shift += run
        top = max(top, shift)
    # One shared ladder, MSB down: square once per bit position, fold in
    # every base's digit at its shift.
    acc = wrap(1)
    for position in range(top, -1, -1):
        acc = acc * acc % wmod
        for i, index in by_shift.get(position, ()):
            acc = acc * tables[i][index] % wmod
    return chosen.unwrap(acc)


def batch_exp(
    base: int,
    exponents: Sequence[int],
    modulus: int,
    window: int = 4,
    backend: BackendSpec = None,
) -> List[int]:
    """``[base^e mod modulus for e in exponents]`` over one odd-power table.

    The shared-base batching primitive for epoch-level callers (GDH's
    upflow lifts one accumulated value by many members' exponents): the
    odd powers ``base^1, base^3, …`` are computed once and every
    exponent reuses them, amortizing the table across the batch.  Each
    value is bit-identical to the built-in ``pow``; exponents must be
    non-negative.
    """
    if any(e < 0 for e in exponents):
        raise ValueError("batch_exp requires non-negative exponents")
    chosen = get_backend(backend)
    wrap = chosen.wrap
    unwrap = chosen.unwrap
    wmod = wrap(modulus)
    if not exponents:
        return []
    one = unwrap(wrap(1) % wmod)
    b = wrap(base) % wmod
    mask = (1 << window) - 1
    b_sq = b * b % wmod
    row = [b]
    for _ in range((1 << (window - 1)) - 1):
        row.append(row[-1] * b_sq % wmod)
    results: List[int] = []
    for e in exponents:
        if e == 0:
            results.append(one)
            continue
        # LSB-first digit placement, then one MSB-down ladder — the
        # single-base specialization of :func:`multi_exp`.
        digits: List[Tuple[int, int]] = []
        shift = 0
        while e:
            if e & 1:
                digit = e & mask
                digits.append((shift, digit >> 1))
                e >>= window
                shift += window
            else:
                run = (e & -e).bit_length() - 1
                e >>= run
                shift += run
        by_shift = dict(digits)
        acc = wrap(1)
        for position in range(shift, -1, -1):
            acc = acc * acc % wmod
            index = by_shift.get(position)
            if index is not None:
                acc = acc * row[index] % wmod
        results.append(unwrap(acc))
    return results


class GroupElementContext:
    """Arithmetic over one Schnorr group, charged to one ledger.

    Exponent arithmetic (mod ``q``) is charged as cheap multiplications;
    element arithmetic (mod ``p``) distinguishes full exponentiations,
    small-exponent exponentiations and single multiplications, matching the
    cost taxonomy the paper's Table 1 and §5 use.

    ``fixed_base`` optionally carries a precomputed
    :class:`~repro.crypto.fixedbase.FixedBaseTable` for the generator,
    accelerating ``exp_g`` wall-clock (bit-identical results, identical
    ledger accounting).
    """

    def __init__(
        self,
        group: SchnorrGroup,
        ledger: Optional[OperationLedger] = None,
        fixed_base: Optional[FixedBaseTable] = None,
        backend: BackendSpec = None,
    ):
        self.group = group
        self.ledger = ledger or OperationLedger()
        self._fixed_base = fixed_base
        self._backend = get_backend(backend)

    # -- element (mod p) operations: recorded wrappers -------------------

    def exp(self, base: int, exponent: int) -> int:
        """Full modular exponentiation ``base^exponent mod p`` (crypto-sized exponent)."""
        self.ledger.record_exponentiation(self.group.p_bits)
        return self._raw_exp(base, exponent)

    def exp_g(self, exponent: int) -> int:
        """``g^exponent mod p`` — blinding a secret."""
        self.ledger.record_exponentiation(self.group.p_bits)
        return self._raw_exp_g(exponent)

    def small_exp(self, base: int, exponent: int) -> int:
        """Exponentiation with a *small* exponent (e.g. BD's ``z^(i·r)`` factors).

        Charged as the square-and-multiply multiplication count, which is
        the paper's "hidden cost" of the BD protocol.
        """
        self.ledger.record_small_exponentiation(self.group.p_bits, exponent)
        return self._raw_small_exp(base, exponent)

    def mul(self, a: int, b: int) -> int:
        """Modular multiplication ``a·b mod p``."""
        self.ledger.record_multiplication(self.group.p_bits)
        return self._raw_mul(a, b)

    def inv_element(self, a: int) -> int:
        """Inverse of a group element mod ``p`` (used by BD's ``z_{i+1}/z_{i-1}``)."""
        self.ledger.record_multiplication(self.group.p_bits)
        return self._raw_inv_element(a)

    def weighted_product(
        self, start: int, pairs: Sequence[Tuple[int, int]]
    ) -> int:
        """``start · f_0^{w_0} · f_1^{w_1} ··· mod p`` for small weights.

        Charged exactly as the textbook factor-by-factor loop — one
        small-exponent exponentiation (its square-and-multiply
        multiplication count) plus one fold-in multiplication per factor
        — so replacing such a loop with this call never changes a ledger
        delta or a simulated time.  Only the raw computation is faster:
        BD's key derivation is the motivating caller, and its descending
        weight run ``n-1 … 1`` collapses to ~2 multiplications per
        factor via the prefix-product identity (see the raw hook).
        """
        record_small = self.ledger.record_small_exponentiation
        record_mult = self.ledger.record_multiplication
        p_bits = self.group.p_bits
        for _, weight in pairs:
            record_small(p_bits, weight)
            record_mult(p_bits)
        return self._raw_weighted_product(start, pairs)

    def contains(self, element) -> bool:
        """Membership test for received elements (DH validates peer values)."""
        return isinstance(element, int) and self.group.contains(element)

    # -- element (mod p) operations: raw arithmetic hooks ----------------
    #
    # Never call these directly from protocol code — they bypass the
    # ledger.  Engine implementations override them; accounting above
    # stays shared, which is what keeps symbolic timings bit-identical.

    def _raw_exp(self, base: int, exponent: int) -> int:
        backend = self._backend
        return backend.unwrap(backend.powmod(base, exponent, self.group.p))

    def _raw_exp_g(self, exponent: int) -> int:
        if self._fixed_base is not None:
            return self._fixed_base.pow(exponent)
        backend = self._backend
        return backend.unwrap(
            backend.powmod(self.group.g, exponent, self.group.p)
        )

    def _raw_small_exp(self, base: int, exponent: int) -> int:
        backend = self._backend
        return backend.unwrap(backend.powmod(base, exponent, self.group.p))

    def _raw_mul(self, a: int, b: int) -> int:
        backend = self._backend
        return backend.unwrap(backend.mulmod(a, b, self.group.p))

    def _raw_inv_element(self, a: int) -> int:
        backend = self._backend
        return backend.unwrap(backend.invmod(a, self.group.p))

    def _raw_weighted_product(
        self, start: int, pairs: Sequence[Tuple[int, int]]
    ) -> int:
        """The math behind :meth:`weighted_product`.

        A descending weight run ``m, m-1, …, 1`` (BD's shape) uses the
        prefix-product identity ``prod f_j^{m-j} = prod_t (f_0···f_t)``
        — every factor then costs two plain multiplications instead of a
        square-and-multiply ladder.  Any other shape goes through
        :func:`multi_exp` (Straus), which shares one square ladder
        across all factors.  Both are ordinary modular arithmetic, so
        the result is bit-identical to the factor-by-factor loop.
        """
        m = len(pairs)
        if m == 0:
            return start
        if all(weight == m - j for j, (_, weight) in enumerate(pairs)):
            result = start
            prefix = None
            for factor, _ in pairs:
                prefix = (
                    factor if prefix is None else self._raw_mul(prefix, factor)
                )
                result = self._raw_mul(result, prefix)
            return result
        return self._raw_mul(
            start, multi_exp(pairs, self.group.p, backend=self._backend)
        )

    # -- exponent (mod q) operations ------------------------------------
    #
    # Exponents are *not* engine-dependent: both engines draw the same
    # random shares and reduce them mod q, so the streams stay aligned.

    def exponent_product(self, a: int, b: int) -> int:
        """Exponent multiplication mod ``q`` (negligible cost: one small mult)."""
        self.ledger.record_multiplication(self.group.q_bits)
        return (a * b) % self.group.q

    def inv_exponent(self, e: int) -> int:
        """Inverse of an exponent mod ``q`` — GDH's factor-out, CKD's recovery."""
        self.ledger.record_multiplication(self.group.q_bits)
        return pow(e, -1, self.group.q)

    def random_exponent(self, rng: DeterministicRandom) -> int:
        """A fresh random session share in ``[2, q - 1]``."""
        return rng.random_exponent(self.group.q)
