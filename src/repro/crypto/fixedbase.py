"""Fixed-base exponentiation with windowed precomputed tables.

Every protocol in the paper blinds secrets with the *same* base — the
group generator ``g`` — thousands of times per run.  A classic fixed-base
windowed table (Menezes et al., Handbook of Applied Cryptography §14.6.3)
trades a one-time precomputation for a large constant-factor speedup on
each subsequent ``g^e mod p``: the exponent is split into ``w``-bit
digits and the result assembled as a product of table entries, costing
about ``ceil(e_bits / w)`` modular multiplications instead of a full
square-and-multiply ladder.

The result is bit-identical to ``pow(g, e, p)`` — only wall-clock time
changes, never the simulated timings (those come from the
:class:`~repro.crypto.ledger.OperationLedger`, which still records one
full exponentiation per call).
"""

from __future__ import annotations


class FixedBaseTable:
    """Precomputed powers of one base for ``w``-bit windowed exponentiation.

    ``table[j][d]`` holds ``base^(d << (j * window)) mod p`` for every
    window index ``j`` and digit ``d`` in ``[0, 2^window)``, covering
    exponents up to ``max_bits`` bits.  Exponents outside that range (or
    negative ones) transparently fall back to the built-in ``pow``.
    """

    def __init__(self, p: int, base: int, max_bits: int, window: int = 5):
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_bits < 1:
            raise ValueError("max_bits must be at least 1")
        self.p = p
        self.base = base
        self.window = window
        self.max_bits = max_bits
        self.windows = -(-max_bits // window)  # ceil
        radix = 1 << window
        self._digit_mask = radix - 1
        table = []
        # base^(1 << (j * window)), advanced window by window.
        block_base = base % p
        for _ in range(self.windows):
            row = [1] * radix
            acc = 1
            for digit in range(1, radix):
                acc = (acc * block_base) % p
                row[digit] = acc
            table.append(row)
            # next block's unit: this block's top entry times block_base.
            block_base = (row[radix - 1] * block_base) % p
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod p``, bit-identical to the built-in ``pow``."""
        if exponent < 0 or exponent.bit_length() > self.max_bits:
            return pow(self.base, exponent, self.p)
        p = self.p
        mask = self._digit_mask
        window = self.window
        result = 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * self._table[index][digit]) % p
            exponent >>= window
            index += 1
        return result
