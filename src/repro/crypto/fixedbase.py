"""Fixed-base exponentiation with windowed precomputed tables.

Every protocol in the paper blinds secrets with the *same* base — the
group generator ``g`` — thousands of times per run.  A classic fixed-base
windowed table (Menezes et al., Handbook of Applied Cryptography §14.6.3)
trades a one-time precomputation for a large constant-factor speedup on
each subsequent ``g^e mod p``: the exponent is split into ``w``-bit
digits and the result assembled as a product of table entries, costing
about ``ceil(e_bits / w)`` modular multiplications instead of a full
square-and-multiply ladder.

The table stores its entries in the bignum backend's native
representation (``mpz`` under gmpy2), so the per-call multiplications
run entirely in compiled code; results are lowered back to plain
``int`` before they leave.

The result is bit-identical to ``pow(g, e, p)`` — only wall-clock time
changes, never the simulated timings (those come from the
:class:`~repro.crypto.ledger.OperationLedger`, which still records one
full exponentiation per call).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.bignum import BackendSpec, get_backend


class FixedBaseTable:
    """Precomputed powers of one base for ``w``-bit windowed exponentiation.

    ``table[j][d]`` holds ``base^(d << (j * window)) mod p`` for every
    window index ``j`` and digit ``d`` in ``[0, 2^window)``, covering
    exponents up to ``max_bits`` bits.  Exponents outside that range (or
    negative ones) transparently fall back to the backend's plain
    ``powmod``.
    """

    def __init__(
        self,
        p: int,
        base: int,
        max_bits: int,
        window: int = 5,
        backend: BackendSpec = None,
    ):
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_bits < 1:
            raise ValueError("max_bits must be at least 1")
        self.p = p
        self.base = base
        self.window = window
        self.max_bits = max_bits
        self.windows = -(-max_bits // window)  # ceil
        self.backend = get_backend(backend)
        radix = 1 << window
        self._digit_mask = radix - 1
        wrap = self.backend.wrap
        wp = wrap(p)
        self._wp = wp
        table = []
        # base^(1 << (j * window)), advanced window by window.
        block_base = wrap(base) % wp
        for _ in range(self.windows):
            one = wrap(1)
            row = [one] * radix
            acc = one
            for digit in range(1, radix):
                acc = acc * block_base % wp
                row[digit] = acc
            table.append(row)
            # next block's unit: this block's top entry times block_base.
            block_base = row[radix - 1] * block_base % wp
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod p``, bit-identical to the built-in ``pow``."""
        backend = self.backend
        if exponent < 0 or exponent.bit_length() > self.max_bits:
            return backend.unwrap(backend.powmod(self.base, exponent, self.p))
        wp = self._wp
        mask = self._digit_mask
        window = self.window
        table = self._table
        result = None
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                entry = table[index][digit]
                result = entry if result is None else result * entry % wp
            exponent >>= window
            index += 1
        if result is None:
            return backend.unwrap(backend.wrap(1) % wp)
        return backend.unwrap(result)

    def pow_many(self, exponents: Sequence[int]) -> List[int]:
        """``[base^e mod p for e in exponents]`` over one shared table.

        The batched entry point for epoch-level callers: one attribute
        lookup per batch instead of per call, same bit-identical values.
        """
        return [self.pow(exponent) for exponent in exponents]
