"""Optional compiled bignum backends behind one tiny seam.

The real engine's wall-clock cost is dominated by modular
exponentiation over ``p``.  CPython's ``pow`` is a fine baseline, but a
GMP-backed path (``gmpy2.powmod`` over ``mpz``) computes the *same*
integers several times faster.  This module is the seam between the two:

:class:`PythonBackend`
    The always-available fallback — plain builtins, zero dependencies.
    Tier-1 CI runs exclusively on this backend.

:class:`Gmpy2Backend`
    Available only when :mod:`gmpy2` is importable.  Operands are lifted
    to ``mpz`` (:meth:`wrap`) and every public result is lowered back to
    ``int`` (:meth:`unwrap`), so nothing downstream — pickling, message
    serialization, ``isinstance(x, int)`` membership checks — can ever
    observe the backend.

Both backends compute identical values on identical inputs (GMP and
CPython implement the same mathematics), so swapping backends is
behavior-transparent end to end: the ``bignum-identity`` CI job pins
this by running the same sweep under each backend and ``cmp``-ing the
artifacts byte for byte.

Selection order for :func:`get_backend`: an explicit argument (e.g. the
``backend=`` keyword of :class:`~repro.crypto.engine.RealEngine`) wins;
otherwise the ``REPRO_BIGNUM`` environment variable (``auto`` /
``gmpy2`` / ``python``); ``auto`` — the default — uses gmpy2 when
importable and pure python otherwise.
"""

from __future__ import annotations

import os
from typing import Optional, Union

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the tier-1 path
    _gmpy2 = None

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_BIGNUM"


class BignumBackend:
    """Interface: modular arithmetic on (possibly wrapped) integers.

    ``wrap`` lifts an ``int`` into the backend's native representation
    for repeated use (precomputed tables, accumulators); ``unwrap``
    lowers any backend value back to a plain ``int``.  The ``*mod``
    methods accept either representation and return backend-native
    values — callers that hand results to protocol code must ``unwrap``.
    """

    name: str = "?"

    def wrap(self, value: int):
        raise NotImplementedError

    def unwrap(self, value) -> int:
        raise NotImplementedError

    def powmod(self, base, exponent, modulus):
        raise NotImplementedError

    def mulmod(self, a, b, modulus):
        raise NotImplementedError

    def invmod(self, a, modulus):
        """Modular inverse; raises ``ValueError`` when not invertible."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PythonBackend(BignumBackend):
    """Pure-python builtins — the always-available fallback."""

    name = "python"

    def wrap(self, value: int) -> int:
        return value

    def unwrap(self, value) -> int:
        return value

    def powmod(self, base, exponent, modulus):
        return pow(base, exponent, modulus)

    def mulmod(self, a, b, modulus):
        return (a * b) % modulus

    def invmod(self, a, modulus):
        return pow(a, -1, modulus)


class Gmpy2Backend(BignumBackend):
    """GMP-backed arithmetic via :mod:`gmpy2` (optional extra)."""

    name = "gmpy2"

    def __init__(self):
        if _gmpy2 is None:
            raise RuntimeError(
                "gmpy2 is not installed; install the optional extra "
                "(pip install 'repro[fast]') or select the python "
                "backend"
            )
        self._mpz = _gmpy2.mpz
        self._powmod = _gmpy2.powmod
        self._invert = _gmpy2.invert

    def wrap(self, value: int):
        return self._mpz(value)

    def unwrap(self, value) -> int:
        return int(value)

    def powmod(self, base, exponent, modulus):
        if exponent < 0:
            # gmpy2.powmod handles negative exponents, but raises a
            # ZeroDivisionError where pow raises ValueError; normalize.
            base = self.invmod(base, modulus)
            exponent = -exponent
        return self._powmod(base, exponent, modulus)

    def mulmod(self, a, b, modulus):
        return self._mpz(a) * b % modulus

    def invmod(self, a, modulus):
        try:
            return self._invert(self._mpz(a), modulus)
        except ZeroDivisionError:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from None


#: The process-wide backend instances (gmpy2's is created lazily so the
#: import error surfaces only when the backend is actually requested).
PYTHON_BACKEND = PythonBackend()
_GMPY2_BACKEND: Optional[Gmpy2Backend] = None

BackendSpec = Union[None, str, BignumBackend]


def gmpy2_available() -> bool:
    """Whether the compiled backend can be used in this interpreter."""
    return _gmpy2 is not None


def available_backends() -> tuple:
    """Names accepted by :func:`get_backend`, always-available first."""
    names = (PythonBackend.name,)
    if gmpy2_available():
        names = names + (Gmpy2Backend.name,)
    return names


def _gmpy2_backend() -> Gmpy2Backend:
    global _GMPY2_BACKEND
    if _GMPY2_BACKEND is None:
        _GMPY2_BACKEND = Gmpy2Backend()
    return _GMPY2_BACKEND


def get_backend(which: BackendSpec = None) -> BignumBackend:
    """Resolve a backend spec: instance, name, or ``None`` (env / auto).

    ``None`` consults ``REPRO_BIGNUM`` (``auto`` when unset).  ``auto``
    prefers gmpy2 when importable and silently falls back to python;
    naming ``gmpy2`` explicitly raises when it is missing, so a CI job
    that *requires* the compiled path can never silently degrade.
    """
    if isinstance(which, BignumBackend):
        return which
    if which is None:
        which = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if which == "auto":
        return _gmpy2_backend() if gmpy2_available() else PYTHON_BACKEND
    if which == PythonBackend.name:
        return PYTHON_BACKEND
    if which == Gmpy2Backend.name:
        if not gmpy2_available():
            raise ValueError(
                "bignum backend 'gmpy2' requested but gmpy2 is not "
                "importable; pip install 'repro[fast]' or select "
                "'python'/'auto'"
            )
        return _gmpy2_backend()
    raise ValueError(
        f"unknown bignum backend {which!r}; expected one of "
        f"('auto', 'python', 'gmpy2') or a BignumBackend instance"
    )


def backend_info() -> dict:
    """Diagnostics for logs and ``bench`` banners (never in artifacts)."""
    return {
        "available": list(available_backends()),
        "env": os.environ.get(ENV_VAR),
        "selected": get_backend().name,
    }
