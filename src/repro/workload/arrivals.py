"""Deterministic arrival processes for sustained membership churn.

Each generator emits a finite, time-ordered stream of
:class:`ChurnEvent` — *when* which group gains or loses a member — from
nothing but its parameters and a seed, using a private
:class:`random.Random` instance so the stream is reproducible across
runs, processes and Python versions.  Inter-arrival gaps are computed as
``-log(1 - u) / rate`` directly from uniform draws rather than through
``Random.expovariate`` so the arithmetic is pinned down by this module,
not by stdlib implementation details.

Feasibility is decided at *generation* time: the generator tracks each
group's virtual population (starting at the settled group size) and only
emits a leave while the group stays above ``min_members``, so the engine
replaying the stream never has to skip an event.  Joins are always
feasible; the generators merely cap steady-state growth at
``max_members`` to keep runs bounded — the flash-crowd burst
deliberately ignores that cap, because overshooting is the scenario.

The four processes:

* :func:`poisson_stream` — memoryless steady-state churn at a constant
  rate, the baseline of the dynamic-group literature.
* :func:`flash_stream` — the Poisson background plus a tightly packed
  burst of joins at one instant (a flash crowd hitting every group).
* :func:`diurnal_stream` — a non-homogeneous Poisson process whose rate
  follows a sinusoidal day/night cycle, sampled by thinning.
* :func:`trace_stream` — replay of an explicit event list, validated
  and time-ordered.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: The two things a churn event can do to a group.
CHURN_ACTIONS = ("join", "leave")

#: Every arrival process a :class:`~repro.workload.spec.WorkloadSpec`
#: may name.
ARRIVALS = ("diurnal", "flash", "poisson", "trace")

#: Relative swing of the diurnal rate around its mean (±90 %).
DIURNAL_AMPLITUDE = 0.9

#: Gap between consecutive joins inside a flash burst, virtual ms.
FLASH_SPACING_MS = 1.0


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: at ``at_ms`` (relative to the start of the
    sustained phase), group ``group`` gains or loses a member."""

    at_ms: float
    group: int
    action: str

    def __post_init__(self):
        if self.action not in CHURN_ACTIONS:
            raise ValueError(
                f"unknown churn action {self.action!r}; "
                f"choose from {list(CHURN_ACTIONS)}"
            )
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.group < 0:
            raise ValueError("group must be a non-negative index")

    def to_dict(self) -> dict:
        return {"at_ms": self.at_ms, "group": self.group, "action": self.action}

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnEvent":
        try:
            return cls(
                at_ms=float(data["at_ms"]),
                group=int(data["group"]),
                action=data["action"],
            )
        except KeyError as missing:
            raise ValueError(
                f"churn event entry missing {missing.args[0]!r}: {data}"
            ) from None


def _pick_action(
    rng: random.Random,
    populations: List[int],
    group: int,
    min_members: int,
    max_members: int,
) -> Optional[str]:
    """Choose join/leave for ``group`` subject to feasibility, updating
    the virtual population; None when the group is pinned at both bounds."""
    population = populations[group]
    can_join = population < max_members
    can_leave = population > min_members
    if can_join and can_leave:
        action = "join" if rng.random() < 0.5 else "leave"
    elif can_join:
        action = "join"
    elif can_leave:
        action = "leave"
    else:
        return None
    populations[group] += 1 if action == "join" else -1
    return action


def poisson_stream(
    groups: int,
    group_size: int,
    rate_hz: float,
    duration_ms: float,
    seed: int,
    min_members: int = 2,
    max_members: Optional[int] = None,
) -> Tuple[ChurnEvent, ...]:
    """Steady-state churn: one Poisson process at ``rate_hz`` events/s
    across all groups, each event hitting a uniformly random group."""
    cap = 2 * group_size if max_members is None else max_members
    rng = random.Random(seed)
    populations = [group_size] * groups
    scale_ms = 1000.0 / rate_hz
    events: List[ChurnEvent] = []
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) * scale_ms
        if t >= duration_ms:
            return tuple(events)
        group = rng.randrange(groups)
        action = _pick_action(rng, populations, group, min_members, cap)
        if action is not None:
            events.append(ChurnEvent(t, group, action))


def flash_stream(
    groups: int,
    group_size: int,
    rate_hz: float,
    duration_ms: float,
    seed: int,
    min_members: int = 2,
    max_members: Optional[int] = None,
    burst_at_ms: Optional[float] = None,
    burst_joins: Optional[int] = None,
) -> Tuple[ChurnEvent, ...]:
    """Flash crowd: the Poisson background plus ``burst_joins`` joins
    packed :data:`FLASH_SPACING_MS` apart starting at ``burst_at_ms``
    (default: mid-run), round-robined over the groups.

    The burst only *adds* members, so merging it into the background
    stream cannot invalidate any background leave's feasibility.
    """
    at = duration_ms / 2.0 if burst_at_ms is None else burst_at_ms
    joins = 2 * groups if burst_joins is None else burst_joins
    background = poisson_stream(
        groups, group_size, rate_hz, duration_ms, seed,
        min_members=min_members, max_members=max_members,
    )
    burst = [
        ChurnEvent(at + j * FLASH_SPACING_MS, j % groups, "join")
        for j in range(joins)
    ]
    return tuple(sorted(background + tuple(burst), key=lambda e: e.at_ms))


def diurnal_stream(
    groups: int,
    group_size: int,
    rate_hz: float,
    duration_ms: float,
    seed: int,
    min_members: int = 2,
    max_members: Optional[int] = None,
    period_ms: Optional[float] = None,
) -> Tuple[ChurnEvent, ...]:
    """Diurnal cycle: a non-homogeneous Poisson process whose rate swings
    sinusoidally around ``rate_hz`` with period ``period_ms`` (default:
    one full cycle over the run), sampled by thinning against the peak
    rate so the accept/reject draws stay seed-deterministic."""
    cap = 2 * group_size if max_members is None else max_members
    period = duration_ms if period_ms is None else period_ms
    peak_hz = rate_hz * (1.0 + DIURNAL_AMPLITUDE)
    rng = random.Random(seed)
    populations = [group_size] * groups
    scale_ms = 1000.0 / peak_hz
    events: List[ChurnEvent] = []
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) * scale_ms
        if t >= duration_ms:
            return tuple(events)
        rate_now = rate_hz * (
            1.0 + DIURNAL_AMPLITUDE * math.sin(2.0 * math.pi * t / period)
        )
        if rng.random() * peak_hz >= rate_now:
            continue  # thinned: the candidate falls outside λ(t)
        group = rng.randrange(groups)
        action = _pick_action(rng, populations, group, min_members, cap)
        if action is not None:
            events.append(ChurnEvent(t, group, action))


def trace_stream(
    trace: Iterable,
    groups: Optional[int] = None,
) -> Tuple[ChurnEvent, ...]:
    """Replay an explicit event list (dicts or :class:`ChurnEvent`),
    validated and sorted by time.  ``groups``, when given, bounds the
    group indices the trace may reference."""
    events: List[ChurnEvent] = []
    for entry in trace:
        event = entry if isinstance(entry, ChurnEvent) else ChurnEvent.from_dict(entry)
        if groups is not None and event.group >= groups:
            raise ValueError(
                f"trace references group {event.group} but the workload "
                f"has only {groups} groups"
            )
        events.append(event)
    return tuple(sorted(events, key=lambda e: e.at_ms))


def stream_populations(
    events: Sequence[ChurnEvent], groups: int, group_size: int
) -> List[int]:
    """Replay a stream's population arithmetic: final member count per
    group.  Used by tests to assert the feasibility invariant."""
    populations = [group_size] * groups
    for event in events:
        populations[event.group] += 1 if event.action == "join" else -1
    return populations
