"""The multi-group sustained-churn driver.

A :class:`WorkloadEngine` takes a :class:`~repro.workload.spec.WorkloadSpec`
and drives it on one simulated testbed: every group is grown to its
steady-state size with a single batched rekey, the churn stream and any
composed fault schedule are installed as ordinary simulator events
(relative to the same base instant), and the run proceeds until the
event queue drains.  Groups are staggered across the testbed machines so
hundreds of groups multiplex the same daemons instead of piling onto
machine 0 — the "different groups, different protocols, one framework"
deployment of the paper, at scale.

Measurement rides the existing observability substrate: each member's
key install records into the ``member.rekey_ms`` log histogram (only
epochs of the *sustained* phase — the registry is cleared after growth),
and the engine merges every group's histogram into one exact
per-(protocol, arrival) aggregate for p50/p95/p99.  Throughput is
member-epochs per virtual second over the sustained window;
``converge_ms`` is the quiet tail between the last injection (churn or
fault) and the instant the simulator went idle — the time-to-converge
after the storm.

Everything downstream of the seed is deterministic: same spec, same
substrate ⇒ a bit-identical :class:`WorkloadResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Union

from repro.bench.harness import LARGE_RUN_MAX_EVENTS, grow_group_batched
from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import TESTBEDS, Topology
from repro.obs.histo import LogHistogram
from repro.workload.spec import WorkloadSpec

#: Epoch-watchdog timeout armed by default for every workload run (same
#: value as the chaos benchmark: comfortably above a clean rekey, far
#: below the livelock guard).  Sustained churn stalls rekeys even on a
#: fault-free network — cascaded events interrupt agreements mid-flight
#: — so unlike single-event benchmarks the watchdog is not optional here.
DEFAULT_STALL_TIMEOUT_MS = 400.0


@dataclass
class WorkloadResult:
    """Everything one sustained run reports, JSON-ready."""

    protocol: str
    arrival: str
    groups: int
    group_size: int
    seed: int
    topology: str
    engine: str
    events: int
    joins: int
    leaves: int
    skipped: int
    member_epochs: int
    duration_ms: float
    last_injection_ms: float
    makespan_ms: float
    converge_ms: float
    throughput_eps: float
    rekey_p50_ms: float
    rekey_p95_ms: float
    rekey_p99_ms: float
    rekey_mean_ms: float
    rekey_max_ms: float
    stalls: int
    restarts: int
    converged_groups: int

    @property
    def converged(self) -> bool:
        """Did every group end on one confirmed shared key?"""
        return self.converged_groups == self.groups

    def to_dict(self) -> dict:
        data = {field.name: getattr(self, field.name) for field in fields(self)}
        data["converged"] = self.converged
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadResult":
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def group_converged(members: List) -> bool:
    """True when every member has settled on the same view, holds a key
    for exactly that view, and all the keys agree (the chaos benchmark's
    confirmed-shared-key bar, per group)."""
    if not members:
        return False
    views = {m.protocol.view.view_id if m.protocol.view else None for m in members}
    if len(views) != 1 or None in views:
        return False
    if any(not m.protocol.done_for(m.protocol.view) for m in members):
        return False
    return len({m.protocol.key for m in members}) == 1


class WorkloadEngine:
    """One sustained run on one framework; see the module docstring.

    The engine is usable in two layers: :func:`run_workload` for the
    one-call benchmark path, or construct-then-:meth:`run` when a test
    wants to inspect the live rosters and framework afterwards (the
    multi-group key-isolation test does).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        topology: Union[str, Callable[[], Topology]] = "lan",
        dh_group: str = "dh-512",
        engine=None,
        stall_timeout_ms: Optional[float] = DEFAULT_STALL_TIMEOUT_MS,
        max_events: int = LARGE_RUN_MAX_EVENTS,
    ):
        if isinstance(topology, str):
            if topology not in TESTBEDS:
                raise ValueError(
                    f"unknown topology {topology!r}; "
                    f"choose from {sorted(TESTBEDS)}"
                )
            topology = TESTBEDS[topology]
        self.spec = spec
        self.max_events = int(max_events)
        self.framework = SecureSpreadFramework(
            topology(),
            default_protocol=spec.protocol,
            dh_group=dh_group,
            seed=spec.seed,
            observe=True,
            engine=engine,
            stall_timeout_ms=stall_timeout_ms,
        )
        #: live members per group index, maintained through churn
        self.rosters: Dict[int, List] = {}
        self.joins = self.leaves = self.skipped = 0
        self._machines = self.framework.transport.machine_count()
        self._next_machine = 0
        self._joiner_serial = [0] * spec.groups
        # Victim picks draw from a stream separate from the arrival
        # seed so changing the arrival process cannot reshuffle them.
        self._victim_rng = random.Random((spec.seed << 1) ^ 0x9E3779B9)
        self._base_ms = 0.0
        self._last_injection_ms = 0.0

    def group_name(self, group: int) -> str:
        return f"g{group}"

    # -- phases -------------------------------------------------------------

    def populate(self) -> None:
        """Grow every group to its steady-state size (one batched rekey
        per group), staggered over the machines, then zero the metrics so
        percentiles cover only the sustained phase."""
        spec = self.spec
        machines = self._machines
        for group in range(spec.groups):
            offset = group * spec.group_size
            grow_group_batched(
                self.framework,
                spec.group_size,
                prefix=f"g{group}.m",
                group_name=self.group_name(group),
                max_events=self.max_events,
                machine_of=lambda i, offset=offset: (offset + i) % machines,
            )
            self.rosters[group] = list(
                self.framework.members_of(self.group_name(group))
            )
        self._next_machine = spec.groups * spec.group_size
        self.framework.obs.metrics.clear()

    def inject(self) -> int:
        """Schedule the churn stream and the composed fault schedule,
        both relative to "now"; returns the number of churn events."""
        spec = self.spec
        events = spec.events()
        sim = self.framework.world.sim
        base = sim.now
        self._base_ms = base
        last = 0.0
        for event in events:
            last = max(last, event.at_ms)
            if event.action == "join":
                serial = self._joiner_serial[event.group]
                self._joiner_serial[event.group] = serial + 1
                name = f"{self.group_name(event.group)}.c{serial}"
                machine = self._next_machine % self._machines
                self._next_machine += 1
                sim.schedule_at(
                    base + event.at_ms, self._do_join, event.group, name, machine
                )
            else:
                sim.schedule_at(base + event.at_ms, self._do_leave, event.group)
        schedule = spec.fault_schedule()
        if len(schedule):
            schedule.install(self.framework)
            last = max(last, max(e.at_ms for e in schedule))
        self._last_injection_ms = last
        return len(events)

    def _do_join(self, group: int, name: str, machine: int) -> None:
        self.framework.mark_event()
        member = self.framework.member(name, machine, self.group_name(group))
        member.join()
        self.rosters[group].append(member)
        self.joins += 1

    def _do_leave(self, group: int) -> None:
        roster = self.rosters[group]
        if len(roster) <= self.spec.min_members:
            # Unreachable for generated streams (feasibility is decided
            # at generation time); composed fault churn can get here.
            self.skipped += 1
            return
        victim = roster.pop(self._victim_rng.randrange(len(roster)))
        self.framework.mark_event()
        victim.leave()
        self.leaves += 1

    # -- the run ------------------------------------------------------------

    def merged_histogram(self) -> LogHistogram:
        """All groups' ``member.rekey_ms`` histograms folded into one
        exact aggregate (integer buckets + fsum totals, so the fold is
        order-independent like every pool merge)."""
        merged = LogHistogram(
            "load.rekey_ms",
            (("arrival", self.spec.arrival), ("protocol", self.spec.protocol)),
        )
        for histogram in self.framework.obs.metrics.log_histograms():
            if histogram.name == "member.rekey_ms":
                merged.merge(
                    histogram.buckets, histogram.zero_count, histogram.count,
                    histogram.total, histogram.min, histogram.max,
                )
        return merged

    def run(self) -> WorkloadResult:
        spec = self.spec
        self.populate()
        injected = self.inject()
        try:
            self.framework.run_until_idle(max_events=self.max_events)
        except RuntimeError:
            # Livelock guard tripped; report whatever converged.
            pass
        end = self.framework.now
        makespan = end - self._base_ms
        converge = 0.0
        if injected or spec.faults:
            converge = end - (self._base_ms + self._last_injection_ms)
        merged = self.merged_histogram()
        percentiles = merged.percentiles()
        virtual_s = makespan / 1000.0
        converged_groups = sum(
            1 for group in range(spec.groups)
            if group_converged(self.rosters[group])
        )
        return WorkloadResult(
            protocol=spec.protocol,
            arrival=spec.arrival,
            groups=spec.groups,
            group_size=spec.group_size,
            seed=spec.seed,
            topology=self.framework.world.topology.name,
            engine=self.framework.engine.name,
            events=injected,
            joins=self.joins,
            leaves=self.leaves,
            skipped=self.skipped,
            member_epochs=merged.count,
            duration_ms=spec.duration_ms,
            last_injection_ms=self._last_injection_ms,
            makespan_ms=makespan,
            converge_ms=converge,
            throughput_eps=merged.count / virtual_s if virtual_s > 0 else 0.0,
            rekey_p50_ms=percentiles["p50"],
            rekey_p95_ms=percentiles["p95"],
            rekey_p99_ms=percentiles["p99"],
            rekey_mean_ms=merged.mean,
            rekey_max_ms=merged.max if merged.max is not None else 0.0,
            stalls=self.framework.rekey_stalls,
            restarts=self.framework.rekey_restarts,
            converged_groups=converged_groups,
        )


def run_workload(
    spec: WorkloadSpec,
    topology: Union[str, Callable[[], Topology]] = "lan",
    dh_group: str = "dh-512",
    engine=None,
    stall_timeout_ms: Optional[float] = DEFAULT_STALL_TIMEOUT_MS,
    max_events: int = LARGE_RUN_MAX_EVENTS,
    metrics=None,
) -> WorkloadResult:
    """Run one spec and return its result.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is passed, the
    merged sustained-phase rekey histogram is folded into it as
    ``load.rekey_ms{arrival=...,protocol=...}`` — the benchmark pool's
    worker-snapshot path, which is how ``bench load`` prints one exact
    percentile table across all shards.
    """
    driver = WorkloadEngine(
        spec,
        topology=topology,
        dh_group=dh_group,
        engine=engine,
        stall_timeout_ms=stall_timeout_ms,
        max_events=max_events,
    )
    result = driver.run()
    if metrics is not None and metrics.enabled:
        merged = driver.merged_histogram()
        metrics.log_histogram(
            "load.rekey_ms", arrival=spec.arrival, protocol=spec.protocol
        ).merge(
            merged.buckets, merged.zero_count, merged.count,
            merged.total, merged.min, merged.max,
        )
        metrics.counter(
            "bench.load.member_epochs",
            arrival=spec.arrival, protocol=spec.protocol,
        ).inc(merged.count)
    return result
