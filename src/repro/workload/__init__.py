"""Sustained-traffic workload engine: seeded churn over many groups.

The paper measures isolated join/leave events; its own conclusion — that
protocol choice depends on group dynamics — only becomes testable under
*sustained* membership turnover.  This package provides that scenario
surface:

* :mod:`repro.workload.arrivals` — deterministic arrival-process
  generators (Poisson steady state, flash crowd, diurnal cycle, trace
  replay) emitting streams of :class:`~repro.workload.arrivals.ChurnEvent`.
* :mod:`repro.workload.spec` — :class:`~repro.workload.spec.WorkloadSpec`,
  the serializable description of one sustained run (``to_spec`` /
  ``from_spec`` round-trip exactly, mirroring
  :class:`~repro.faults.FaultSchedule`), composing a fault schedule for
  partitions mid-churn.
* :mod:`repro.workload.engine` — the multi-group driver multiplexing
  every group over the shared simulated testbed and reporting
  percentile-grade rekey latency, member-epochs/s throughput, and
  time-to-converge after the last injection.

Everything is seeded and runs on the deterministic simulator: the same
spec produces bit-identical results at any parallelism, which is what
lets ``repro.bench load`` cache and exact-gate its sweeps.
"""

from repro.workload.arrivals import (
    ARRIVALS,
    ChurnEvent,
    diurnal_stream,
    flash_stream,
    poisson_stream,
    stream_populations,
    trace_stream,
)
from repro.workload.engine import WorkloadEngine, WorkloadResult, run_workload
from repro.workload.spec import WorkloadSpec

__all__ = [
    "ARRIVALS",
    "ChurnEvent",
    "WorkloadSpec",
    "WorkloadEngine",
    "WorkloadResult",
    "run_workload",
    "poisson_stream",
    "flash_stream",
    "diurnal_stream",
    "trace_stream",
    "stream_populations",
]
