"""The serializable description of one sustained-churn run.

A :class:`WorkloadSpec` pins down everything the engine needs — the
protocol under test, the arrival process and its parameters, the seed,
and an optional composed :class:`~repro.faults.FaultSchedule` — as a
frozen value with an exact ``to_spec``/``from_spec`` round-trip,
mirroring the fault schedule's own discipline.  That round-trip is what
makes workloads cacheable (the benchmark pool hashes the spec dict) and
replayable (the JSON in a ``BENCH_load.json`` reconstructs the run
bit-for-bit).

Validation happens at construction: an unknown protocol, arrival
process, fault action or malformed trace entry raises ``ValueError``
immediately, so a bad spec dies at the CLI boundary with a clean
message instead of deep inside a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.protocols import available
from repro.workload.arrivals import (
    ARRIVALS,
    ChurnEvent,
    diurnal_stream,
    flash_stream,
    poisson_stream,
    trace_stream,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One sustained-churn scenario, fully serializable.

    ``burst_at_ms``/``burst_joins`` apply to the ``flash`` arrival,
    ``period_ms`` to ``diurnal``, and ``trace`` to ``trace``; ``None``
    means the generator's documented default.  ``faults`` composes a
    fault schedule (specified exactly as
    :meth:`~repro.faults.FaultSchedule.from_spec` takes it) whose times
    are relative to the start of the sustained phase, alongside the
    churn.
    """

    protocol: str
    arrival: str = "poisson"
    groups: int = 8
    group_size: int = 4
    rate_hz: float = 20.0
    duration_ms: float = 2000.0
    seed: int = 0
    min_members: int = 2
    max_members: Optional[int] = None
    burst_at_ms: Optional[float] = None
    burst_joins: Optional[int] = None
    period_ms: Optional[float] = None
    trace: Tuple[ChurnEvent, ...] = ()
    faults: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "protocol", str(self.protocol).upper())
        if self.protocol not in available():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {list(available())}"
            )
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {list(ARRIVALS)}"
            )
        if self.groups < 1:
            raise ValueError("groups must be at least 1")
        if self.min_members < 1:
            raise ValueError("min_members must be at least 1")
        if self.group_size < self.min_members:
            raise ValueError("group_size must be at least min_members")
        if self.max_members is not None and self.max_members < self.group_size:
            raise ValueError("max_members must be at least group_size")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.burst_at_ms is not None and self.burst_at_ms < 0:
            raise ValueError("burst_at_ms must be non-negative")
        if self.burst_joins is not None and self.burst_joins < 0:
            raise ValueError("burst_joins must be non-negative")
        if self.period_ms is not None and self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        # Coerce trace/fault entries (dicts or event values) into the
        # frozen event types — each constructor validates as it builds,
        # so an unknown fault action or churn action fails here.
        object.__setattr__(
            self, "trace", trace_stream(self.trace, groups=self.groups)
        )
        object.__setattr__(
            self,
            "faults",
            tuple(
                FaultSchedule.from_spec(
                    [
                        event.to_dict() if isinstance(event, FaultEvent) else event
                        for event in self.faults
                    ]
                )
            ),
        )

    # -- serialization ------------------------------------------------------

    def to_spec(self) -> dict:
        """A plain JSON-ready dict; inverse of :meth:`from_spec`.

        Every field is always present (``None`` included), so two specs
        are equal exactly when their spec dicts are — the property the
        benchmark pool's content-addressed cache key relies on.
        """
        spec = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name in ("trace", "faults"):
                value = [event.to_dict() for event in value]
            spec[field.name] = value
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_spec` output (round-trips
        exactly); unknown keys raise ``ValueError``, not a stack trace."""
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown workload spec keys {unknown}; known keys are "
                f"{sorted(known)}"
            )
        data = dict(spec)
        if "trace" in data:
            data["trace"] = tuple(data["trace"])
        if "faults" in data:
            data["faults"] = tuple(data["faults"])
        return cls(**data)

    # -- materialization ----------------------------------------------------

    def events(self) -> Tuple[ChurnEvent, ...]:
        """The churn stream this spec describes (same spec ⇒ identical
        stream, event for event)."""
        if self.arrival == "poisson":
            return poisson_stream(
                self.groups, self.group_size, self.rate_hz, self.duration_ms,
                self.seed, min_members=self.min_members,
                max_members=self.max_members,
            )
        if self.arrival == "flash":
            return flash_stream(
                self.groups, self.group_size, self.rate_hz, self.duration_ms,
                self.seed, min_members=self.min_members,
                max_members=self.max_members,
                burst_at_ms=self.burst_at_ms, burst_joins=self.burst_joins,
            )
        if self.arrival == "diurnal":
            return diurnal_stream(
                self.groups, self.group_size, self.rate_hz, self.duration_ms,
                self.seed, min_members=self.min_members,
                max_members=self.max_members, period_ms=self.period_ms,
            )
        return self.trace  # already validated and time-ordered

    def fault_schedule(self) -> FaultSchedule:
        """The composed fault schedule (empty when no faults are given)."""
        return FaultSchedule(self.faults)
