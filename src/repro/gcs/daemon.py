"""The Spread daemon: ordering, group state, and configuration membership.

One daemon runs per machine (§3.1).  Clients connect to their local daemon;
a client join/leave is *lightweight* — a single Agreed message — while a
network partition/merge is *heavyweight*: the daemons run a
coordinator-driven configuration change (propose → accept → install) with
flush and retransmission, after which every group whose membership changed
receives a new view.  This is the architecture that lets Spread "pay the
minimum possible price for different causes of group membership changes".

Ordering: Agreed messages are sequenced by the configuration's token ring
and delivered in sequence order once the token sweep from the sequencer has
passed the receiving daemon (see :mod:`repro.gcs.ring`).  The flush during
a configuration change delivers the union of what the surviving component
received, preserving view synchrony for surviving members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.gcs.messages import (
    GroupMessage,
    SequencedMessage,
    Service,
    View,
    ViewEvent,
)
from repro.gcs.ring import TokenRing
from repro.transport.base import (
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)

#: Wire size of configuration-change control frames.
_CONTROL_FRAME_BYTES = 256


@dataclass(frozen=True)
class MemberRecord:
    """One group member as replicated at every daemon.

    ``birth`` — (config_id, sequence number of the join message) — gives the
    globally consistent join-age order that views expose.
    """

    name: str
    daemon_id: int
    birth: Tuple[int, int]


@dataclass
class Config:
    """A daemon configuration: the reachable daemons and their shared ring.

    ``config_id`` is a ``(number, coordinator)`` pair: the number grows
    monotonically across configuration changes and the coordinator id keeps
    simultaneous components of a partition distinguishable.
    """

    config_id: Tuple[int, int]
    daemon_ids: Tuple[int, ...]
    ring: TokenRing

    def __post_init__(self) -> None:
        # index_of is on the per-delivery hot path (the hold barrier asks
        # for two positions per Agreed frame); a dict beats tuple.index.
        self._index = {d: i for i, d in enumerate(self.daemon_ids)}

    def index_of(self, daemon_id: int) -> int:
        return self._index[daemon_id]


@dataclass
class _AcceptState:
    """A daemon's state as reported in an ACCEPT during a config change."""

    daemon_id: int
    config_id: Tuple[int, int]
    delivered: int
    undelivered: Dict[int, SequencedMessage]
    groups: Dict[str, Dict[str, MemberRecord]]


class Daemon:
    """One Spread daemon on one machine."""

    def __init__(self, daemon_id: int, machine, world) -> None:
        self.daemon_id = daemon_id
        self.machine = machine
        self.world = world
        self.clients: Dict[str, Any] = {}
        # group name -> member name -> record (replicated state)
        self.groups: Dict[str, Dict[str, MemberRecord]] = {}
        self.config: Optional[Config] = None
        self._recv: Dict[int, Dict[int, SequencedMessage]] = {}
        # Messages this daemon sequenced itself, kept until delivered so a
        # configuration change can flush in-flight sends (view synchrony).
        self._sent: Dict[int, Dict[int, SequencedMessage]] = {}
        self._delivered = 0
        self._frozen = False
        # Config id with a zero-delay _try_deliver already queued (dedupe:
        # one delivery scan per instant, not one per arriving frame).
        self._deliver_soon: Optional[Tuple[int, int]] = None
        self._send_queue: List[GroupMessage] = []
        # configuration-change state
        self._reachable: FrozenSet[int] = frozenset()
        self._round_id = 0
        self._accepts: Dict[int, _AcceptState] = {}
        self._last_propose_token: Optional[Tuple[int, int]] = None
        # crash / restart state
        self._crashed = False
        self._last_config_number = 0
        # retransmission: delivered-message history (to serve peers' NACKs)
        # and the gap timer currently armed, keyed (config_id, next_needed)
        self._history: Dict[Tuple[int, int], Dict[int, SequencedMessage]] = {}
        self._nack_armed_for: Optional[Tuple[Tuple[int, int], int]] = None
        self._nack_rotation = 0
        self.retransmit_requests = 0
        self.retransmits_served = 0
        # Causal provenance of the first arrival of each frame, keyed
        # (config_id, seq).  The zero-delay delivery scan dedupes across
        # frames, so the scan event's own cause names only the *first*
        # frame of the instant; this map lets each delivered message
        # adopt the cause of the frame that actually carried it.
        self._arrival: Dict[Tuple[Any, int], Any] = {}

    # ------------------------------------------------------------------
    # bootstrap / client connections
    # ------------------------------------------------------------------

    def install_initial(self, config: Config) -> None:
        """Install the bootstrap configuration (all daemons, fresh ring)."""
        self.config = config
        self._reachable = frozenset(config.daemon_ids)
        self._recv[config.config_id] = {}
        self._delivered = 0

    def connect(self, client) -> None:
        """Attach a local client process."""
        if self._crashed:
            raise RuntimeError(f"daemon d{self.daemon_id} has crashed")
        validate_member_name(client.name)
        if client.name in self.world.client_directory:
            raise ValueError(f"client name {client.name!r} already in use")
        self.clients[client.name] = client
        self.world.client_directory[client.name] = self

    def disconnect(self, client) -> None:
        """Detach a client; it implicitly leaves all its groups."""
        for group, records in list(self.groups.items()):
            if client.name in records:
                self.submit(
                    GroupMessage(
                        group=group,
                        sender=client.name,
                        payload=None,
                        kind="disconnect",
                    )
                )
        self.clients.pop(client.name, None)
        self.world.client_directory.pop(client.name, None)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def submit(self, message: GroupMessage) -> None:
        """Accept a message from a local client for dissemination.

        The boundary validation mirrors :class:`~repro.gcs.client.
        SpreadClient`'s — messages built by hand (tests, resubmits) get
        the same clear error a malformed client call would, instead of
        an opaque ``KeyError`` deep inside ring sequencing.
        """
        validate_group_name(message.group)
        validate_payload_size(message.size_bytes)
        if self._crashed:
            return  # a crash severs in-flight IPC; the message is lost
        if message.cause is None and self.world.obs.enabled:
            # Stamp once: a configuration-change resubmit keeps the
            # original sender-side cause, not the resubmit context.
            message.cause = self.world.obs.causality.current
        if message.service is Service.AGREED:
            if self._frozen:
                self._send_queue.append(message)
            else:
                self._sequence_and_disseminate(message)
        elif message.service is Service.FIFO:
            self._send_fifo(message)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown service {message.service}")

    def _sequence_and_disseminate(self, message: GroupMessage) -> None:
        config = self.config
        my_index = config.index_of(self.daemon_id)
        config.ring.request(
            my_index,
            1,
            lambda assignments: self._on_sequenced(config, message, assignments),
        )

    def _on_sequenced(self, config: Config, message: GroupMessage, assignments) -> None:
        """The token reached us: stamp the message and disseminate it."""
        if self._crashed:
            return
        if self.config is None or self.config.config_id != config.config_id:
            # The configuration changed while we waited for the token;
            # resubmit so the message is sequenced in the new one.
            self.submit(message)
            return
        ((seq, sequenced_at),) = assignments
        smsg = SequencedMessage(
            config_id=config.config_id,
            seq=seq,
            origin_daemon=self.daemon_id,
            sequenced_at=sequenced_at,
            message=message,
        )
        self._sent.setdefault(config.config_id, {})[seq] = smsg
        now = self.world.sim.now
        self.world.tracer.record(
            now, "sequence", f"d{self.daemon_id}", seq=seq, at=sequenced_at,
            kind=message.kind, group=message.group,
        )
        if self.world.obs.enabled:
            # This fires at a token-visit event, whose cause is the ring's
            # own machinery; the frames about to go out were caused by the
            # *send* that produced the message, so adopt that instead.
            self.world.obs.causality.adopt(message.cause)
        self.world.network.broadcast_frame(
            self.daemon_id,
            config.daemon_ids,
            message.size_bytes,
            smsg,
            extra_delay_ms=max(sequenced_at - now, 0.0),
        )

    def _send_fifo(self, message: GroupMessage) -> None:
        if message.target is None:
            raise ValueError("FIFO messages require a target member")
        records = self.groups.get(message.group, {})
        record = records.get(message.target)
        if record is None:
            self.world.tracer.record(
                self.world.sim.now, "fifo-drop", f"d{self.daemon_id}",
                target=message.target,
            )
            return
        self.world.network.send(
            self.daemon_id,
            record.daemon_id,
            message.size_bytes,
            self.world.daemons[record.daemon_id]._deliver_fifo,
            message,
        )

    # ------------------------------------------------------------------
    # receiving and ordered delivery
    # ------------------------------------------------------------------

    def _on_frame(self, smsg: SequencedMessage) -> None:
        if self._crashed:
            return
        if (
            self.config
            and smsg.config_id == self.config.config_id
            and smsg.seq <= self._delivered
        ):
            return  # duplicate of an already-delivered frame
        self._recv.setdefault(smsg.config_id, {})[smsg.seq] = smsg
        if self.world.obs.enabled:
            # First arrival wins: a fault duplicate or a NACK-served
            # retransmit must not re-parent an already-recorded frame.
            self._arrival.setdefault(
                (smsg.config_id, smsg.seq), self.world.obs.causality.current
            )
        if self.config and smsg.config_id == self.config.config_id:
            # One zero-delay delivery scan per instant: frames landing at
            # the same time were all scheduled before this event, so the
            # single scan sees (and delivers) exactly what the first of
            # the per-frame scans used to; the suppressed scans were
            # no-ops (even their NACK arming dedupes on the gap key).
            if self._deliver_soon != smsg.config_id:
                self._deliver_soon = smsg.config_id
                self.world.sim.schedule(0, self._try_deliver, smsg.config_id)

    def _hold_until(self, smsg: SequencedMessage) -> float:
        """The ordering-settlement barrier: the token sweep must pass us.

        Reads the ring's precomputed distance matrix directly — this runs
        once per delivered Agreed frame, and the ``index_of``/
        ``distance_ms`` call layers are measurable at n=1024.
        """
        config = self.config
        index = config._index
        return smsg.sequenced_at + config.ring._distance_ms[
            index[smsg.origin_daemon]
        ][index[self.daemon_id]]

    def _try_deliver(self, config_id: int) -> None:
        self._deliver_soon = None
        if self._crashed or self.config is None or self.config.config_id != config_id:
            return
        pending = self._recv.get(config_id, {})
        now = self.world.sim.now
        while True:
            smsg = pending.get(self._delivered + 1)
            if smsg is None:
                if pending:
                    # Later frames arrived but the next-in-sequence one is
                    # missing — likely lost to a link fault.  Arm the
                    # retransmission (NACK) timer.
                    self._arm_nack(config_id)
                return
            hold = self._hold_until(smsg)
            if hold > now:
                self.world.sim.schedule_at(hold, self._try_deliver, config_id)
                if self.world.obs.enabled:
                    self.world.obs.gauge(
                        "daemon.undelivered", daemon=f"d{self.daemon_id}"
                    ).set(len(pending))
                return
            self._delivered += 1
            del pending[smsg.seq]
            if smsg.origin_daemon == self.daemon_id:
                self._sent.get(config_id, {}).pop(smsg.seq, None)
            self._record_history(config_id, smsg)
            self._deliver(smsg)

    def _deliver(self, smsg: SequencedMessage) -> None:
        message = smsg.message
        self.world.tracer.record(
            self.world.sim.now, "deliver", f"d{self.daemon_id}",
            seq=smsg.seq, config=smsg.config_id, kind=message.kind,
            group=message.group, sender=message.sender,
        )
        if self.world.obs.enabled:
            obs = self.world.obs
            obs.counter(
                "daemon.delivered", daemon=f"d{self.daemon_id}", kind=message.kind
            ).inc()
            # Re-enter the causal context of the frame that carried this
            # message (the scan event's own cause only names the first
            # frame of the instant), then record delivery as a DAG vertex
            # everything downstream — view emission, client IPC — hangs
            # off.  A flush delivery with no local arrival keeps the
            # ambient (config-install) cause, which is what it waited on.
            key = (smsg.config_id, smsg.seq)
            if key in self._arrival:
                obs.causality.adopt(self._arrival.pop(key))
            node = obs.caused_instant(
                "gcs", "deliver", f"d{self.daemon_id}", self.machine.name,
                self.world.sim.now, seq=smsg.seq, kind=message.kind,
            )
            obs.causality.adopt(node)
        if message.kind in ("join", "leave", "disconnect"):
            self._apply_membership(smsg)
        else:
            self._deliver_data(message)

    def _deliver_data(self, message: GroupMessage) -> None:
        records = self.groups.get(message.group, {})
        params = self.world.params
        delay = params.ipc_ms + params.client_processing_ms
        if message.target is not None:
            client = self.clients.get(message.target)
            if client is not None and message.target in records:
                self.world.sim.schedule(delay, client._on_message, message)
            return
        # One event fans the message out to every local recipient.  The
        # per-client events this replaces were created back to back —
        # same firing time, consecutive seqs, so nothing could interleave
        # between them — and each client still drops the message itself
        # if it disconnected before the IPC delay elapsed.
        recipients = [
            client for name, client in self.clients.items() if name in records
        ]
        if recipients:
            self.world.sim.schedule(delay, _fan_out, recipients, message)

    def _deliver_fifo(self, message: GroupMessage) -> None:
        if self._crashed:
            return
        client = self.clients.get(message.target)
        if client is None:
            return
        records = self.groups.get(message.group, {})
        if message.target not in records:
            return
        params = self.world.params
        self.world.sim.schedule(
            params.ipc_ms + params.client_processing_ms,
            client._on_message,
            message,
        )

    # ------------------------------------------------------------------
    # retransmission (NACK recovery of frames lost to link faults)
    # ------------------------------------------------------------------
    #
    # Totem recovers lost frames via retransmission requests carried on
    # the token; we model the same discipline as a NACK unicast to a peer
    # daemon.  Recovery traffic rides the reliable control channel (the
    # same one the configuration-change exchange uses), and the origin
    # always retains its own undelivered messages, so a gap converges as
    # long as any daemon in the configuration holds the frame.

    def _record_history(self, config_id, smsg: SequencedMessage) -> None:
        bucket = self._history.setdefault(config_id, {})
        bucket[smsg.seq] = smsg
        limit = self.world.params.retransmit_history
        while len(bucket) > limit:
            # seqs are recorded in delivery (increasing) order, so the
            # first key is always the oldest
            del bucket[next(iter(bucket))]

    def _arm_nack(self, config_id) -> None:
        key = (config_id, self._delivered + 1)
        if self._nack_armed_for == key:
            return  # a timer for this exact gap is already pending
        self._nack_armed_for = key
        self.world.sim.schedule(
            self.world.params.retransmit_timeout_ms, self._nack_fire, key
        )

    def _nack_fire(self, key) -> None:
        if self._nack_armed_for != key:
            return  # gap resolved, or a newer gap superseded this timer
        self._nack_armed_for = None
        config_id, next_needed = key
        if (
            self._crashed
            or self.config is None
            or self.config.config_id != config_id
            or self._delivered + 1 != next_needed
        ):
            return
        pending = self._recv.get(config_id, {})
        if not pending:
            return
        top = max(pending)
        missing = [s for s in range(next_needed, top) if s not in pending][:64]
        if not missing:
            return  # everything arrived meanwhile; the hold barrier delivers
        others = [d for d in self.config.daemon_ids if d != self.daemon_id]
        if not others:
            return
        # Rotate the target so a peer that also lost the frame (or crashed
        # mid-request) doesn't stall us forever.
        target = others[self._nack_rotation % len(others)]
        self._nack_rotation += 1
        self.retransmit_requests += 1
        self.world.tracer.record(
            self.world.sim.now, "nack", f"d{self.daemon_id}",
            target=target, missing=list(missing),
        )
        if self.world.obs.enabled:
            self.world.obs.counter(
                "daemon.nacks", daemon=f"d{self.daemon_id}"
            ).inc()
        self.world.network.send(
            self.daemon_id,
            target,
            _CONTROL_FRAME_BYTES + 8 * len(missing),
            self.world.daemons[target]._on_nack,
            config_id,
            tuple(missing),
            self.daemon_id,
            control=True,
        )
        # Re-arm: if the retransmission is also lost the next firing tries
        # the next peer.  (The timer self-cancels once the gap closes.)
        self._arm_nack(config_id)

    def _on_nack(self, config_id, missing, requester: int) -> None:
        if self._crashed:
            return
        recv = self._recv.get(config_id, {})
        sent = self._sent.get(config_id, {})
        history = self._history.get(config_id, {})
        for seq in missing:
            smsg = recv.get(seq) or sent.get(seq) or history.get(seq)
            if smsg is None:
                continue
            self.retransmits_served += 1
            self.world.network.send(
                self.daemon_id,
                requester,
                smsg.message.size_bytes,
                self.world.daemons[requester]._on_frame,
                smsg,
                control=True,
            )

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Halt abruptly: all volatile state is lost and local clients are
        severed without leave messages (the surviving daemons discover the
        failure through their detectors and reconfigure)."""
        self._crashed = True
        for name in list(self.clients):
            client = self.clients.pop(name)
            self.world.client_directory.pop(name, None)
            client._on_crashed()
        if self.config is not None:
            self._last_config_number = self.config.config_id[0]
        self.config = None
        self.groups = {}
        self._recv = {}
        self._sent = {}
        self._history = {}
        self._delivered = 0
        self._frozen = False
        self._deliver_soon = None
        self._send_queue = []
        self._accepts = {}
        self._nack_armed_for = None
        self._last_propose_token = None
        self._arrival = {}
        self.world.tracer.record(
            self.world.sim.now, "crash", f"d{self.daemon_id}"
        )

    def restart(self) -> None:
        """Come back up as a singleton configuration; merging with the
        rest of the network is an ordinary heavyweight membership event
        driven by the failure detectors."""
        if not self._crashed:
            raise RuntimeError(f"daemon d{self.daemon_id} is not crashed")
        self._crashed = False
        ring = TokenRing(self.world.topology, [self.machine], self.world.sim)
        config = Config(
            config_id=(self._last_config_number + 1, self.daemon_id),
            daemon_ids=(self.daemon_id,),
            ring=ring,
        )
        self.config = config
        self._reachable = frozenset({self.daemon_id})
        self._recv = {config.config_id: {}}
        self._sent = {config.config_id: {}}
        self._delivered = 0
        self._round_id += 1
        self.world.tracer.record(
            self.world.sim.now, "restart", f"d{self.daemon_id}",
            config=config.config_id,
        )

    # ------------------------------------------------------------------
    # lightweight (client) membership
    # ------------------------------------------------------------------

    def _apply_membership(self, smsg: SequencedMessage) -> None:
        message = smsg.message
        records = self.groups.setdefault(message.group, {})
        if message.kind == "join":
            if message.sender in records:
                return  # duplicate join, ignore
            records[message.sender] = MemberRecord(
                name=message.sender,
                daemon_id=message.payload["daemon_id"],
                birth=(smsg.config_id, smsg.seq),
            )
            event = ViewEvent.JOIN
            joined, left = (message.sender,), ()
        else:
            if message.sender not in records:
                return  # duplicate leave, ignore
            del records[message.sender]
            event = ViewEvent.LEAVE
            joined, left = (), (message.sender,)
        view = View(
            view_id=(smsg.config_id, smsg.seq),
            group=message.group,
            members=self._ordered_members(message.group),
            event=event,
            joined=joined,
            left=left,
        )
        self._emit_view(view, also_to=tuple(left))

    def _ordered_members(self, group: str) -> Tuple[str, ...]:
        records = self.groups.get(group, {})
        ordered = sorted(records.values(), key=lambda r: (r.birth, r.name))
        return tuple(r.name for r in ordered)

    def _emit_view(self, view: View, also_to: Tuple[str, ...] = ()) -> None:
        params = self.world.params
        obs = self.world.obs if self.world.obs.enabled else None
        prior = None
        if obs is not None:
            # The view instant joins the DAG; adopting it parents the
            # clients' scheduled ``_on_view`` events (stamped by the
            # cause hook) under the view delivery they waited on.
            prior = obs.causality.current
            node = obs.caused_instant(
                "gcs", f"view {view.event.name.lower()}",
                f"d{self.daemon_id}", self.machine.name, self.world.sim.now,
                epoch=view.view_id, members=len(view.members),
            )
            obs.causality.adopt(node)
        wanted = set(view.members)
        wanted.update(also_to)
        recipients = [
            client
            for name, client in self.clients.items()
            if name in wanted
        ]
        for client in recipients:
            self.world.sim.schedule(
                params.ipc_ms + params.client_processing_ms,
                client._on_view,
                view,
            )
        if obs is not None:
            # Restore so sibling views emitted by the same event (a
            # heavyweight install touching several groups) do not chain
            # under each other.
            obs.causality.adopt(prior)

    # ------------------------------------------------------------------
    # heavyweight (daemon configuration) membership
    # ------------------------------------------------------------------

    def on_reachability(self, reachable: FrozenSet[int]) -> None:
        """The failure detector reports a new reachable daemon set."""
        if self._crashed:
            return
        if self.config and reachable == set(self.config.daemon_ids):
            return
        if self.world.obs.enabled:
            self.world.obs.instant(
                "gcs", "reachability change", f"d{self.daemon_id}",
                self.machine.name, self.world.sim.now,
                reachable=sorted(reachable),
            )
        self._frozen = True
        self._reachable = reachable
        self._accepts = {}
        self._round_id += 1
        if self.daemon_id == min(reachable):
            round_token = (self.daemon_id, self._round_id)
            for dst_id in reachable:
                self.world.network.send(
                    self.daemon_id,
                    dst_id,
                    _CONTROL_FRAME_BYTES,
                    self.world.daemons[dst_id]._on_propose,
                    round_token,
                    reachable,
                    self.daemon_id,
                    control=True,
                )

    def _on_propose(
        self, round_token: Tuple[int, int], members: FrozenSet[int], coordinator: int
    ) -> None:
        if self._crashed:
            return
        self._frozen = True
        self._last_propose_token = round_token
        config_id = self.config.config_id
        undelivered = dict(self._recv.get(config_id, {}))
        for seq, smsg in self._sent.get(config_id, {}).items():
            if seq > self._delivered:
                undelivered.setdefault(seq, smsg)
        state = _AcceptState(
            daemon_id=self.daemon_id,
            config_id=config_id,
            delivered=self._delivered,
            undelivered=undelivered,
            groups={g: dict(r) for g, r in self.groups.items()},
        )
        self.world.network.send(
            self.daemon_id,
            coordinator,
            _CONTROL_FRAME_BYTES + 128 * len(state.undelivered),
            self.world.daemons[coordinator]._on_accept,
            round_token,
            state,
            frozenset(members),
            control=True,
        )

    def _on_accept(
        self,
        round_token: Tuple[int, int],
        state: _AcceptState,
        members: FrozenSet[int],
    ) -> None:
        if self._crashed:
            return
        if round_token != (self.daemon_id, self._round_id):
            return  # stale round
        self._accepts[state.daemon_id] = state
        if set(self._accepts) != set(members):
            return
        # All accepts in: build the new configuration.  The id pairs a
        # monotonically growing number with the coordinator id so that two
        # components of a partition can never install the same config id
        # (their flush epochs must stay distinguishable).
        states = dict(self._accepts)
        new_config_id = (
            max(s.config_id[0] for s in states.values()) + 1,
            self.daemon_id,
        )
        ordered_ids = tuple(sorted(members))
        machines = [self.world.daemons[d].machine for d in ordered_ids]
        ring = TokenRing(self.world.topology, machines, self.world.sim)
        config = Config(new_config_id, ordered_ids, ring)
        # Union of sequenced-but-undelivered messages per old config.
        union: Dict[int, Dict[int, SequencedMessage]] = {}
        for state_ in states.values():
            bucket = union.setdefault(state_.config_id, {})
            bucket.update(state_.undelivered)
        retransmit_bytes = sum(
            m.message.size_bytes for bucket in union.values() for m in bucket.values()
        )
        for dst_id in ordered_ids:
            self.world.network.send(
                self.daemon_id,
                dst_id,
                _CONTROL_FRAME_BYTES + retransmit_bytes,
                self.world.daemons[dst_id]._on_install,
                round_token,
                config,
                union,
                states,
                control=True,
            )

    def _on_install(
        self,
        round_token: Tuple[int, int],
        config: Config,
        union: Dict[int, Dict[int, SequencedMessage]],
        states: Dict[int, _AcceptState],
    ) -> None:
        if self._crashed:
            return
        if round_token != self._last_propose_token:
            return  # a newer configuration change superseded this round
        old_membership = {
            group: self._ordered_members(group) for group in self.groups
        }
        # 1. Flush: deliver the surviving component's union of undelivered
        #    messages for our old configuration, in sequence order,
        #    skipping gaps (a gap means no survivor holds the message).
        own_union = union.get(self.config.config_id, {})
        for seq in sorted(own_union):
            if seq <= self._delivered:
                continue
            self._delivered = seq
            self._deliver(own_union[seq])
        # 2. Reconstruct every responder's post-flush group state and merge.
        merged: Dict[str, Dict[str, MemberRecord]] = {}
        for state in states.values():
            reconstructed = _reconstruct_groups(state, union)
            for group, records in reconstructed.items():
                bucket = merged.setdefault(group, {})
                for name, record in records.items():
                    existing = bucket.get(name)
                    if existing is None or record.birth < existing.birth:
                        bucket[name] = record
        allowed = set(config.daemon_ids)
        self.groups = {
            group: {
                name: rec for name, rec in records.items() if rec.daemon_id in allowed
            }
            for group, records in merged.items()
        }
        # 3. Install the new configuration.
        self.config = config
        self._recv.setdefault(config.config_id, {})
        self._recv = {config.config_id: self._recv[config.config_id]}
        self._sent = {config.config_id: {}}
        self._history = {}
        self._arrival = {
            key: cause
            for key, cause in self._arrival.items()
            if key[0] == config.config_id
        }
        self._nack_armed_for = None
        self._delivered = 0
        self._frozen = False
        self.world.tracer.record(
            self.world.sim.now, "install", f"d{self.daemon_id}",
            config=config.config_id, daemons=config.daemon_ids,
        )
        if self.world.obs.enabled:
            self.world.obs.instant(
                "gcs", "config install", f"d{self.daemon_id}",
                self.machine.name, self.world.sim.now,
                config=config.config_id, daemons=len(config.daemon_ids),
            )
        # 4. Emit partition/merge views for groups whose membership changed.
        #    For merges, ``joined`` is *canonical*: the members outside the
        #    component of the group's oldest member — the set every key
        #    agreement protocol treats as "the newcomers", identical at all
        #    members regardless of which side of the merge they were on.
        component_tag = {
            daemon_id: state.config_id for daemon_id, state in states.items()
        }
        for group in sorted(set(old_membership) | set(self.groups)):
            old = old_membership.get(group, ())
            new = self._ordered_members(group)
            if old == new:
                continue
            records = self.groups.get(group, {})
            perspective_joined = tuple(m for m in new if m not in old)
            left = tuple(m for m in old if m not in new)
            if perspective_joined and new:
                oldest_tag = component_tag.get(records[new[0]].daemon_id)
                joined = tuple(
                    m
                    for m in new
                    if component_tag.get(records[m].daemon_id) != oldest_tag
                )
            else:
                joined = perspective_joined
            event = ViewEvent.MERGE if joined else ViewEvent.PARTITION
            view = View(
                view_id=(config.config_id, 0),
                group=group,
                members=new,
                event=event,
                joined=joined,
                left=left,
            )
            self._emit_view(view)
        # 5. Deliver any frames of the new configuration that raced ahead of
        #    the install, then release sends queued while frozen.
        self._deliver_soon = config.config_id
        self.world.sim.schedule(0, self._try_deliver, config.config_id)
        queued, self._send_queue = self._send_queue, []
        for message in queued:
            self.submit(message)


def _fan_out(clients, message: GroupMessage) -> None:
    """Deliver one message to several co-located clients in one event."""
    for client in clients:
        client._on_message(message)


def _reconstruct_groups(
    state: _AcceptState, union: Dict[int, Dict[int, SequencedMessage]]
) -> Dict[str, Dict[str, MemberRecord]]:
    """Apply the flush union's membership messages to a reported state.

    This mirrors exactly what the reporting daemon does locally during its
    own flush, so every installer computes identical group states.
    """
    groups = {g: dict(r) for g, r in state.groups.items()}
    bucket = union.get(state.config_id, {})
    for seq in sorted(bucket):
        if seq <= state.delivered:
            continue
        smsg = bucket[seq]
        message = smsg.message
        if message.kind == "join":
            records = groups.setdefault(message.group, {})
            if message.sender not in records:
                records[message.sender] = MemberRecord(
                    name=message.sender,
                    daemon_id=message.payload["daemon_id"],
                    birth=(smsg.config_id, smsg.seq),
                )
        elif message.kind in ("leave", "disconnect"):
            records = groups.get(message.group, {})
            records.pop(message.sender, None)
    return groups
