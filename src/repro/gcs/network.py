"""Frame delivery between daemons, with partitions, healing and faults.

The network is an oracle for reachability: frames between daemons in
different components are silently dropped (as a partitioned IP network
would), and daemons are informed of connectivity changes only after a
failure-detection delay — reproducing the paper's model where "an
unreliable network can split into disjoint components" and the group
communication system reacts (§5).

Beyond clean partitions, the network accepts a
:class:`~repro.faults.link.LinkFaults` injector (see
:meth:`Network.install_faults`): per-link drop/delay/duplicate/reorder
policies applied to inter-machine frames, charged on the same
``frames_dropped``/tracer paths as partition losses.  Crashed daemons
(see :meth:`repro.gcs.daemon.Daemon.crash`) are unreachable in both
directions until restarted.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.gcs.topology import Topology
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class Network:
    """Delivers frames between registered daemons according to the topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        obs: Optional[Observability] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs or NULL_OBS
        self._daemons: Dict[int, Any] = {}
        self._component_of: Dict[int, int] = {}
        self._crashed: Set[int] = set()
        #: optional :class:`repro.faults.link.LinkFaults` injector
        self.faults = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.fault_drops = 0
        self.fault_duplicates = 0
        self.fault_retries = 0
        self.bytes_sent = 0

    # -- registration ----------------------------------------------------

    def register(self, daemon: Any) -> None:
        """Register a daemon (anything with ``daemon_id``, ``machine`` and
        ``on_reachability``).

        The daemon's network component is derived from the topology, not
        hard-coded: a daemon registered after a partition joins the
        component of the daemons already on its machine (or, failing
        that, its site), so late registrations land on the correct side
        of the split instead of silently joining component 0.
        """
        component = self._component_for(daemon)
        self._daemons[daemon.daemon_id] = daemon
        self._component_of[daemon.daemon_id] = component

    def _component_for(self, daemon: Any) -> int:
        components = set(self._component_of.values())
        if len(components) <= 1:
            return next(iter(components), 0)
        # The network is partitioned: route the newcomer through the
        # topology.  Same machine first, then same site (a partition in
        # this model severs links between machines, never within one).
        machine = daemon.machine
        for peer_id, component in self._component_of.items():
            if self._daemons[peer_id].machine is machine:
                return component
        for peer_id, component in self._component_of.items():
            if self._daemons[peer_id].machine.site == machine.site:
                return component
        return max(components) + 1

    @property
    def daemon_ids(self) -> List[int]:
        return sorted(self._daemons)

    # -- fault injection ---------------------------------------------------

    def install_faults(self, faults) -> None:
        """Attach (or, with ``None``, detach) a link-fault injector."""
        self.faults = faults

    def note_crash(self, daemon_id: int) -> None:
        """Mark a daemon crashed: unreachable in both directions."""
        self._crashed.add(daemon_id)

    def note_restart(self, daemon_id: int) -> None:
        """Mark a crashed daemon as running again."""
        self._crashed.discard(daemon_id)

    @property
    def crashed_ids(self) -> Set[int]:
        return set(self._crashed)

    # -- reachability ----------------------------------------------------

    def reachable(self, src_id: int, dst_id: int) -> bool:
        """True when the two daemons are in the same network component
        and neither has crashed."""
        if src_id in self._crashed or dst_id in self._crashed:
            return False
        return self._component_of[src_id] == self._component_of[dst_id]

    def component_of(self, daemon_id: int) -> Set[int]:
        """All running daemon ids in ``daemon_id``'s component."""
        if daemon_id in self._crashed:
            return {daemon_id}
        mine = self._component_of[daemon_id]
        return {
            d
            for d, c in self._component_of.items()
            if c == mine and d not in self._crashed
        }

    def set_partition(
        self, components: Iterable[Iterable[int]], detection_delay_ms: float = 0.0
    ) -> None:
        """Split the network into the given components.

        Every registered daemon must appear in exactly one component.
        Daemons learn their new reachable set ``detection_delay_ms`` later
        (their failure detector timing out).
        """
        assignment: Dict[int, int] = {}
        for index, component in enumerate(components):
            for daemon_id in component:
                if daemon_id in assignment:
                    raise ValueError(f"daemon {daemon_id} in two components")
                assignment[daemon_id] = index
        if set(assignment) != set(self._daemons):
            raise ValueError("components must cover all daemons exactly")
        self._component_of = assignment
        self.tracer.record(
            self.sim.now, "partition", "network", components=sorted(assignment.items())
        )
        self._notify_all(detection_delay_ms)

    def heal(self, detection_delay_ms: float = 0.0) -> None:
        """Merge all components back into one network."""
        self._component_of = {d: 0 for d in self._daemons}
        self.tracer.record(self.sim.now, "heal", "network")
        self._notify_all(detection_delay_ms)

    def _notify_all(self, delay_ms: float) -> None:
        self.notify_peers(self._daemons, delay_ms)

    def notify_peers(self, daemon_ids: Iterable[int], delay_ms: float) -> None:
        """Deliver fresh reachability sets to the given daemons after the
        failure-detection delay (crashed daemons are skipped)."""
        for daemon_id in daemon_ids:
            if daemon_id in self._crashed:
                continue
            reachable = frozenset(self.component_of(daemon_id))
            self.sim.schedule(
                delay_ms, self._daemons[daemon_id].on_reachability, reachable
            )

    # -- frame delivery ---------------------------------------------------

    def send(
        self,
        src_id: int,
        dst_id: int,
        size_bytes: int,
        fn: Callable,
        *args: Any,
        extra_delay_ms: float = 0.0,
        control: bool = False,
        retry_faults: bool = False,
        _attempt: int = 0,
    ) -> Optional[float]:
        """Deliver a frame from one daemon to another.

        Returns the delivery time, or None when the destination is
        unreachable or the frame fell to a link fault (the frame is
        lost).  ``control`` marks configuration-change frames, which link
        faults leave alone unless their policy says otherwise.

        ``retry_faults`` models Totem's token-driven recovery of the
        Agreed multicast stream: a frame lost to a link fault is re-sent
        by the origin after the retransmission timeout, up to the
        topology's retry cap, for as long as both ends stay reachable.
        Frames lost to a partition or crash are never retried — that loss
        is the configuration change's to resolve.
        """
        self.frames_sent += 1
        if not self.reachable(src_id, dst_id):
            self.frames_dropped += 1
            self.tracer.record(self.sim.now, "drop", f"d{src_id}", dst=dst_id)
            if self.obs.enabled:
                self.obs.counter(
                    "net.frames_dropped", src=f"d{src_id}", dst=f"d{dst_id}"
                ).inc()
            return None
        fault_delay_ms = 0.0
        duplicate_delay_ms = None
        if self.faults is not None and src_id != dst_id:
            verdict = self.faults.apply(src_id, dst_id, control=control)
            if verdict.drop:
                self.frames_dropped += 1
                self.fault_drops += 1
                self.tracer.record(
                    self.sim.now, "fault-drop", f"d{src_id}", dst=dst_id
                )
                drop_cause = None
                if self.obs.enabled:
                    self.obs.counter(
                        "net.fault_drops", src=f"d{src_id}", dst=f"d{dst_id}"
                    ).inc()
                    # The drop joins the DAG so a retried frame's spans
                    # parent under the loss that caused the retry.
                    drop_cause = self.obs.caused_instant(
                        "net", f"fault-drop d{src_id}->d{dst_id}",
                        f"d{src_id}", self._daemons[src_id].machine.name,
                        self.sim.now, dst=dst_id, attempt=_attempt,
                    )
                if (
                    retry_faults
                    and _attempt < self.topology.params.retransmit_retries
                ):
                    self.fault_retries += 1
                    retry_event = self.sim.schedule(
                        self.topology.params.retransmit_timeout_ms,
                        self._retry_send,
                        src_id,
                        dst_id,
                        size_bytes,
                        fn,
                        args,
                        control,
                        _attempt + 1,
                    )
                    if drop_cause is not None:
                        retry_event.cause = drop_cause
                return None
            fault_delay_ms = verdict.extra_delay_ms
            duplicate_delay_ms = verdict.duplicate_delay_ms
        self.bytes_sent += size_bytes
        src = self._daemons[src_id].machine
        dst = self._daemons[dst_id].machine
        latency = self.topology.one_way_ms(src, dst, size_bytes)
        latency += self.topology.params.msg_processing_ms + extra_delay_ms
        latency += fault_delay_ms
        event = self.sim.schedule(latency, fn, *args)
        duplicate_event = None
        if duplicate_delay_ms is not None:
            self.fault_duplicates += 1
            duplicate_event = self.sim.schedule(
                latency + duplicate_delay_ms, fn, *args
            )
        if self.obs.enabled:
            link = dict(src=f"d{src_id}", dst=f"d{dst_id}")
            self.obs.counter("net.frames", **link).inc()
            self.obs.counter("net.bytes", **link).inc(size_bytes)
            self.obs.histogram("net.latency_ms", **link).observe(latency)
            cause = self.obs.caused_span(
                "net",
                f"frame d{src_id}->d{dst_id}",
                f"d{src_id}",
                src.name,
                self.sim.now,
                event.time,
                dst=dst_id,
                bytes=size_bytes,
            )
            if cause is not None:
                # Delivery (and any fault duplicate) was caused by the
                # frame in flight, not by the sender's ambient context.
                event.cause = cause
                if duplicate_event is not None:
                    duplicate_event.cause = cause
        return event.time

    def broadcast_frame(
        self,
        src_id: int,
        dst_ids: Iterable[int],
        size_bytes: int,
        smsg: Any,
        *,
        extra_delay_ms: float = 0.0,
    ) -> None:
        """Fan one sequenced frame out to every daemon in ``dst_ids``.

        Semantically identical to calling :meth:`send` once per
        destination with that daemon's ``_on_frame`` as the callback and
        ``retry_faults=True`` — which is exactly what this method does
        whenever fault injection or observability is active.  On the
        common path (no faults, obs disabled) it instead replicates
        ``send``'s per-destination accounting inline — one ``frames_sent``
        per destination, the same reachability check with the same
        drop/tracer bookkeeping, the same ``bytes_sent`` and the same
        latency arithmetic term-for-term (the skipped fault delay added
        ``+ 0.0``, which never changes a float) — while sharing one
        immutable frame object and hoisting the per-frame constants out
        of the loop.  Delivery times are bit-identical by construction.
        """
        daemons = self._daemons
        if self.faults is not None or self.obs.enabled:
            for dst_id in dst_ids:
                self.send(
                    src_id,
                    dst_id,
                    size_bytes,
                    daemons[dst_id]._on_frame,
                    smsg,
                    extra_delay_ms=extra_delay_ms,
                    retry_faults=True,
                )
            return
        crashed = self._crashed
        component_of = self._component_of
        src_unreachable = src_id in crashed
        src_component = component_of[src_id]
        src_machine = daemons[src_id].machine
        one_way_ms = self.topology.one_way_ms
        pre_ms = self.topology.params.msg_processing_ms + extra_delay_ms
        schedule = self.sim.schedule
        now = self.sim.now
        sent = dropped = sent_bytes = 0
        for dst_id in dst_ids:
            sent += 1
            if (
                src_unreachable
                or dst_id in crashed
                or component_of[dst_id] != src_component
            ):
                dropped += 1
                self.tracer.record(now, "drop", f"d{src_id}", dst=dst_id)
                continue
            sent_bytes += size_bytes
            dst = daemons[dst_id]
            latency = one_way_ms(src_machine, dst.machine, size_bytes) + pre_ms
            schedule(latency, dst._on_frame, smsg)
        self.frames_sent += sent
        self.frames_dropped += dropped
        self.bytes_sent += sent_bytes

    def _retry_send(
        self, src_id, dst_id, size_bytes, fn, args, control, attempt
    ) -> None:
        self.send(
            src_id,
            dst_id,
            size_bytes,
            fn,
            *args,
            control=control,
            retry_faults=True,
            _attempt=attempt,
        )
