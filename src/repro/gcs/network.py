"""Frame delivery between daemons, with partitions and healing.

The network is an oracle for reachability: frames between daemons in
different components are silently dropped (as a partitioned IP network
would), and daemons are informed of connectivity changes only after a
failure-detection delay — reproducing the paper's model where "an
unreliable network can split into disjoint components" and the group
communication system reacts (§5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.gcs.topology import Topology
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class Network:
    """Delivers frames between registered daemons according to the topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        obs: Optional[Observability] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs or NULL_OBS
        self._daemons: Dict[int, Any] = {}
        self._component_of: Dict[int, int] = {}
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0

    # -- registration ----------------------------------------------------

    def register(self, daemon: Any) -> None:
        """Register a daemon (anything with ``daemon_id``, ``machine`` and
        ``on_reachability``)."""
        self._daemons[daemon.daemon_id] = daemon
        self._component_of[daemon.daemon_id] = 0

    @property
    def daemon_ids(self) -> List[int]:
        return sorted(self._daemons)

    # -- reachability ----------------------------------------------------

    def reachable(self, src_id: int, dst_id: int) -> bool:
        """True when the two daemons are in the same network component."""
        return self._component_of[src_id] == self._component_of[dst_id]

    def component_of(self, daemon_id: int) -> Set[int]:
        """All daemon ids in ``daemon_id``'s component."""
        mine = self._component_of[daemon_id]
        return {d for d, c in self._component_of.items() if c == mine}

    def set_partition(
        self, components: Iterable[Iterable[int]], detection_delay_ms: float = 0.0
    ) -> None:
        """Split the network into the given components.

        Every registered daemon must appear in exactly one component.
        Daemons learn their new reachable set ``detection_delay_ms`` later
        (their failure detector timing out).
        """
        assignment: Dict[int, int] = {}
        for index, component in enumerate(components):
            for daemon_id in component:
                if daemon_id in assignment:
                    raise ValueError(f"daemon {daemon_id} in two components")
                assignment[daemon_id] = index
        if set(assignment) != set(self._daemons):
            raise ValueError("components must cover all daemons exactly")
        self._component_of = assignment
        self.tracer.record(
            self.sim.now, "partition", "network", components=sorted(assignment.items())
        )
        self._notify_all(detection_delay_ms)

    def heal(self, detection_delay_ms: float = 0.0) -> None:
        """Merge all components back into one network."""
        self._component_of = {d: 0 for d in self._daemons}
        self.tracer.record(self.sim.now, "heal", "network")
        self._notify_all(detection_delay_ms)

    def _notify_all(self, delay_ms: float) -> None:
        for daemon_id, daemon in self._daemons.items():
            reachable = frozenset(self.component_of(daemon_id))
            self.sim.schedule(delay_ms, daemon.on_reachability, reachable)

    # -- frame delivery ---------------------------------------------------

    def send(
        self,
        src_id: int,
        dst_id: int,
        size_bytes: int,
        fn: Callable,
        *args: Any,
        extra_delay_ms: float = 0.0,
    ) -> Optional[float]:
        """Deliver a frame from one daemon to another.

        Returns the delivery time, or None when the destination is
        unreachable (the frame is lost).
        """
        self.frames_sent += 1
        if not self.reachable(src_id, dst_id):
            self.frames_dropped += 1
            self.tracer.record(self.sim.now, "drop", f"d{src_id}", dst=dst_id)
            if self.obs.enabled:
                self.obs.counter(
                    "net.frames_dropped", src=f"d{src_id}", dst=f"d{dst_id}"
                ).inc()
            return None
        self.bytes_sent += size_bytes
        src = self._daemons[src_id].machine
        dst = self._daemons[dst_id].machine
        latency = self.topology.one_way_ms(src, dst, size_bytes)
        latency += self.topology.params.msg_processing_ms + extra_delay_ms
        event = self.sim.schedule(latency, fn, *args)
        if self.obs.enabled:
            link = dict(src=f"d{src_id}", dst=f"d{dst_id}")
            self.obs.counter("net.frames", **link).inc()
            self.obs.counter("net.bytes", **link).inc(size_bytes)
            self.obs.histogram("net.latency_ms", **link).observe(latency)
            self.obs.span(
                "net",
                f"frame d{src_id}->d{dst_id}",
                f"d{src_id}",
                src.name,
                self.sim.now,
                event.time,
                dst=dst_id,
                bytes=size_bytes,
            )
        return event.time
