"""Network topologies: the paper's testbeds and the knobs that shape latency.

Latency is modelled per daemon pair as propagation (one-way link latency) +
transmission (message size over link bandwidth), with small constants for
client-daemon IPC and per-message daemon processing.  The two testbeds:

* :func:`lan_testbed` — §6.1.1: thirteen 666 MHz dual-processor Pentium III
  machines on a switched LAN.
* :func:`wan_testbed` — §6.2.1 / Figure 13: eleven machines at JHU, one at
  UCI, one at ICU; round-trip latencies JHU–UCI 35 ms, UCI–ICU 150 ms,
  ICU–JHU 135 ms; mixed platforms (hence per-machine speed factors).
* :func:`medium_wan_testbed` — the paper's future-work setting (§7): a
  40–100 ms round-trip wide-area network where communication and
  computation costs are expected to equalize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.cpu import Machine


@dataclass(frozen=True)
class GcsParams:
    """Tunable constants of the group communication substrate (milliseconds)."""

    #: client <-> daemon IPC latency, each direction
    ipc_ms: float = 0.1
    #: token processing per daemon hop
    hop_processing_ms: float = 0.03
    #: per-message handling at a daemon (sequencing or receiving)
    msg_processing_ms: float = 0.05
    #: per-delivered-message handling at a client
    client_processing_ms: float = 0.1
    #: multiplier on the ring cycle time before an unreachable daemon is
    #: declared failed and a configuration change starts
    failure_detection_cycles: float = 3.0
    #: flow control: how many messages one daemon may sequence per token
    #: visit (Totem's per-visit window); excess waits for the next rotation
    token_window: int = 3
    #: how long a daemon waits on a sequence gap before requesting
    #: retransmission (Totem recovers lost frames via the token; we model
    #: it as a NACK to a peer daemon)
    retransmit_timeout_ms: float = 4.0
    #: delivered messages retained per configuration to serve
    #: retransmission requests
    retransmit_history: int = 256
    #: how many times the origin re-sends an Agreed frame lost to a link
    #: fault (Totem's circulating token recovers the multicast stream for
    #: as long as the configuration lives; the cap only bounds simulation
    #: work on totally dead links)
    retransmit_retries: int = 20


@dataclass(frozen=True)
class Link:
    """One-way characteristics between two machines."""

    latency_ms: float
    bytes_per_ms: float


class Topology:
    """A set of machines grouped into sites, with pairwise link properties."""

    def __init__(
        self,
        name: str,
        machines: List[Machine],
        site_latency_ms: Dict[Tuple[str, str], float],
        intra_site_latency_ms: float = 0.08,
        same_machine_latency_ms: float = 0.01,
        lan_bytes_per_ms: float = 12_500.0,  # 100 Mbit/s
        wan_bytes_per_ms: float = 1_250.0,  # 10 Mbit/s
        params: GcsParams = GcsParams(),
    ):
        self.name = name
        self.machines = machines
        self.params = params
        self._site_latency = dict(site_latency_ms)
        for (a, b), lat in list(self._site_latency.items()):
            self._site_latency[(b, a)] = lat
        self._intra = intra_site_latency_ms
        self._local = same_machine_latency_ms
        self._lan_bw = lan_bytes_per_ms
        self._wan_bw = wan_bytes_per_ms
        self._by_name = {m.name: m for m in machines}
        if len(self._by_name) != len(machines):
            raise ValueError("machine names must be unique")
        # Links are immutable and the pair set is tiny compared to the
        # number of frames sent over them; memoize successes only, so an
        # unconfigured pair still raises on every lookup.
        self._link_cache: Dict[Tuple[str, str], Link] = {}

    def machine(self, name: str) -> Machine:
        """Look up a machine by name."""
        return self._by_name[name]

    @property
    def sites(self) -> List[str]:
        """Site names in first-appearance order."""
        seen: List[str] = []
        for m in self.machines:
            if m.site not in seen:
                seen.append(m.site)
        return seen

    def link(self, src: Machine, dst: Machine) -> Link:
        """One-way link characteristics between two machines."""
        cache_key = (src.name, dst.name)
        cached = self._link_cache.get(cache_key)
        if cached is not None:
            return cached
        if src is dst:
            link = Link(self._local, self._lan_bw)
        elif src.site == dst.site:
            link = Link(self._intra, self._lan_bw)
        else:
            key = (src.site, dst.site)
            if key not in self._site_latency:
                raise KeyError(f"no latency configured between {key}")
            link = Link(self._site_latency[key], self._wan_bw)
        self._link_cache[cache_key] = link
        return link

    def one_way_ms(self, src: Machine, dst: Machine, size_bytes: int = 0) -> float:
        """Propagation + transmission delay for a message of ``size_bytes``."""
        link = self.link(src, dst)
        return link.latency_ms + size_bytes / link.bytes_per_ms

    def round_trip_ms(self, src: Machine, dst: Machine) -> float:
        """Ping-style round trip between two machines (empty payload)."""
        return self.one_way_ms(src, dst) + self.one_way_ms(dst, src)


def lan_testbed(params: GcsParams = GcsParams()) -> Topology:
    """The paper's LAN cluster: 13 dual-processor 666 MHz PIII machines."""
    machines = [
        Machine(f"lan{i}", site="jhu-lan", cores=2, speed=1.0) for i in range(13)
    ]
    return Topology("lan", machines, site_latency_ms={}, params=params)


def wan_testbed(params: GcsParams = GcsParams()) -> Topology:
    """The paper's WAN testbed (Figure 13): JHU (11 machines), UCI, ICU.

    One-way latencies are half the reported ping RTTs: JHU-UCI 17.5 ms,
    UCI-ICU 75 ms, ICU-JHU 67.5 ms.  The paper mixes platforms (ten dual
    666 MHz PIIIs plus one faster Athlon and one slower PIII); we model the
    Athlon at UCI (speed 1.3) and the slower PIII at ICU (speed 0.65),
    which reproduces the paper's platform-dependent RSA timings.
    """
    machines = [
        Machine(f"jhu{i}", site="jhu", cores=2, speed=1.0) for i in range(11)
    ]
    machines.append(Machine("uci0", site="uci", cores=1, speed=1.3))
    machines.append(Machine("icu0", site="icu", cores=1, speed=0.65))
    return Topology(
        "wan",
        machines,
        site_latency_ms={
            ("jhu", "uci"): 17.5,
            ("uci", "icu"): 75.0,
            ("icu", "jhu"): 67.5,
        },
        params=params,
    )


def medium_wan_testbed(
    rtt_ms: float = 70.0, params: GcsParams = GcsParams()
) -> Topology:
    """The paper's future-work setting: a medium-delay (40-100 ms RTT) WAN.

    Three sites of 5/4/4 dual-CPU machines with symmetric ``rtt_ms``
    round-trip inter-site latency.
    """
    if not 1.0 <= rtt_ms <= 1000.0:
        raise ValueError("rtt_ms out of plausible range")
    machines = [Machine(f"a{i}", site="site-a", cores=2) for i in range(5)]
    machines += [Machine(f"b{i}", site="site-b", cores=2) for i in range(4)]
    machines += [Machine(f"c{i}", site="site-c", cores=2) for i in range(4)]
    one_way = rtt_ms / 2
    return Topology(
        f"medium-wan-{rtt_ms:g}ms",
        machines,
        site_latency_ms={
            ("site-a", "site-b"): one_way,
            ("site-b", "site-c"): one_way,
            ("site-c", "site-a"): one_way,
        },
        params=params,
    )


#: Named testbed factories, so experiment specs and CLIs can refer to a
#: topology by name instead of importing factories.
TESTBEDS = {
    "lan": lan_testbed,
    "wan": wan_testbed,
    "medium-wan": medium_wan_testbed,
}
