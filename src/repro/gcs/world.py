"""Construction and control of a simulated Spread deployment.

:class:`GcsWorld` wires together the simulator, network, one daemon per
machine and the bootstrap token ring, and offers the fault-injection knobs
(partition / heal) the paper's membership events require.

It is the *simulated* implementation of the
:class:`repro.transport.Transport` interface: :meth:`channel` hands out
:class:`~repro.gcs.client.SpreadClient` group channels, :attr:`scheduler`
is the virtual-time simulator, and :meth:`machine` returns the contended
CPU model of a testbed machine.  Everything beyond the interface —
partitions, crashes, link faults, tracing — is the simulator's own
value-add on top of the transport contract.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence

from repro.gcs.client import SpreadClient
from repro.gcs.daemon import Config, Daemon
from repro.gcs.network import Network
from repro.gcs.ring import TokenRing
from repro.gcs.topology import Topology
from repro.obs import Observability
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.transport.base import CAP_FAULTS, CAP_TRACE, CAP_VIRTUAL_TIME


class GcsWorld:
    """A running group communication deployment on a topology."""

    kind = "sim"
    capabilities = frozenset({CAP_VIRTUAL_TIME, CAP_FAULTS, CAP_TRACE})

    def __init__(
        self,
        topology: Topology,
        trace: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.topology = topology
        self.params = topology.params
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        self.obs = obs or Observability(enabled=False)
        if self.obs.enabled:
            # Thread causal context along the event graph: scheduling
            # stamps the ambient cause on each event, firing restores it.
            self.sim.cause_hook = self.obs.causality
        for machine in topology.machines:
            machine.obs = self.obs
        self.network = Network(self.sim, topology, self.tracer, obs=self.obs)
        self.daemons: Dict[int, Daemon] = {}
        self.client_directory: Dict[str, Daemon] = {}
        for index, machine in enumerate(topology.machines):
            daemon = Daemon(index, machine, self)
            self.daemons[index] = daemon
            self.network.register(daemon)
        ring = TokenRing(topology, topology.machines, self.sim)
        config = Config(
            config_id=(1, 0), daemon_ids=tuple(sorted(self.daemons)), ring=ring
        )
        for daemon in self.daemons.values():
            daemon.install_initial(config)
        self._bootstrap_cycle_ms = ring.cycle_ms

    # -- the Transport interface -------------------------------------------

    def channel(self, name: str, machine_index: int) -> SpreadClient:
        """Create a client process on the given machine's daemon."""
        return SpreadClient(name, self.daemons[machine_index])

    def client(self, name: str, machine_index: int) -> SpreadClient:
        """Deprecated alias of :meth:`channel` (the transport-interface
        name); kept so pre-transport scripts keep running."""
        warnings.warn(
            "GcsWorld.client is deprecated; use GcsWorld.channel "
            "(the Transport interface spelling)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.channel(name, machine_index)

    def spawn_clients(self, names: Sequence[str]) -> List[SpreadClient]:
        """Create clients distributed uniformly across machines (§6.1.1:
        "group members are uniformly distributed on the thirteen machines")."""
        count = len(self.topology.machines)
        return [self.channel(name, i % count) for i, name in enumerate(names)]

    @property
    def scheduler(self) -> Simulator:
        """The transport's clock/timer service: the simulator itself."""
        return self.sim

    def machine(self, machine_index: int):
        """CPU-accounting handle for a process slot: the testbed machine."""
        return self.topology.machines[machine_index]

    def machine_count(self) -> int:
        return len(self.topology.machines)

    def bind(self, obs: Observability) -> None:
        """Late-attach a flight recorder (no-op here: the world receives
        its recorder at construction; the method completes the Transport
        interface for substrates built before their framework)."""
        if obs is not self.obs and obs.enabled:
            raise RuntimeError(
                "GcsWorld takes its Observability at construction; build "
                "the framework with observe=... instead of rebinding"
            )

    # -- fault injection -----------------------------------------------------

    def default_detection_ms(self) -> float:
        """Failure-detector latency: a few bootstrap ring cycles."""
        return self.params.failure_detection_cycles * self._bootstrap_cycle_ms

    def partition(
        self,
        components: Iterable[Iterable[int]],
        detection_delay_ms: Optional[float] = None,
    ) -> None:
        """Partition the network into components of machine indices."""
        delay = (
            self.default_detection_ms()
            if detection_delay_ms is None
            else detection_delay_ms
        )
        self.network.set_partition(components, delay)

    def heal(self, detection_delay_ms: Optional[float] = None) -> None:
        """Heal all partitions (a network merge event)."""
        delay = (
            self.default_detection_ms()
            if detection_delay_ms is None
            else detection_delay_ms
        )
        self.network.heal(delay)

    def isolate_machine(
        self, machine_index: int, detection_delay_ms: Optional[float] = None
    ) -> None:
        """Cut one machine off from the rest (its daemon and clients with
        it) — the closest simulable analogue of a machine crash from the
        surviving group's perspective (the paper treats a member crash as
        a leave, §5)."""
        others = [i for i in self.daemons if i != machine_index]
        self.partition([[machine_index], others], detection_delay_ms)

    def install_link_faults(self, faults) -> None:
        """Attach a :class:`repro.faults.link.LinkFaults` injector to the
        network (or detach it with ``None``)."""
        self.network.install_faults(faults)

    def crash_daemon(
        self, machine_index: int, detection_delay_ms: Optional[float] = None
    ) -> None:
        """Crash a machine's daemon: its volatile state and clients are
        lost, and the survivors reconfigure once their failure detectors
        notice."""
        delay = (
            self.default_detection_ms()
            if detection_delay_ms is None
            else detection_delay_ms
        )
        # Capture the peer set before the network marks the daemon dead.
        peers = self.network.component_of(machine_index) - {machine_index}
        self.daemons[machine_index].crash()
        self.network.note_crash(machine_index)
        self.network.notify_peers(peers, delay)

    def restart_daemon(
        self, machine_index: int, detection_delay_ms: Optional[float] = None
    ) -> None:
        """Restart a crashed daemon as a singleton configuration; it then
        merges back with its component through an ordinary heavyweight
        membership event."""
        delay = (
            self.default_detection_ms()
            if detection_delay_ms is None
            else detection_delay_ms
        )
        self.network.note_restart(machine_index)
        self.daemons[machine_index].restart()
        self.network.notify_peers(self.network.component_of(machine_index), delay)

    def crash_client(self, name: str) -> None:
        """Disconnect a client process abruptly (a member crash: the
        daemon notices immediately and the group sees a leave)."""
        daemon = self.client_directory.get(name)
        if daemon is None:
            raise KeyError(f"no connected client named {name!r}")
        daemon.clients[name].disconnect()

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`repro.sim.engine.Simulator.run`)."""
        self.sim.run(until=until)

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain."""
        self.sim.run_until_idle(max_events=max_events)
        if self.obs.enabled:
            self.obs.gauge("sim.events_processed").set(self.sim.events_processed)
            self.obs.gauge("sim.active_pending").set(self.sim.active_pending)
            self.obs.gauge("sim.now_ms").set(self.sim.now)

    @property
    def now(self) -> float:
        return self.sim.now
