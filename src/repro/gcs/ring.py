"""Totem-style token-ring sequencer for Agreed multicast.

Spread orders Agreed messages by circulating a token among daemons: only
the token holder may sequence messages (§6.2.2 — "group communication
systems use a mechanism where a token is passed between participants and
only the entity that has the token is allowed to send").  This is the
mechanism behind two of the paper's WAN findings: every broadcast waits
for the token (on average half a ring rotation), and "simultaneous"
broadcasts from different members serialize on token visits — in *ring*
order, so one sweep services every daemon with pending messages.

While work is pending the token hops from daemon to daemon as discrete
events; when a full rotation finds nothing to sequence, the token *parks*
and its position is thereafter tracked arithmetically, preserving exactly
the arrival times a continuously rotating token would have.

A message sequenced by daemon *s* becomes deliverable at daemon *d* only
once the token has swept from *s* to *d* (the ordering-settlement
barrier), which is what stretches a WAN Agreed delivery beyond raw
propagation time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gcs.topology import Topology
from repro.sim.cpu import Machine
from repro.sim.engine import Simulator

#: Callback type: receives [(seq, sequenced_at_ms), ...] for its burst.
SequenceCallback = Callable[[List[Tuple[int, float]]], None]


class TokenRing:
    """Sequencer for one daemon configuration.

    ``machines`` fixes the ring order (daemon-id order, which groups
    machines by site so the token crosses each WAN link once per cycle).
    """

    def __init__(
        self,
        topology: Topology,
        machines: Sequence[Machine],
        sim: Optional[Simulator] = None,
    ):
        if not machines:
            raise ValueError("a ring needs at least one daemon")
        self._machines = list(machines)
        self._params = topology.params
        self._sim = sim
        n = len(machines)
        self._hop_ms: List[float] = []
        for i in range(n):
            nxt = machines[(i + 1) % n]
            hop = topology.one_way_ms(machines[i], nxt) + self._params.hop_processing_ms
            self._hop_ms.append(hop)
        self.cycle_ms = sum(self._hop_ms)
        # Token travel times, precomputed: every Agreed delivery asks for
        # the sweep distance from its sequencer (the ordering-settlement
        # barrier), which made the on-demand hop walk a top profile entry
        # at large n.  Each row accumulates hops in the exact order the
        # walk did, so the floats are bit-identical.
        self._distance_ms: List[List[float]] = []
        for src in range(n):
            row = [0.0] * n
            total = 0.0
            i = src
            nxt = (i + 1) % n
            while nxt != src:
                total += self._hop_ms[i]
                row[nxt] = total
                i = nxt
                nxt = (i + 1) % n
            self._distance_ms.append(row)
        # Parked-token state: it was at position ``_pos`` at time ``_time``
        # and has been rotating freely since.
        self._pos = 0
        self._time = 0.0
        self._next_seq = 1
        self._active = False
        self._pending: Dict[int, List[Tuple[int, SequenceCallback]]] = {}
        self._idle_hops = 0

    # -- static geometry ---------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._machines)

    def distance_ms(self, src_index: int, dst_index: int) -> float:
        """Token travel time from ``src_index`` forward to ``dst_index``.

        Zero when src == dst (the sequencer itself needs no settlement
        sweep: it holds the token).
        """
        return self._distance_ms[src_index][dst_index]

    @property
    def next_seq(self) -> int:
        """The sequence number the next sequenced message will get."""
        return self._next_seq

    # -- parked-position arithmetic -----------------------------------------

    def _advance_to(self, now: float) -> None:
        """Move the parked token's state to where it would be at ``now``."""
        if self._time >= now or len(self._machines) == 1:
            return
        elapsed = now - self._time
        full_cycles = int(elapsed // self.cycle_ms)
        self._time += full_cycles * self.cycle_ms
        while self._time + self._hop_ms[self._pos] <= now:
            self._time += self._hop_ms[self._pos]
            self._pos = (self._pos + 1) % len(self._machines)

    def arrival_at(self, index: int, now: float) -> float:
        """When a free-rotating token next reaches ``index`` at/after ``now``.

        Only meaningful while the token is parked (used by tests and
        latency estimation); while active the hop events govern arrivals.
        """
        if len(self._machines) == 1:
            return max(self._time, now)
        self._advance_to(now)
        t = self._time
        pos = self._pos
        while pos != index:
            t += self._hop_ms[pos]
            pos = (pos + 1) % len(self._machines)
        if t < now:
            t += self.cycle_ms
        return t

    # -- sequencing ----------------------------------------------------------

    def request(self, index: int, count: int, callback: SequenceCallback) -> None:
        """Ask for ``count`` sequence numbers at daemon ``index``.

        The callback fires when the token next visits ``index`` — requests
        across daemons are serviced in ring order, one sweep per rotation,
        exactly like a physical token.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if not 0 <= index < len(self._machines):
            raise IndexError(f"no daemon at ring position {index}")
        if self._sim is None:
            raise RuntimeError("this ring was built without a simulator")
        self._pending.setdefault(index, []).append((count, callback))
        if not self._active:
            self._activate()

    def _activate(self) -> None:
        now = self._sim.now
        self._advance_to(now)
        if self._time < now:
            # The token already left ``_pos``; it next arrives one hop on.
            self._time += self._hop_ms[self._pos]
            self._pos = (self._pos + 1) % len(self._machines)
            self._time = max(self._time, now)  # single-daemon rings
        self._active = True
        self._idle_hops = 0
        self._sim.schedule_at(self._time, self._visit)

    def _visit(self) -> None:
        """The token arrives at ``self._pos``: service its queue, hop on."""
        index = self._pos
        queue = self._pending.pop(index, [])
        # Flow control: at most ``token_window`` messages per visit; the
        # rest wait for the next rotation (Totem's sequencing window).
        window = max(self._params.token_window, 1)
        burst, leftover = [], []
        taken = 0
        for count, callback in queue:
            if taken + count <= window or not burst:
                burst.append((count, callback))
                taken += count
            else:
                leftover.append((count, callback))
        if leftover:
            self._pending[index] = leftover
        t = self._time
        if burst:
            self._idle_hops = 0
            for count, callback in burst:
                assignments = []
                for _ in range(count):
                    t += self._params.msg_processing_ms
                    assignments.append((self._next_seq, t))
                    self._next_seq += 1
                callback(assignments)
        else:
            self._idle_hops += 1
        if not self._pending and self._idle_hops >= len(self._machines):
            # A full quiet rotation: park here (lazy rotation resumes).
            self._active = False
            self._time = t
            return
        self._time = t + self._hop_ms[index]
        self._pos = (index + 1) % len(self._machines)
        self._sim.schedule_at(self._time, self._visit)
