"""Message and view types of the group communication system."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Tuple

_MSG_IDS = itertools.count(1)


class Service(Enum):
    """Delivery service levels (a subset of Spread's)."""

    #: FIFO from a single sender, no inter-sender ordering; used for
    #: point-to-point protocol messages (e.g. GDH's token passing).
    FIFO = "fifo"
    #: Totally ordered with respect to all Agreed traffic in the group;
    #: Spread's AGREED_MESS.
    AGREED = "agreed"


class ViewEvent(Enum):
    """Why a membership view changed (paper §5: the four event types)."""

    JOIN = "join"
    LEAVE = "leave"
    PARTITION = "partition"
    MERGE = "merge"
    #: Initial view a member receives when its own join is installed.
    INITIAL = "initial"


@dataclass
class GroupMessage:
    """An application or membership message inside one group.

    ``target`` narrows delivery to a single member while retaining the
    service level's ordering cost — Secure Spread sends GDH's factor-out
    "unicasts" as Agreed messages targeted at the controller (§6.2.2
    explains why this is required for robustness and what it costs).
    """

    group: str
    sender: str
    payload: Any
    service: Service = Service.AGREED
    size_bytes: int = 64
    kind: str = "data"  # "data" | "join" | "leave" | "disconnect"
    target: Optional[str] = None
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))
    #: causal provenance (``(span_id, trace_id)`` or None): the cause
    #: active when the sender submitted the message.  Stamped once by
    #: :meth:`repro.gcs.daemon.Daemon.submit` and carried through
    #: sequencing and dissemination (including configuration-change
    #: resubmits, which preserve the original), so a frame's recorded
    #: spans parent under the send that produced it — pure metadata,
    #: never consulted by any delivery decision.
    cause: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class SequencedMessage:
    """A group message stamped by the token with a global sequence number.

    Frozen: one instance is broadcast by reference to every daemon (see
    :meth:`repro.gcs.network.Network.broadcast_frame`), retained in
    sent/history buffers and re-served on NACKs, so it must never mutate.
    """

    config_id: Tuple[int, int]
    seq: int
    origin_daemon: int
    sequenced_at: float
    message: GroupMessage


@dataclass(frozen=True)
class View:
    """A membership view delivered to group members.

    ``members`` is ordered by join age (oldest first) consistently at every
    member — the ordering CKD uses to pick the oldest member as controller
    and GDH uses to pick the newest as the merge token target.

    ``view_id`` is ``(config_id, seq)``: the daemon configuration the view
    was installed in plus the sequence number of the membership message
    (0 for configuration-change views), totally ordered per member.
    """

    view_id: Tuple
    group: str
    members: Tuple[str, ...]
    event: ViewEvent
    joined: Tuple[str, ...] = ()
    left: Tuple[str, ...] = ()

    @property
    def oldest(self) -> str:
        """The longest-standing member (CKD's controller)."""
        return self.members[0]

    @property
    def newest(self) -> str:
        """The most recent member (GDH's group controller)."""
        return self.members[-1]

    def __contains__(self, member: str) -> bool:
        return member in self.members
