"""A Spread-like group communication system on the discrete-event simulator.

Reproduces the architecture the paper's Secure Spread runs on (§3.1):

* a **daemon** per machine; clients connect to their local daemon
  (:mod:`repro.gcs.daemon`, :mod:`repro.gcs.client`);
* **Agreed** (totally ordered) multicast sequenced by a Totem-style token
  circulating the daemon ring (:mod:`repro.gcs.ring`);
* **view-synchronous membership**: lightweight client join/leave as a single
  agreed message, heavyweight daemon-configuration changes (partitions,
  merges, crashes) through a coordinator-driven propose/accept/install
  protocol with flush and message retransmission
  (:mod:`repro.gcs.membership` inside the daemon);
* the paper's **testbeds**: a 13-machine dual-CPU LAN cluster and the
  JHU/UCI/ICU WAN with 35/150/135 ms round-trip latencies
  (:mod:`repro.gcs.topology`).
"""

from repro.gcs.client import SpreadClient
from repro.gcs.daemon import Daemon
from repro.gcs.messages import Service, View, ViewEvent
from repro.gcs.network import Network
from repro.gcs.ring import TokenRing
from repro.gcs.topology import (
    GcsParams,
    Topology,
    lan_testbed,
    medium_wan_testbed,
    wan_testbed,
)
from repro.gcs.world import GcsWorld

__all__ = [
    "SpreadClient",
    "Daemon",
    "Service",
    "View",
    "ViewEvent",
    "Network",
    "TokenRing",
    "GcsParams",
    "Topology",
    "lan_testbed",
    "medium_wan_testbed",
    "wan_testbed",
    "GcsWorld",
]
