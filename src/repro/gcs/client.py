"""The Spread client library: the API applications (and Secure Spread) use.

A client is one process linked with the library (§3.1): it connects to the
daemon on its machine, joins/leaves groups, multicasts with a chosen
service level, and receives messages and membership views via callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.gcs.messages import GroupMessage, Service, View
from repro.transport.base import (
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)


class SpreadClient:
    """One client process connected to a local daemon.

    Callbacks (``on_message``, ``on_view``) receive ``(client, item)`` and
    run inside the simulation.  Delivered items are also appended to
    :attr:`received` / :attr:`views` for test assertions.
    """

    def __init__(self, name: str, daemon) -> None:
        self.name = validate_member_name(name)
        self.daemon = daemon
        self.world = daemon.world
        self.on_message: Optional[Callable[["SpreadClient", GroupMessage], None]] = None
        self.on_view: Optional[Callable[["SpreadClient", View], None]] = None
        self.received: List[GroupMessage] = []
        self.views: List[View] = []
        self.connected = True
        daemon.connect(self)

    # -- membership ------------------------------------------------------

    def join(self, group: str) -> None:
        """Join a group (a lightweight membership event: one Agreed message)."""
        self._require_connected()
        validate_group_name(group)
        message = GroupMessage(
            group=group,
            sender=self.name,
            payload={"daemon_id": self.daemon.daemon_id},
            kind="join",
            size_bytes=96,
        )
        self._submit(message)

    def leave(self, group: str) -> None:
        """Leave a group (a lightweight membership event: one Agreed message)."""
        self._require_connected()
        validate_group_name(group)
        message = GroupMessage(
            group=group, sender=self.name, payload=None, kind="leave", size_bytes=96
        )
        self._submit(message)

    def disconnect(self) -> None:
        """Detach from the daemon, implicitly leaving all groups."""
        self._require_connected()
        self.connected = False
        self.daemon.disconnect(self)

    # -- messaging ---------------------------------------------------------

    def multicast(
        self,
        group: str,
        payload: Any,
        service: Service = Service.AGREED,
        size_bytes: int = 64,
        target: Optional[str] = None,
    ) -> None:
        """Send to a group (or, with ``target``, to one member of it)."""
        self._require_connected()
        validate_group_name(group)
        validate_payload_size(size_bytes)
        if target is not None:
            validate_member_name(target)
        message = GroupMessage(
            group=group,
            sender=self.name,
            payload=payload,
            service=service,
            size_bytes=size_bytes,
            target=target,
        )
        self._submit(message)

    def unicast(
        self, group: str, target: str, payload: Any, size_bytes: int = 64
    ) -> None:
        """FIFO point-to-point message to one group member."""
        self.multicast(
            group, payload, service=Service.FIFO, size_bytes=size_bytes, target=target
        )

    # -- delivery (called by the daemon) ----------------------------------

    def _on_crashed(self) -> None:
        """The local daemon crashed: the connection is severed with no
        leave messages (the surviving daemons discover it themselves)."""
        self.connected = False

    def _on_message(self, message: GroupMessage) -> None:
        if not self.connected:
            return
        self.received.append(message)
        if self.world.obs.enabled:
            self.world.obs.counter(
                "client.messages_delivered", client=self.name
            ).inc()
        if self.on_message is not None:
            self.on_message(self, message)

    def _on_view(self, view: View) -> None:
        if not self.connected:
            return
        self.views.append(view)
        if self.world.obs.enabled:
            self.world.obs.counter(
                "client.views_delivered", client=self.name
            ).inc()
        if self.on_view is not None:
            self.on_view(self, view)

    # -- internals ---------------------------------------------------------

    def _submit(self, message: GroupMessage) -> None:
        self.world.sim.schedule(
            self.world.params.ipc_ms, self.daemon.submit, message
        )

    def _require_connected(self) -> None:
        if not self.connected:
            raise RuntimeError(f"client {self.name!r} is disconnected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpreadClient({self.name!r} @ d{self.daemon.daemon_id})"
