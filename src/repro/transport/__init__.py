"""``repro.transport`` — the substrate seam of the Secure Spread stack.

A *transport* is everything below :class:`repro.core.secure_group.
SecureGroupMember`: it hands out group channels (join/leave/multicast
with Spread's service levels, message and view callbacks), a scheduler
(the clock timers run against) and per-process CPU accounting.  Two
implementations exist:

* :class:`repro.gcs.world.GcsWorld` — the discrete-event simulator:
  virtual time, a modelled CPU per machine, deterministic fault
  injection and causal tracing on top of the interface.
* :class:`repro.net.runner.AsyncioTransport` — a real Spread-like
  daemon over localhost/LAN TCP sockets: wall-clock time, real CPU,
  no fault injection (the network is the fault injector).

The five key agreement protocols, :class:`~repro.core.secure_group.
SecureGroupMember` and :class:`~repro.core.framework.
SecureSpreadFramework` are written against this interface only, so a
secure group runs unchanged on either substrate.
"""

from repro.transport.base import (
    CAP_FAULTS,
    CAP_TRACE,
    CAP_VIRTUAL_TIME,
    MAX_GROUP_NAME_BYTES,
    MAX_MEMBER_NAME_BYTES,
    MAX_PAYLOAD_BYTES,
    GroupChannel,
    Scheduler,
    Transport,
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)

__all__ = [
    "CAP_FAULTS",
    "CAP_TRACE",
    "CAP_VIRTUAL_TIME",
    "GroupChannel",
    "MAX_GROUP_NAME_BYTES",
    "MAX_MEMBER_NAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "Scheduler",
    "Transport",
    "validate_group_name",
    "validate_member_name",
    "validate_payload_size",
]
