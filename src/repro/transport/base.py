"""The :class:`Transport`/:class:`GroupChannel` protocols and the input
validation every substrate applies at its API boundary.

The interfaces are :class:`typing.Protocol` classes (structural), so the
simulated world and the asyncio backend implement them without a shared
base class; ``isinstance`` checks work through ``runtime_checkable``.

What the interface guarantees (both substrates):

* **View synchrony for surviving members** — every member of a group
  sees the same sequence of membership views, each carrying the members
  ordered by join age (oldest first) identically everywhere.
* **Agreed total order** — ``Service.AGREED`` multicasts (including the
  join/leave membership messages themselves) are delivered in one
  global order per group, the same at every member.
* **FIFO unicast** — targeted ``Service.FIFO`` messages preserve
  per-sender order but carry no inter-sender ordering.

What only the simulator adds on top: virtual time (bit-identical runs
for a given seed), deterministic fault injection and partition/merge
events, causal tracing, and a modelled CPU per machine.  The asyncio
backend runs on wall-clock time and real CPUs; its failure detector is
heartbeat-based suspicion rather than an omniscient reachability oracle.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from typing import Protocol, runtime_checkable

from repro.gcs.messages import Service

#: Capability tags a transport advertises in :attr:`Transport.capabilities`.
CAP_VIRTUAL_TIME = "virtual-time"
CAP_FAULTS = "faults"
CAP_TRACE = "trace"

#: Spread limits group names to 32 bytes; we are a little more generous
#: but still bounded, so a malformed name fails here with a clear error
#: instead of deep inside ring sequencing.
MAX_GROUP_NAME_BYTES = 64
MAX_MEMBER_NAME_BYTES = 64

#: Spread's default maximum message is ~140 KB; anything larger must be
#: fragmented by the application.
MAX_PAYLOAD_BYTES = 140 * 1024


def validate_group_name(group: Any) -> str:
    """Validate a group name at the API boundary; returns it unchanged.

    Raises :class:`ValueError` (never an opaque ``KeyError`` from the
    sequencing internals) for anything that is not a printable, bounded,
    non-empty string.
    """
    if not isinstance(group, str):
        raise ValueError(
            f"group name must be a str, not {type(group).__name__}"
        )
    if not group:
        raise ValueError("group name must not be empty")
    encoded = group.encode("utf-8", errors="replace")
    if len(encoded) > MAX_GROUP_NAME_BYTES:
        raise ValueError(
            f"group name exceeds {MAX_GROUP_NAME_BYTES} bytes: {group[:32]!r}..."
        )
    if any(ch in group for ch in ("\x00", "\n", "\r")):
        raise ValueError(f"group name contains control characters: {group!r}")
    return group


def validate_member_name(name: Any) -> str:
    """Validate a member/client name; same discipline as group names."""
    if not isinstance(name, str):
        raise ValueError(
            f"member name must be a str, not {type(name).__name__}"
        )
    if not name:
        raise ValueError("member name must not be empty")
    if len(name.encode("utf-8", errors="replace")) > MAX_MEMBER_NAME_BYTES:
        raise ValueError(
            f"member name exceeds {MAX_MEMBER_NAME_BYTES} bytes: {name[:32]!r}..."
        )
    if any(ch in name for ch in ("\x00", "\n", "\r")):
        raise ValueError(f"member name contains control characters: {name!r}")
    return name


def validate_payload_size(size_bytes: Any) -> int:
    """Validate a declared payload size; returns it unchanged."""
    if isinstance(size_bytes, bool) or not isinstance(size_bytes, int):
        raise ValueError(
            f"size_bytes must be an int, not {type(size_bytes).__name__}"
        )
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
    if size_bytes > MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"size_bytes {size_bytes} exceeds the {MAX_PAYLOAD_BYTES}-byte "
            "message limit; fragment the payload"
        )
    return size_bytes


@runtime_checkable
class Scheduler(Protocol):
    """The clock and timer service a transport exposes.

    The simulator's :class:`~repro.sim.engine.Simulator` satisfies this
    directly (virtual milliseconds); the asyncio backend wraps the event
    loop (wall-clock milliseconds).  Returned handles expose a settable
    ``cause`` attribute so causal tracing can annotate them.
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay_ms: float, fn: Callable, *args: Any) -> Any: ...

    def schedule_at(self, time_ms: float, fn: Callable, *args: Any) -> Any: ...


@runtime_checkable
class GroupChannel(Protocol):
    """One process's connection to the group communication substrate.

    Channels deliver :class:`~repro.gcs.messages.GroupMessage` and
    :class:`~repro.gcs.messages.View` objects through the ``on_message``
    and ``on_view`` callbacks (each called with ``(channel, item)``), and
    additionally append them to ``received`` / ``views`` for assertions.
    """

    name: str
    connected: bool

    def join(self, group: str) -> None: ...

    def leave(self, group: str) -> None: ...

    def multicast(
        self,
        group: str,
        payload: Any,
        service: Service = Service.AGREED,
        size_bytes: int = 64,
        target: Optional[str] = None,
    ) -> None: ...

    def unicast(
        self, group: str, target: str, payload: Any, size_bytes: int = 64
    ) -> None: ...

    def disconnect(self) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """A group communication substrate the secure stack can run on.

    ``machine(i)`` returns the CPU-accounting handle for process slot
    ``i`` — the simulator's contended :class:`~repro.sim.cpu.Machine`,
    or the asyncio backend's pass-through (real work already consumed
    real time).  It must expose ``name`` and the ``submit(...)``
    signature of :meth:`repro.sim.cpu.Machine.submit`.
    """

    kind: str
    capabilities: frozenset

    @property
    def scheduler(self) -> Scheduler: ...

    @property
    def now(self) -> float: ...

    def channel(self, name: str, machine_index: int) -> GroupChannel: ...

    def machine(self, machine_index: int) -> Any: ...

    def machine_count(self) -> int: ...

    def bind(self, obs: Any) -> None: ...

    def run_until_idle(self, max_events: int = 1_000_000) -> None: ...
