"""Timed fault scenarios, replayable from a plain spec dict.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
injections — partitions, heals, daemon crashes and restarts, link-policy
changes, and membership churn — installed on a
:class:`~repro.core.framework.SecureSpreadFramework` as ordinary
simulator events.  Because the simulator is deterministic and every
injection is either parameter-free or seeded, replaying the same
schedule with the same seed reproduces the run bit-for-bit.

Scenario builders (:func:`partition_storm`, :func:`coordinator_kill`,
:func:`cascaded_churn`) capture the paper's §5 stress cases: cascaded
membership events interrupting a rekey, merges arriving mid-agreement,
and the coordinator dying at the worst moment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.link import LinkFaults, LinkPolicy

#: every action a schedule may perform, and the args it understands
ACTIONS = {
    "partition": ("components", "detection_delay_ms"),
    "heal": ("detection_delay_ms",),
    "crash": ("machine", "detection_delay_ms"),
    "restart": ("machine", "detection_delay_ms"),
    "link": ("policy", "src", "dst"),
    "link-clear": (),
    "join": ("member", "machine", "group"),
    "leave": ("member",),
    "mark": (),
}


@dataclass(frozen=True)
class FaultEvent:
    """One timed injection."""

    at_ms: float
    action: str
    args: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {sorted(ACTIONS)}"
            )
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        allowed = set(ACTIONS[self.action])
        for key, _ in self.args:
            if key not in allowed:
                raise ValueError(
                    f"action {self.action!r} does not accept {key!r}"
                )

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.args)

    def to_dict(self) -> dict:
        spec = {"at_ms": self.at_ms, "action": self.action}
        spec.update(self.kwargs)
        return spec


def _event(at_ms: float, action: str, **kwargs) -> FaultEvent:
    return FaultEvent(at_ms, action, tuple(sorted(kwargs.items())))


class FaultSchedule:
    """A deterministic script of timed fault injections."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: e.at_ms
        )
        #: ``(virtual_time, action)`` log of injections actually applied
        self.applied: List[Tuple[float, str]] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- construction -------------------------------------------------------

    def add(self, at_ms: float, action: str, **kwargs) -> "FaultSchedule":
        """Append one injection (chainable)."""
        self.events.append(_event(at_ms, action, **kwargs))
        self.events.sort(key=lambda e: e.at_ms)
        return self

    @classmethod
    def from_spec(cls, spec: Sequence[dict]) -> "FaultSchedule":
        """Build a schedule from a list of plain dicts.

        Each entry needs ``at_ms`` (or ``at``) and ``action``; remaining
        keys are the action's arguments.  ``link`` entries may give the
        policy inline as a dict under ``policy``.
        """
        events = []
        for entry in spec:
            entry = dict(entry)
            at_ms = entry.pop("at_ms", entry.pop("at", None))
            if at_ms is None:
                raise ValueError(f"spec entry missing 'at_ms': {entry}")
            action = entry.pop("action")
            events.append(_event(float(at_ms), action, **entry))
        return cls(events)

    def to_spec(self) -> List[dict]:
        """The inverse of :meth:`from_spec` (round-trips exactly)."""
        return [event.to_dict() for event in self.events]

    # -- installation -------------------------------------------------------

    def install(self, framework) -> "FaultSchedule":
        """Schedule every injection on the framework's simulator.

        Times are relative to the simulator clock at install time, so a
        schedule can be installed on a grown, settled group.  Returns
        ``self`` so the caller can inspect :attr:`applied` afterwards.
        """
        sim = framework.world.sim
        base = sim.now
        for event in self.events:
            sim.schedule_at(base + event.at_ms, self._apply, framework, event)
        return self

    def _apply(self, framework, event: FaultEvent) -> None:
        world = framework.world
        kwargs = event.kwargs
        self.applied.append((world.sim.now, event.action))
        world.tracer.record(
            world.sim.now, "fault", "schedule", action=event.action
        )
        if world.obs.enabled:
            world.obs.instant(
                "fault", event.action, "schedule", "world", world.sim.now
            )
        if event.action == "partition":
            world.partition(
                kwargs["components"],
                detection_delay_ms=kwargs.get("detection_delay_ms"),
            )
        elif event.action == "heal":
            world.heal(detection_delay_ms=kwargs.get("detection_delay_ms"))
        elif event.action == "crash":
            world.crash_daemon(
                kwargs["machine"],
                detection_delay_ms=kwargs.get("detection_delay_ms"),
            )
        elif event.action == "restart":
            world.restart_daemon(
                kwargs["machine"],
                detection_delay_ms=kwargs.get("detection_delay_ms"),
            )
        elif event.action == "link":
            faults = world.network.faults
            if faults is None:
                faults = LinkFaults(seed=getattr(framework, "seed", 0))
                world.install_link_faults(faults)
            policy = kwargs["policy"]
            if isinstance(policy, dict):
                policy = LinkPolicy.from_dict(policy)
            src, dst = kwargs.get("src"), kwargs.get("dst")
            if src is None and dst is None:
                faults.set_default(policy)
            else:
                faults.set_pair(src, dst, policy)
        elif event.action == "link-clear":
            if world.network.faults is not None:
                world.network.faults.clear()
        elif event.action == "join":
            member = framework.member(
                kwargs["member"],
                kwargs["machine"],
                kwargs.get("group", "secure-group"),
            )
            member.join()
        elif event.action == "leave":
            framework._members[kwargs["member"]].leave()
        elif event.action == "mark":
            framework.mark_event()
        else:  # pragma: no cover - FaultEvent validates actions
            raise ValueError(f"unknown action {event.action!r}")


# -- canned scenarios -------------------------------------------------------


def partition_storm(
    components: Sequence[Sequence[int]],
    rounds: int = 3,
    period_ms: float = 200.0,
    start_ms: float = 0.0,
    detection_delay_ms: Optional[float] = None,
) -> FaultSchedule:
    """Alternating partition/heal cycles — the paper's cascaded
    partition+merge stress (§5)."""
    schedule = FaultSchedule()
    t = start_ms
    for _ in range(rounds):
        kwargs = {"components": [list(c) for c in components]}
        if detection_delay_ms is not None:
            kwargs["detection_delay_ms"] = detection_delay_ms
        schedule.add(t, "partition", **kwargs)
        heal_kwargs = {}
        if detection_delay_ms is not None:
            heal_kwargs["detection_delay_ms"] = detection_delay_ms
        schedule.add(t + period_ms / 2, "heal", **heal_kwargs)
        t += period_ms
    return schedule


def coordinator_kill(
    machine: int = 0,
    at_ms: float = 0.0,
    restart_after_ms: Optional[float] = None,
) -> FaultSchedule:
    """Kill the configuration coordinator's machine (lowest daemon id is
    always the coordinator), optionally restarting it later."""
    schedule = FaultSchedule().add(at_ms, "crash", machine=machine)
    if restart_after_ms is not None:
        schedule.add(at_ms + restart_after_ms, "restart", machine=machine)
    return schedule


def cascaded_churn(
    joins: Sequence[Tuple[str, int]] = (),
    leaves: Sequence[str] = (),
    start_ms: float = 0.0,
    gap_ms: float = 5.0,
    group: str = "secure-group",
) -> FaultSchedule:
    """Back-to-back joins/leaves spaced ``gap_ms`` apart — cascaded
    membership events landing while the previous rekey is still running."""
    schedule = FaultSchedule()
    t = start_ms
    for name, machine in joins:
        schedule.add(t, "join", member=name, machine=machine, group=group)
        t += gap_ms
    for name in leaves:
        schedule.add(t, "leave", member=name)
        t += gap_ms
    return schedule
