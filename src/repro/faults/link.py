"""Per-link fault policies: drop, delay, duplicate, reorder.

A :class:`LinkFaults` injector sits on :class:`repro.gcs.network.Network`
and is consulted for every inter-machine frame.  All randomness comes
from one :class:`~repro.crypto.rng.DeterministicRandom` stream forked
from the injector's seed, and the simulator fires events in a fixed
order, so a faulty run is exactly as reproducible as a clean one: same
seed, same policies, same schedule ⇒ bit-identical trace.

Policies follow the loss model of lossy-network TGDH studies (Rault &
Iannone, arXiv:2004.09966): independent per-frame Bernoulli loss plus
optional extra latency, jitter, duplication and reordering.  Frames a
machine sends to itself never traverse a link and are exempt, as are the
membership protocol's control frames unless ``affect_control`` is set —
Spread runs its configuration-change exchange over its own retransmitted
channel, which the simulator models as reliable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, NamedTuple, Optional, Tuple

from repro.crypto.rng import DeterministicRandom


@dataclass(frozen=True)
class LinkPolicy:
    """Fault rates and delays for one direction of one link.

    ``drop``, ``duplicate`` and ``reorder`` are per-frame probabilities in
    ``[0, 1]``; ``delay_ms`` is added to every frame, ``jitter_ms`` is the
    width of a uniform extra delay, and a reordered frame is held back an
    extra ``reorder_delay_ms`` (enough to let later frames overtake it).
    """

    drop: float = 0.0
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay_ms: float = 2.0
    #: whether configuration-change control frames are also subject to
    #: this policy (default: the membership exchange stays reliable)
    affect_control: bool = False

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        for name in ("delay_ms", "jitter_ms", "reorder_delay_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def is_noop(self) -> bool:
        return (
            self.drop == 0.0
            and self.delay_ms == 0.0
            and self.jitter_ms == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
        )

    def to_dict(self) -> dict:
        return {
            "drop": self.drop,
            "delay_ms": self.delay_ms,
            "jitter_ms": self.jitter_ms,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "reorder_delay_ms": self.reorder_delay_ms,
            "affect_control": self.affect_control,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkPolicy":
        known = cls().to_dict()
        return cls(**{k: v for k, v in data.items() if k in known})


#: The do-nothing policy (module-level so ``policy_for`` can be cheap).
NO_FAULTS = LinkPolicy()


class FaultVerdict(NamedTuple):
    """What happens to one frame."""

    drop: bool = False
    extra_delay_ms: float = 0.0
    #: when set, deliver a second copy this much later than the first
    duplicate_delay_ms: Optional[float] = None


class LinkFaults:
    """Seeded per-link fault injector for a :class:`~repro.gcs.network.Network`.

    A default policy applies to every inter-machine link; per-direction
    overrides are keyed by ``(src_daemon_id, dst_daemon_id)``.
    """

    def __init__(self, seed: int = 0, default: Optional[LinkPolicy] = None):
        self.seed = seed
        self._rng = DeterministicRandom(seed).fork("link-faults")
        self.default_policy = default or NO_FAULTS
        self._overrides: Dict[Tuple[int, int], LinkPolicy] = {}
        # tallies, for tests and the chaos benchmark
        self.frames_seen = 0
        self.drops = 0
        self.duplicates = 0
        self.delayed = 0

    @classmethod
    def uniform(cls, seed: int = 0, **policy_fields) -> "LinkFaults":
        """An injector applying one policy to every link."""
        return cls(seed=seed, default=LinkPolicy(**policy_fields))

    # -- policy management -------------------------------------------------

    def set_default(self, policy: LinkPolicy) -> None:
        self.default_policy = policy

    def set_link(self, src: int, dst: int, policy: LinkPolicy) -> None:
        """Install a policy for one direction of one link."""
        self._overrides[(src, dst)] = policy

    def set_pair(self, a: int, b: int, policy: LinkPolicy) -> None:
        """Install a policy for both directions between two daemons."""
        self.set_link(a, b, policy)
        self.set_link(b, a, policy)

    def clear(self) -> None:
        """Remove every policy (the injector becomes a no-op)."""
        self.default_policy = NO_FAULTS
        self._overrides.clear()

    def policy_for(self, src: int, dst: int) -> LinkPolicy:
        return self._overrides.get((src, dst), self.default_policy)

    # -- the per-frame decision --------------------------------------------

    def apply(self, src: int, dst: int, control: bool = False) -> FaultVerdict:
        """Decide one frame's fate.  Draws from the seeded stream only when
        the governing policy is active, so installing a no-op injector
        leaves the random stream (and hence the simulation) untouched."""
        policy = self.policy_for(src, dst)
        if policy.is_noop or (control and not policy.affect_control):
            return FaultVerdict()
        self.frames_seen += 1
        if policy.drop and self._rng.uniform(0.0, 1.0) < policy.drop:
            self.drops += 1
            return FaultVerdict(drop=True)
        extra = policy.delay_ms
        if policy.jitter_ms:
            extra += self._rng.uniform(0.0, policy.jitter_ms)
        if policy.reorder and self._rng.uniform(0.0, 1.0) < policy.reorder:
            extra += policy.reorder_delay_ms
        duplicate_delay = None
        if policy.duplicate and self._rng.uniform(0.0, 1.0) < policy.duplicate:
            self.duplicates += 1
            duplicate_delay = max(policy.reorder_delay_ms, 0.1)
        if extra:
            self.delayed += 1
        return FaultVerdict(False, extra, duplicate_delay)

    def scaled(self, factor: float) -> "LinkFaults":
        """A fresh injector with every probability scaled by ``factor``
        (clamped to 1.0); used by sweeps over fault intensity."""
        fresh = LinkFaults(seed=self.seed)
        fresh.default_policy = _scale(self.default_policy, factor)
        for key, policy in self._overrides.items():
            fresh._overrides[key] = _scale(policy, factor)
        return fresh


def _scale(policy: LinkPolicy, factor: float) -> LinkPolicy:
    return replace(
        policy,
        drop=min(policy.drop * factor, 1.0),
        duplicate=min(policy.duplicate * factor, 1.0),
        reorder=min(policy.reorder * factor, 1.0),
    )
