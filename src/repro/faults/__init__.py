"""``repro.faults`` — deterministic, seeded fault injection.

The paper's evaluation presumes an *unreliable* network — §5 models
partitions, merges, crashes, and cascaded membership events interrupting
a rekey — but only argues qualitatively about them.  This package makes
those conditions first-class and reproducible:

* :class:`LinkPolicy` / :class:`LinkFaults` — per-link drop / delay /
  duplicate / reorder policies installed on the simulated network
  (:meth:`repro.gcs.world.GcsWorld.install_link_faults`), drawing all
  randomness from one seeded stream;
* daemon **crash / crash-restart** primitives live on
  :class:`~repro.gcs.world.GcsWorld` (``crash_daemon`` /
  ``restart_daemon``) and trigger real configuration changes;
* :class:`FaultSchedule` — a timed scenario script (partition storms,
  coordinator kills, cascaded churn) replayable from a plain spec dict;
* together with the rekey stall watchdog in
  :mod:`repro.core.secure_group`, faulty runs still converge to a
  confirmed shared key — the recovery discipline Secure Spread's
  references prescribe.

Everything is deterministic: same seed + same schedule ⇒ bit-identical
trace and benchmark output.
"""

from repro.faults.link import NO_FAULTS, FaultVerdict, LinkFaults, LinkPolicy
from repro.faults.schedule import (
    ACTIONS,
    FaultEvent,
    FaultSchedule,
    cascaded_churn,
    coordinator_kill,
    partition_storm,
)

__all__ = [
    "ACTIONS",
    "FaultEvent",
    "FaultSchedule",
    "FaultVerdict",
    "LinkFaults",
    "LinkPolicy",
    "NO_FAULTS",
    "cascaded_churn",
    "coordinator_kill",
    "partition_storm",
]
