"""Rendering of the paper's Table 1 (communication and computation costs).

``table1_rows`` produces the symbolic grid; ``render_table1`` formats it
for terminals; both can also evaluate the formulas at concrete sizes, which
is what the Table 1 benchmark prints next to instrumented measurements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.costs import conceptual_cost
from repro.gcs.messages import ViewEvent

#: Symbolic Table 1, matching the paper's presentation conventions
#: (n members, m merging, p leaving, h tree height).
SYMBOLIC: Dict[str, Dict[str, Dict[str, str]]] = {
    "GDH": {
        "Join": {"rounds": "4", "messages": "n+3", "unicast": "1",
                 "multicast": "n+2", "exponentiations": "n+1",
                 "signatures": "n+3", "verifications": "2n+1"},
        "Leave": {"rounds": "1", "messages": "1", "unicast": "0",
                  "multicast": "1", "exponentiations": "n-1",
                  "signatures": "1", "verifications": "n-2"},
        "Merge": {"rounds": "m+3", "messages": "n+2m+1", "unicast": "m",
                  "multicast": "n+m+1", "exponentiations": "n+m",
                  "signatures": "n+2m+1", "verifications": "2(n+m)-1"},
        "Partition": {"rounds": "1", "messages": "1", "unicast": "0",
                      "multicast": "1", "exponentiations": "n-p",
                      "signatures": "1", "verifications": "n-p-1"},
    },
    "TGDH": {
        "Join": {"rounds": "2", "messages": "3", "unicast": "0",
                 "multicast": "3", "exponentiations": "2h+1",
                 "signatures": "3", "verifications": "3"},
        "Leave": {"rounds": "1", "messages": "1", "unicast": "0",
                  "multicast": "1", "exponentiations": "2h",
                  "signatures": "1", "verifications": "1"},
        "Merge": {"rounds": "<=h+1", "messages": "2m+h", "unicast": "0",
                  "multicast": "2m+h", "exponentiations": "2h+1",
                  "signatures": "2m+h", "verifications": "2m+h"},
        "Partition": {"rounds": "<=h", "messages": "<=2h", "unicast": "0",
                      "multicast": "<=2h", "exponentiations": "2h",
                      "signatures": "<=2h", "verifications": "<=2h"},
    },
    "STR": {
        "Join": {"rounds": "2", "messages": "3", "unicast": "0",
                 "multicast": "3", "exponentiations": "5",
                 "signatures": "3", "verifications": "3"},
        "Leave": {"rounds": "1", "messages": "1", "unicast": "0",
                  "multicast": "1", "exponentiations": "~n+2 (avg)",
                  "signatures": "1", "verifications": "n-2"},
        "Merge": {"rounds": "2", "messages": "m+2", "unicast": "0",
                  "multicast": "m+2", "exponentiations": "2m+3",
                  "signatures": "m+2", "verifications": "m+2"},
        "Partition": {"rounds": "1", "messages": "1", "unicast": "0",
                      "multicast": "1", "exponentiations": "~n-p+2 (avg)",
                      "signatures": "1", "verifications": "n-p-1"},
    },
    "BD": {
        "Join": {"rounds": "2", "messages": "2(n+1)", "unicast": "0",
                 "multicast": "2(n+1)", "exponentiations": "3",
                 "signatures": "2", "verifications": "2n"},
        "Leave": {"rounds": "2", "messages": "2(n-1)", "unicast": "0",
                  "multicast": "2(n-1)", "exponentiations": "3",
                  "signatures": "2", "verifications": "2(n-2)"},
        "Merge": {"rounds": "2", "messages": "2(n+m)", "unicast": "0",
                  "multicast": "2(n+m)", "exponentiations": "3",
                  "signatures": "2", "verifications": "2(n+m-1)"},
        "Partition": {"rounds": "2", "messages": "2(n-p)", "unicast": "0",
                      "multicast": "2(n-p)", "exponentiations": "3",
                      "signatures": "2", "verifications": "2(n-p-1)"},
    },
    "CKD": {
        "Join": {"rounds": "3", "messages": "3", "unicast": "1",
                 "multicast": "2", "exponentiations": "n+2",
                 "signatures": "3", "verifications": "n+2"},
        "Leave": {"rounds": "1", "messages": "1", "unicast": "0",
                  "multicast": "1", "exponentiations": "n-1",
                  "signatures": "1", "verifications": "n-2"},
        "Merge": {"rounds": "3", "messages": "m+2", "unicast": "m",
                  "multicast": "2", "exponentiations": "n+2m",
                  "signatures": "m+2", "verifications": "n+3m-1"},
        "Partition": {"rounds": "1", "messages": "1", "unicast": "0",
                      "multicast": "1", "exponentiations": "n-p",
                      "signatures": "1", "verifications": "n-p-1"},
    },
}

_EVENT_NAMES = {
    "Join": ViewEvent.JOIN,
    "Leave": ViewEvent.LEAVE,
    "Merge": ViewEvent.MERGE,
    "Partition": ViewEvent.PARTITION,
}

_COLUMNS = ("rounds", "messages", "unicast", "multicast",
            "exponentiations", "signatures", "verifications")


def table1_rows(
    n: Optional[int] = None, m: int = 4, p: int = 4
) -> List[Tuple[str, str, Dict[str, str]]]:
    """The Table 1 grid, symbolic or evaluated at a concrete ``n``."""
    rows = []
    for protocol in ("GDH", "TGDH", "STR", "BD", "CKD"):
        for event_name, cells in SYMBOLIC[protocol].items():
            if n is None:
                rows.append((protocol, event_name, dict(cells)))
                continue
            cost = conceptual_cost(
                protocol, _EVENT_NAMES[event_name], n=n, m=m, p=p
            )
            rows.append(
                (
                    protocol,
                    event_name,
                    {
                        "rounds": str(cost.rounds),
                        "messages": str(cost.messages),
                        "unicast": str(cost.unicasts),
                        "multicast": str(cost.multicasts),
                        "exponentiations": str(cost.serial_exponentiations),
                        "signatures": str(cost.signatures),
                        "verifications": str(cost.verifications),
                    },
                )
            )
    return rows


def render_table1(n: Optional[int] = None, m: int = 4, p: int = 4) -> str:
    """Format the Table 1 grid for a terminal."""
    rows = table1_rows(n=n, m=m, p=p)
    title = (
        "Table 1: Communication and Computation Costs"
        + (f" (evaluated at n={n}, m={m}, p={p})" if n is not None else " (symbolic)")
    )
    header = f"{'Protocol':9s} {'Event':10s} " + " ".join(
        f"{c[:12]:>13s}" for c in _COLUMNS
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    last_protocol = None
    for protocol, event_name, cells in rows:
        shown = protocol if protocol != last_protocol else ""
        last_protocol = protocol
        lines.append(
            f"{shown:9s} {event_name:10s} "
            + " ".join(f"{cells[c]:>13s}" for c in _COLUMNS)
        )
    return "\n".join(lines)
