"""The paper's conceptual cost analysis (§5, Table 1).

:mod:`repro.analysis.costs` gives closed-form communication and computation
costs for all five protocols and all four membership events, re-derived
from this repository's implementations and cross-validated against
instrumented protocol runs by the test-suite.  :mod:`repro.analysis.table1`
renders the Table 1 grid; :mod:`repro.analysis.predict` turns formulas into
analytic time predictions for sanity-checking the simulator.
"""

from repro.analysis.costs import EventCost, conceptual_cost, EVENTS
from repro.analysis.predict import predict_elapsed_ms
from repro.analysis.table1 import render_table1, table1_rows

__all__ = [
    "EventCost",
    "conceptual_cost",
    "EVENTS",
    "predict_elapsed_ms",
    "render_table1",
    "table1_rows",
]
