"""Analytic elapsed-time prediction from the conceptual cost model.

A coarse closed-form predictor: serial crypto cost via the
:class:`~repro.crypto.costmodel.CostModel` plus communication rounds times
an estimated per-round latency.  Used to sanity-check simulator output —
the simulated elapsed time should land within a small factor of the
prediction (the simulator additionally models CPU contention, token waits
and the membership service, which the predictor folds into constants).
"""

from __future__ import annotations

from repro.analysis.costs import conceptual_cost
from repro.crypto.costmodel import CostModel
from repro.gcs.messages import ViewEvent
from repro.gcs.topology import Topology
from repro.gcs.ring import TokenRing


def predict_elapsed_ms(
    protocol: str,
    event: ViewEvent,
    n: int,
    topology: Topology,
    cost_model: CostModel,
    modulus_bits: int = 512,
    m: int = 1,
    p: int = 1,
) -> float:
    """Predicted total elapsed milliseconds for one membership event."""
    cost = conceptual_cost(protocol, event, n=n, m=m, p=p)
    ring = TokenRing(topology, topology.machines)
    # An Agreed multicast costs roughly a half-cycle token wait plus a full
    # settlement sweep; a unicast costs a typical one-way latency.
    agreed_ms = 1.5 * ring.cycle_ms
    machines = topology.machines
    typical_one_way = max(
        topology.one_way_ms(machines[0], machines[-1]),
        topology.one_way_ms(machines[0], machines[min(1, len(machines) - 1)]),
    )
    communication = (
        cost.multicasts / max(cost.rounds, 1) * 0  # parallel sends share rounds
        + cost.rounds * agreed_ms
        + cost.unicasts * typical_one_way
    )
    computation = (
        cost.serial_exponentiations * cost_model.exp_cost(modulus_bits)
        + cost.signatures * cost_model.sign_ms / max(cost.rounds, 1)
        + cost.verifications * cost_model.verify_ms
    )
    membership = agreed_ms
    return communication + computation + membership
