"""Closed-form per-event costs: our re-derivation of the paper's Table 1.

Conventions (matching the paper):

* ``n`` — group size *before* the event;
* ``m`` — number of merging members (1 for a join);
* ``p`` — number of leaving members (1 for a leave);
* ``h`` — key tree height (TGDH); ``O(log n)`` under the insertion
  heuristic;
* *serial* exponentiations — the busiest single member (computation that
  cannot be parallelized across members), the measure §5 uses.

Formulas are **exact for this implementation** where the cost is
shape-independent, and stated as worst-case *bounds* where it depends on
tree shape or leaver position (TGDH everywhere, STR's subtractive events).
The test-suite replays every formula against instrumented protocol runs.

Differences from the paper's Table 1 worth knowing about (also discussed
in EXPERIMENTS.md): our GDH join takes ``n+3`` messages and four rounds
exactly as the paper says, but we additionally count the *final* key
computation exponentiation at each member, so some computation entries are
one or two higher than the paper's; TGDH join completes in 2 messages when
the tree is full (the graft lands at the root), where the paper lists the
general 3-message case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.gcs.messages import ViewEvent

EVENTS = (ViewEvent.JOIN, ViewEvent.LEAVE, ViewEvent.MERGE, ViewEvent.PARTITION)


@dataclass(frozen=True)
class EventCost:
    """Conceptual cost of one membership event for one protocol.

    ``exact`` is False when an entry is a worst-case bound (tree-shape or
    position dependent) rather than an exact count.
    """

    protocol: str
    event: ViewEvent
    rounds: int
    messages: int
    unicasts: int
    multicasts: int
    serial_exponentiations: int
    total_exponentiations: int
    signatures: int
    verifications: int
    exact: bool = True


def _height(members: int) -> int:
    """Worst-case key tree height after sequential joins (≤ 2·log2 n)."""
    if members <= 1:
        return 0
    return 2 * math.ceil(math.log2(members))


def conceptual_cost(
    protocol: str,
    event: ViewEvent,
    n: int,
    m: int = 1,
    p: int = 1,
    str_sponsor_position: Optional[int] = None,
) -> EventCost:
    """The Table 1 entry for ``protocol`` × ``event`` at the given sizes.

    ``str_sponsor_position`` overrides STR's leave sponsor position
    (defaults to the paper's average case: the middle member leaves).
    """
    if protocol not in _BUILDERS:
        raise KeyError(f"unknown protocol {protocol!r}")
    if event not in EVENTS:
        raise ValueError(f"unsupported event {event}")
    if n < 2:
        raise ValueError("conceptual costs need a group of at least 2")
    if event is ViewEvent.LEAVE and n < 3:
        raise ValueError("leave formulas need at least 2 survivors")
    if event is ViewEvent.PARTITION and n - p < 2:
        raise ValueError("partition formulas need at least 2 survivors")
    return _BUILDERS[protocol](event, n, m, p, str_sponsor_position)


# ---------------------------------------------------------------------------
# per-protocol builders
# ---------------------------------------------------------------------------


def _bd(event, n, m, p, _s) -> EventCost:
    if event is ViewEvent.JOIN:
        size = n + 1
    elif event is ViewEvent.MERGE:
        size = n + m
    elif event is ViewEvent.LEAVE:
        size = n - 1
    else:
        size = n - p
    return EventCost(
        protocol="BD",
        event=event,
        rounds=2,
        messages=2 * size,
        unicasts=0,
        multicasts=2 * size,
        serial_exponentiations=3,
        total_exponentiations=3 * size,
        signatures=2,
        verifications=2 * (size - 1),
        exact=True,
    )


def _gdh(event, n, m, p, _s) -> EventCost:
    if event in (ViewEvent.JOIN, ViewEvent.MERGE):
        mm = 1 if event is ViewEvent.JOIN else m
        return EventCost(
            protocol="GDH",
            event=event,
            rounds=mm + 3,
            messages=n + 2 * mm + 1,
            unicasts=mm,
            multicasts=n + mm + 1,
            serial_exponentiations=n + mm,  # the new controller
            total_exponentiations=3 * n + 4 * mm - 2,
            signatures=n + 2 * mm + 1,
            verifications=2 * (n + mm) - 1,
            exact=True,
        )
    pp = 1 if event is ViewEvent.LEAVE else p
    survivors = n - pp
    return EventCost(
        protocol="GDH",
        event=event,
        rounds=1,
        messages=1,
        unicasts=0,
        multicasts=1,
        serial_exponentiations=survivors,  # the controller
        total_exponentiations=2 * survivors - 1,
        signatures=1,
        verifications=survivors - 1,
        exact=True,
    )


def _ckd(event, n, m, p, _s) -> EventCost:
    if event in (ViewEvent.JOIN, ViewEvent.MERGE):
        mm = 1 if event is ViewEvent.JOIN else m
        return EventCost(
            protocol="CKD",
            event=event,
            rounds=3,
            messages=mm + 2,
            unicasts=mm,
            multicasts=2,
            serial_exponentiations=n + 2 * mm,  # the controller
            total_exponentiations=2 * n + 5 * mm - 1,
            signatures=mm + 2,
            verifications=n + 3 * mm - 1,
            exact=True,
        )
    pp = 1 if event is ViewEvent.LEAVE else p
    survivors = n - pp
    return EventCost(
        protocol="CKD",
        event=event,
        rounds=1,
        messages=1,
        unicasts=0,
        multicasts=1,
        serial_exponentiations=survivors,  # the controller
        total_exponentiations=2 * survivors - 1,
        signatures=1,
        verifications=survivors - 1,
        exact=True,
    )


def _tgdh(event, n, m, p, _s) -> EventCost:
    if event in (ViewEvent.JOIN, ViewEvent.MERGE):
        mm = 1 if event is ViewEvent.JOIN else m
        h = _height(n + mm) + 1
        return EventCost(
            protocol="TGDH",
            event=event,
            rounds=2 if event is ViewEvent.JOIN else h + 1,
            messages=3 if event is ViewEvent.JOIN else 2 * mm + h,
            unicasts=0,
            multicasts=3 if event is ViewEvent.JOIN else 2 * mm + h,
            serial_exponentiations=2 * h + 1,  # the sponsor's path
            total_exponentiations=(n + mm) * h + 2 * h,
            signatures=3 if event is ViewEvent.JOIN else 2 * mm + h,
            verifications=3 if event is ViewEvent.JOIN else 2 * mm + h,
            exact=False,  # tree-shape dependent upper bound
        )
    pp = 1 if event is ViewEvent.LEAVE else p
    h = _height(n)
    rounds = 1 if event is ViewEvent.LEAVE else min(h, pp)
    messages = 1 if event is ViewEvent.LEAVE else min(2 * h, 2 * pp + 1)
    return EventCost(
        protocol="TGDH",
        event=event,
        rounds=max(rounds, 1),
        messages=max(messages, 1),
        unicasts=0,
        multicasts=max(messages, 1),
        serial_exponentiations=2 * h,  # the sponsor's path
        total_exponentiations=(n - pp) * h,
        signatures=max(messages, 1),
        verifications=max(messages, 1),
        exact=False,  # tree-shape dependent upper bound
    )


def _str(event, n, m, p, sponsor_position) -> EventCost:
    if event in (ViewEvent.JOIN, ViewEvent.MERGE):
        mm = 1 if event is ViewEvent.JOIN else m
        # Components: the base group plus each merging subgroup; with mm
        # fresh joiners there are mm singleton components.
        round1_messages = 1 + mm if event is ViewEvent.MERGE else 2
        if event is ViewEvent.JOIN:
            total = 2 * n + 6
        else:
            # Worst case: every merging member is its own component.
            total = (n + mm) * (mm + 1) + 3 * mm + 5
        return EventCost(
            protocol="STR",
            event=event,
            rounds=2,
            messages=round1_messages + 1,
            unicasts=0,
            multicasts=round1_messages + 1,
            serial_exponentiations=2 * mm + 3,  # the round-2 sponsor
            total_exponentiations=total,
            signatures=round1_messages + 1,
            verifications=round1_messages + 1,
            exact=event is ViewEvent.JOIN,
        )
    pp = 1 if event is ViewEvent.LEAVE else p
    survivors = n - pp
    s = sponsor_position if sponsor_position is not None else max(survivors // 2, 1)
    sponsor_exps = 2 * (survivors - s) + 3
    # Members below the sponsor recompute survivors - s + 1 keys each.
    total = sponsor_exps + (s - 1) * (survivors - s + 1)
    for position in range(s + 1, survivors + 1):
        total += survivors - position + 1
    return EventCost(
        protocol="STR",
        event=event,
        rounds=1,
        messages=1,
        unicasts=0,
        multicasts=1,
        serial_exponentiations=sponsor_exps,
        total_exponentiations=total,
        signatures=1,
        verifications=survivors - 1,
        exact=False,  # depends on the leaver's position
    )


_BUILDERS: Dict[str, Callable] = {
    "BD": _bd,
    "GDH": _gdh,
    "CKD": _ckd,
    "TGDH": _tgdh,
    "STR": _str,
}
