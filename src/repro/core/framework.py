"""The Secure Spread framework object: configuration and member factory.

One framework instance per deployment.  It owns the group communication
*transport* (the simulated world, or a live asyncio substrate — see
:mod:`repro.transport`), the DH group and cost model in force, the
per-group protocol registry (the paper's "different key agreement
protocols for different groups"), and the measurement timeline.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Type, Union

from repro.core.timing import RekeyTimeline
from repro.crypto.costmodel import CostModel, pentium3_666
from repro.crypto.engine import EngineSpec, get_engine
from repro.crypto.groups import SchnorrGroup, get_group
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import RsaPublicKey
from repro.gcs.topology import Topology
from repro.gcs.world import GcsWorld
from repro.obs import DEFAULT_CAPACITY, Observability
from repro.protocols import available, get_protocol
from repro.protocols.base import KeyAgreementProtocol
from repro.transport.base import Transport


class SecureSpreadFramework:
    """A Secure Spread deployment on a transport substrate.

    ``substrate`` is either a :class:`~repro.gcs.topology.Topology` (the
    classic form: a simulated world is built around it) or an
    already-constructed :class:`~repro.transport.Transport` — e.g. the
    asyncio backend's :class:`~repro.net.runner.AsyncioTransport`, which
    runs the same protocols over real TCP sockets.
    """

    def __init__(
        self,
        substrate: Union[Topology, Transport, None] = None,
        default_protocol: str = "TGDH",
        dh_group="dh-512",
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        sign_for_real: bool = False,
        rsa_bits: int = 512,
        trace: bool = False,
        observe: bool = False,
        engine: EngineSpec = None,
        stall_timeout_ms: Optional[float] = None,
        span_capacity: int = DEFAULT_CAPACITY,
        topology: Optional[Topology] = None,
    ):
        if topology is not None:
            if substrate is not None:
                raise ValueError("pass either substrate or topology, not both")
            warnings.warn(
                "the topology= keyword is deprecated; pass the topology (or "
                "a Transport) as the first positional 'substrate' argument",
                DeprecationWarning,
                stacklevel=2,
            )
            substrate = topology
        if substrate is None:
            raise TypeError("SecureSpreadFramework requires a substrate")
        if default_protocol not in available():
            raise ValueError(
                f"unknown protocol {default_protocol!r}; "
                f"choose from {list(available())}"
            )
        #: the crypto engine every member's protocol computes with;
        #: ``"symbolic"`` unlocks large-n runs with identical simulated
        #: timings (see :mod:`repro.crypto.engine`).
        self.engine = get_engine(engine)
        #: the deployment's flight recorder (spans + metrics); recording is
        #: passive, so enabling it never changes any measured time.
        self.obs = Observability(enabled=observe, span_capacity=span_capacity)
        if isinstance(substrate, Topology):
            #: the group communication substrate (Transport interface)
            self.transport: Transport = GcsWorld(
                substrate, trace=trace, obs=self.obs
            )
        else:
            self.transport = substrate
            self.transport.bind(self.obs)
        self.group: SchnorrGroup = get_group(dh_group)
        self.cost_model = cost_model or pentium3_666()
        self.seed = seed
        self.rng = DeterministicRandom(seed)
        #: epoch watchdog: how long a member waits on an incomplete rekey
        #: before proposing a coordinated restart (None disables the
        #: watchdog — the right setting for fault-free runs)
        self.stall_timeout_ms = stall_timeout_ms
        self.default_protocol = default_protocol
        self.sign_for_real = sign_for_real
        self.rsa_bits = rsa_bits
        self.timeline = RekeyTimeline()
        self._group_protocols: Dict[str, str] = {}
        self._members: Dict[str, "SecureGroupMember"] = {}
        # Intra-epoch crypto sharding: when the engine carries a shard
        # pool, prefetch each broadcast round's exponentiations into the
        # shared power cache as the simulator activates the delivery
        # bucket (see repro.crypto.parallel).  Simulated substrate only —
        # a live transport has no event buckets to hook.
        if (
            getattr(self.engine, "shard_pool", None) is not None
            and isinstance(self.transport, GcsWorld)
            and self.transport.sim.bucket_hook is None
        ):
            self.transport.sim.bucket_hook = self._epoch_prefetch

    @property
    def world(self) -> GcsWorld:
        """The simulated world behind the transport.

        Only the simulated substrate has one; fault injection, tracing
        and ``run(until=...)`` live there.  On a live transport this
        raises with a pointer to :attr:`transport` instead of failing
        deep inside whatever simulated-only feature was reached for.
        """
        transport = self.transport
        if isinstance(transport, GcsWorld):
            return transport
        raise AttributeError(
            f"framework.world is the simulated substrate; this framework "
            f"runs on the {transport.kind!r} transport — use "
            "framework.transport (faults/partitions/tracing are "
            "simulator-only)"
        )

    def _epoch_prefetch(self, events) -> None:
        """Bucket hook: precompute a broadcast round's crypto off-process.

        Every event in an activating bucket was scheduled before the
        drain began, so the key-agreement fan-outs it contains are
        exactly the deliveries about to run inline.  Each recipient's
        protocol describes its expected exponentiations
        (``receive_plan`` — pure, no state changes), the shard pool
        evaluates them across worker processes, and the results seed the
        engine's shared power cache *before* the handlers fire.  Cached
        powers are pure functions of their keys and the ledger charges
        every call regardless, so this can never change a simulated
        time — a wrong plan only wastes background work.
        """
        from repro.gcs.daemon import _fan_out

        batches: Dict[str, list] = {}
        members = self._members
        for event in events:
            if event.cancelled or event.fn is not _fan_out:
                continue
            recipients, message = event.args
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or not payload
                or payload[0] != "key-agreement"
            ):
                continue
            pmsg = payload[1]
            sender = message.sender
            for client in recipients:
                name = client.name
                if name == sender or name not in members:
                    continue
                batches.setdefault(name, []).append(pmsg)
        if not batches:
            return
        pool = self.engine.shard_pool
        chains: list = []
        for name, pmsgs in batches.items():
            try:
                chains.extend(members[name].protocol.receive_plan(pmsgs))
            except Exception:
                # Planning is advisory: a plan that trips over an edge
                # state must never take the run down with it.
                pool.plan_errors += 1
        if chains:
            pool.warm(self.engine.power_cache, chains)

    # -- protocol registry ---------------------------------------------------

    def set_group_protocol(self, group_name: str, protocol: str) -> None:
        """Assign a key agreement protocol to a group (before members join)."""
        if protocol not in available():
            raise ValueError(
                f"unknown protocol {protocol!r}; "
                f"choose from {list(available())}"
            )
        self._group_protocols[group_name] = protocol

    def protocol_name(self, group_name: str) -> str:
        return self._group_protocols.get(group_name, self.default_protocol)

    def protocol_class(self, group_name: str) -> Type[KeyAgreementProtocol]:
        return get_protocol(self.protocol_name(group_name))

    # -- members ----------------------------------------------------------------

    def member(
        self, name: str, machine_index: int, group_name: str = "secure-group"
    ) -> "SecureGroupMember":
        """Create a member process on a machine (it has not joined yet)."""
        from repro.core.secure_group import SecureGroupMember

        member = SecureGroupMember(self, name, machine_index, group_name)
        self._members[name] = member
        return member

    def spawn_members(
        self, count: int, group_name: str = "secure-group", prefix: str = "m"
    ) -> List["SecureGroupMember"]:
        """Create ``count`` members distributed uniformly over the machines."""
        total = self.transport.machine_count()
        return [
            self.member(f"{prefix}{i}", i % total, group_name)
            for i in range(count)
        ]

    def members_of(self, group_name: str = "secure-group") -> List["SecureGroupMember"]:
        """All member processes created for ``group_name``, in creation order."""
        return [
            member for member in self._members.values()
            if member.group_name == group_name
        ]

    def public_key_of(self, member_name: str) -> RsaPublicKey:
        member = self._members[member_name]
        return member._keypair.public

    # -- measurement ------------------------------------------------------------

    @property
    def rekey_stalls(self) -> int:
        """Stalls the epoch watchdog declared, summed over all members."""
        return sum(m.stalls_detected for m in self._members.values())

    @property
    def rekey_restarts(self) -> int:
        """Coordinated rekey restarts executed, summed over all members."""
        return sum(m.restarts for m in self._members.values())

    def mark_event(self) -> None:
        """Mark "now" as a membership event's injection instant (both on
        the :class:`~repro.core.timing.RekeyTimeline` and, when
        observability is on, as a trace instant).

        The instant is also a trace *root*: it opens a fresh trace id and
        becomes the ambient cause, so every span the event sets in motion
        — frames, token waits, CPU batches, the final key installs —
        carries the same trace id and parents back to this vertex.
        """
        self.timeline.mark_event(self.now)
        if self.obs.enabled:
            causality = self.obs.causality
            trace = causality.begin_trace()
            span_id = causality.new_span_id()
            self.obs.instant(
                "membership", "event injected", "world", "world", self.now,
                span_id=span_id, trace_id=trace,
            )
            causality.adopt((span_id, trace))

    # -- running ----------------------------------------------------------------

    def run_until_idle(self, max_events: int = 2_000_000) -> None:
        self.transport.run_until_idle(max_events=max_events)

    @property
    def now(self) -> float:
        return self.transport.now
