"""A Secure Spread group member: rekeying plus secure data exchange.

:class:`SecureGroupMember` glues one key agreement protocol instance to one
Spread client (§3.3):

* every membership view triggers a fresh key agreement run for that view
  (a view arriving mid-agreement aborts and restarts it — the simple
  robustness discipline of the paper's refs [1,2]);
* protocol messages are signed by the sender and verified by every
  receiver, with the CPU cost of all cryptographic work charged to the
  member's machine through the cost model — under contention when several
  members share a machine, which is where the paper's BD-doubling effect
  comes from;
* application data sent while a rekey is in progress is queued and
  released, encrypted under the new group key, once the epoch completes;
* an optional **epoch watchdog** (``stall_timeout_ms`` on the framework)
  detects a rekey that stopped making progress — e.g. a unicast protocol
  message lost to a link fault — and restarts key agreement on the
  current view.  Restarts are coordinated through an Agreed-ordered
  ``rekey-restart`` marker so every member abandons the stalled run at
  the same point in the total order, and every protocol message carries
  its attempt number so stragglers of an aborted run are discarded.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.encryption import GroupCipher, IntegrityError, SealedMessage
from repro.crypto.rsa import RsaSigner, RsaVerifier, cached_rsa_keypair
from repro.obs.metrics import record_op_counts
from repro.gcs.messages import GroupMessage, View
from repro.protocols.base import KeyAgreementProtocol, ProtocolMessage
from repro.transport.base import GroupChannel

#: how many past epochs' ciphers to retain for late-arriving data
_CIPHER_HISTORY = 4


class SecureGroupMember:
    """One application process in one secure group."""

    def __init__(
        self,
        framework,
        name: str,
        machine_index: int,
        group_name: str,
    ):
        self.framework = framework
        self.name = name
        self.group_name = group_name
        #: the member's connection to the substrate — a simulated
        #: SpreadClient or a live asyncio NetClient, same contract
        self.client: GroupChannel = framework.transport.channel(
            name, machine_index
        )
        self.machine = framework.transport.machine(machine_index)
        self.client.on_view = self._on_view
        self.client.on_message = self._on_message
        protocol_cls = framework.protocol_class(group_name)
        self.protocol: KeyAgreementProtocol = protocol_cls(
            name, framework.group, framework.rng, engine=framework.engine
        )
        self.obs = framework.obs
        self.protocol.obs = framework.obs
        self._view_seen_at: Dict[Tuple[int, int], float] = {}
        keypair = cached_rsa_keypair(
            framework.rsa_bits, machine_index % 64
        )
        self._signer = RsaSigner(keypair, self.protocol.ledger)
        self._verifier = RsaVerifier(self.protocol.ledger)
        self._keypair = keypair
        self._cpu_tail = 0.0
        # Hot-path caches: all three are set once on the framework/
        # transport and never reassigned, and the message handler runs
        # O(n²) times per rekey — the attribute chains show up in profiles.
        self._sim = framework.transport.scheduler
        self._cost_model = framework.cost_model
        self._sign_for_real = framework.sign_for_real
        # Cause of this member's most recent CPU span (None when obs is
        # off or nothing ran yet): the parent for work serialized behind
        # our own CPU tail, and for the transmit/install events that fire
        # when that tail completes.
        self._last_cpu_span: Optional[Tuple[int, int]] = None
        self._ciphers: Dict[Tuple[int, int], GroupCipher] = {}
        self._current_epoch: Optional[Tuple[int, int]] = None
        self._outbound_queue: List[bytes] = []
        #: callbacks for applications
        self.on_secure_view: Optional[Callable[["SecureGroupMember", View, bytes], None]] = None
        self.on_secure_message: Optional[Callable[["SecureGroupMember", str, bytes], None]] = None
        #: delivered plaintexts, for tests and examples
        self.inbox: List[Tuple[str, bytes]] = []
        self.secure_views: List[View] = []
        #: when True, membership views are stashed instead of triggering a
        #: rekey; :meth:`flush_deferred` later runs one key agreement for
        #: the settled membership (the batched-growth fast path — growing
        #: sequentially re-keys after every join, O(n²) event churn).
        self.defer_rekey = False
        self._deferred_view: Optional[View] = None
        # -- rekey stall recovery (see the module docstring) --
        #: restart-attempt generation for the epoch in ``_attempt_epoch``
        self._attempt = 0
        self._attempt_epoch: Optional[Tuple[int, int]] = None
        #: messages of a future attempt, held until its marker arrives
        self._early: List[Tuple[str, ProtocolMessage, object, int]] = []
        self._watchdog_token = 0
        self.stalls_detected = 0
        self.restarts = 0
        self.dropped_ciphertexts = 0

    # -- membership -------------------------------------------------------

    def join(self) -> None:
        """Join the secure group."""
        self.client.join(self.group_name)

    def leave(self) -> None:
        """Leave the secure group."""
        self.client.leave(self.group_name)

    @property
    def sim(self):
        """The transport's scheduler (virtual time on the simulator,
        wall-clock milliseconds on the asyncio backend)."""
        return self._sim

    @property
    def key_bytes(self) -> Optional[bytes]:
        """The current epoch's raw key material (None while rekeying)."""
        if self._current_epoch is None:
            return None
        if self.protocol.key_epoch != self._current_epoch:
            return None
        return self.protocol.key.to_bytes(
            (self.protocol.key.bit_length() + 7) // 8 or 1, "big"
        )

    @property
    def is_secure(self) -> bool:
        """True when the member holds the key for the current view."""
        return self.key_bytes is not None

    # -- secure data --------------------------------------------------------

    def send_secure(self, plaintext: bytes) -> None:
        """Encrypt under the group key and multicast; queued during rekeys."""
        if not self.is_secure:
            self._outbound_queue.append(plaintext)
            return
        if not self.client.connected:
            return  # our daemon crashed; the message is lost with us
        cipher = self._ciphers[self._current_epoch]
        sealed = cipher.seal(self.name, plaintext)
        self.client.multicast(
            self.group_name,
            ("secure-data", sealed),
            size_bytes=sealed.size_bytes,
        )

    # -- view handling ---------------------------------------------------------

    def _on_view(self, _client: SpreadClient, view: View) -> None:
        if self.name not in view.members:
            # Our own departure notification: we are out of the group, so
            # stop watching for a stalled rekey we are no longer part of.
            self._watchdog_token += 1
            return
        if self.defer_rekey:
            self._deferred_view = view
            return
        self.framework.timeline.record_view(
            view.view_id, self.name, self.sim.now, view.members
        )
        self._view_seen_at.setdefault(view.view_id, self.sim.now)
        self._attempt = 0
        self._attempt_epoch = view.view_id
        self._early = []
        outputs = self._charged(
            lambda: self.protocol.start(view),
            label=f"{self.protocol.name}.start",
        )
        self._after_protocol_step(view, outputs)
        self._arm_watchdog(view)

    def flush_deferred(self, view: Optional[View] = None) -> None:
        """Run one key agreement for the settled membership after deferral.

        ``view`` is normally the synthetic merge view the batched-growth
        path builds (identical at every member, so all protocol instances
        agree on the epoch); without one, the last stashed view is used.
        Callers must clear :attr:`defer_rekey` first and flush *every*
        member before resuming the simulator, so each protocol instance
        has started the epoch before any of its messages arrive.
        """
        if view is None:
            view = self._deferred_view
        self._deferred_view = None
        if view is None:
            return
        self.framework.timeline.record_view(
            view.view_id, self.name, self.sim.now, view.members
        )
        self._view_seen_at.setdefault(view.view_id, self.sim.now)
        self._attempt = 0
        self._attempt_epoch = view.view_id
        self._early = []
        outputs = self._charged(
            lambda: self.protocol.start(view),
            label=f"{self.protocol.name}.start",
        )
        self._after_protocol_step(view, outputs)
        self._arm_watchdog(view)

    # -- protocol message handling ----------------------------------------------

    def _on_message(self, _client: SpreadClient, message: GroupMessage) -> None:
        payload = message.payload
        kind = payload[0]
        if kind == "key-agreement":
            self._handle_protocol_message(
                message.sender, payload[1], payload[2], payload[3]
            )
        elif kind == "secure-data":
            self._handle_secure_data(payload[1])
        elif kind == "rekey-restart":
            self._handle_rekey_restart(payload[1], payload[2])
        else:  # pragma: no cover - no other kinds are sent
            raise ValueError(f"unknown secure payload kind {kind!r}")

    def _handle_protocol_message(
        self, sender: str, pmsg: ProtocolMessage, signature, attempt: int = 0
    ) -> None:
        if sender == self.name:
            return  # our own broadcast echoed back; nothing to verify
        if pmsg.epoch == self._attempt_epoch and attempt != self._attempt:
            if attempt > self._attempt:
                # A restarted run we haven't learned about yet (its Agreed
                # marker is still in flight while this FIFO message raced
                # ahead); hold the message until the marker arrives.
                self._early.append((sender, pmsg, signature, attempt))
            # else: a straggler of an aborted attempt — discard.
            return

        if not self.obs.enabled:
            # Inlined ``_charged`` (its unobserved branch, kept in sync):
            # this handler runs once per (broadcast, receiver) pair —
            # O(n²) per rekey — and the closure + dispatch layers of the
            # generic path are measurable at n=1024.
            ledger = self.protocol.ledger
            ledger.begin_charge()
            if not self._sign_for_real:
                ledger.record_verification()
                outputs = self.protocol.receive(pmsg)
            elif self._verify(sender, pmsg, signature):
                outputs = self.protocol.receive(pmsg)
            else:
                outputs = []
            cost = ledger.charge_pending(self._cost_model)
            sim = self._sim
            tail = self._cpu_tail
            now = sim.now
            self._cpu_tail = self.machine.submit(
                sim, cost, not_before=tail if tail > now else now, span=None,
            )
        else:

            def work():
                if not self._verify(sender, pmsg, signature):
                    return []
                return self.protocol.receive(pmsg)

            outputs = self._charged(
                work, label=f"{self.protocol.name}.{pmsg.step}"
            )
        view = self.protocol.view
        if view is not None:
            self._after_protocol_step(view, outputs)

    def _verify(self, sender: str, pmsg: ProtocolMessage, signature) -> bool:
        """Verify the sender's signature (always charged; optionally real)."""
        if not self._sign_for_real:
            self.protocol.ledger.record_verification()
            return True
        public = self.framework.public_key_of(sender)
        return self._verifier.verify(public, _message_bytes(pmsg), signature)

    def _after_protocol_step(
        self, view: View, outputs: List[ProtocolMessage]
    ) -> None:
        sim = self._sim
        obs_on = self.obs.enabled
        for pmsg in outputs:
            # Signing advances our CPU timeline; the message leaves only
            # once the signature is paid for.  The attempt is captured now:
            # a restart arriving before the CPU frees up must not relabel
            # (and thereby resurrect) a message of the aborted run.
            signature = self._sign(pmsg)
            tail = self._cpu_tail
            now = sim.now
            event = sim.schedule_at(
                tail if tail > now else now,
                self._transmit,
                pmsg,
                signature,
                self._attempt,
            )
            if obs_on and self._last_cpu_span is not None:
                # The send fires when the signing batch completes; that
                # span, not the handler that scheduled us, is its cause.
                event.cause = self._last_cpu_span
        if self.protocol.done_for(view):
            tail = self._cpu_tail
            now = sim.now
            event = sim.schedule_at(
                tail if tail > now else now, self._install_epoch, view
            )
            if obs_on and self._last_cpu_span is not None:
                event.cause = self._last_cpu_span

    def _sign(self, pmsg: ProtocolMessage):
        span = None
        before = None
        if self.obs.enabled:
            span = (
                "crypto", f"sign {pmsg.protocol}.{pmsg.step}", self.name,
                {"epoch": str(pmsg.epoch), "step": pmsg.step, "phase": "sign"},
            )
            before = self.protocol.ledger.snapshot()
        if not self.framework.sign_for_real:
            self.protocol.ledger.record_signature()
            signature = None
        else:
            signature = self._signer.sign(_message_bytes(pmsg))
        if before is not None:
            record_op_counts(
                self.obs.metrics,
                self.protocol.ledger.delta_since(before),
                member=self.name,
                epoch=str(pmsg.epoch),
            )
        # Re-charge the CPU for the signature itself.
        cost = self.framework.cost_model.sign_ms
        self._cpu_tail = self.machine.submit(
            self.sim, cost, not_before=self._cpu_tail, span=span,
            chain=self._last_cpu_span,
        )
        if span is not None:
            self._last_cpu_span = self.obs.causality.last_cpu_span
        return signature

    def _transmit(self, pmsg: ProtocolMessage, signature, attempt: int = 0) -> None:
        if not self.client.connected:
            return  # our daemon crashed while the signature was computing
        payload = ("key-agreement", pmsg, signature, attempt)
        if pmsg.requires_agreed:
            self.client.multicast(
                self.group_name,
                payload,
                size_bytes=pmsg.size_bytes,
                target=pmsg.target,
            )
        else:
            self.client.unicast(
                self.group_name, pmsg.target, payload, size_bytes=pmsg.size_bytes
            )

    def _install_epoch(self, view: View) -> None:
        if self.protocol.key_epoch != view.view_id:
            return  # a newer view superseded this epoch mid-flight
        if view.view_id == self._current_epoch:
            return
        self._watchdog_token += 1  # the epoch completed: disarm the watchdog
        self._current_epoch = view.view_id
        cipher = GroupCipher(self.protocol.key, view.view_id)
        self._ciphers[view.view_id] = cipher
        while len(self._ciphers) > _CIPHER_HISTORY:
            oldest = min(self._ciphers)
            del self._ciphers[oldest]
        self.framework.timeline.record_key(view.view_id, self.name, self.sim.now)
        if self.obs.enabled:
            now = self.sim.now
            seen = self._view_seen_at.get(view.view_id, now)
            self.obs.span(
                "epoch", f"rekey {self.protocol.name}", self.name,
                self.machine.name, seen, now,
                epoch=str(view.view_id), members=len(view.members),
                event=view.event.name,
            )
            # The trace's terminal vertex: the critical-path walk starts
            # here and follows parent edges back to the injected event.
            self.obs.caused_instant(
                "epoch", "key-install", self.name, self.machine.name, now,
                epoch=str(view.view_id), member=self.name,
                protocol=self.protocol.name,
            )
            elapsed = now - seen
            self.obs.log_histogram(
                "member.rekey_ms",
                group=self.group_name, protocol=self.protocol.name,
            ).observe(elapsed)
            self.obs.series(
                "member.rekey_ms",
                group=self.group_name, protocol=self.protocol.name,
            ).record(now, elapsed)
        while len(self._view_seen_at) > _CIPHER_HISTORY:
            del self._view_seen_at[min(self._view_seen_at)]
        self.secure_views.append(view)
        if self.on_secure_view is not None:
            self.on_secure_view(self, view, self.key_bytes)
        queued, self._outbound_queue = self._outbound_queue, []
        for plaintext in queued:
            self.send_secure(plaintext)

    def _handle_secure_data(self, sealed: SealedMessage) -> None:
        cipher = self._ciphers.get(sealed.epoch)
        if cipher is None:
            return  # sealed under an epoch we never saw (pre-join traffic)
        try:
            plaintext = cipher.open(sealed)
        except IntegrityError:
            # Sealed under a key of the same epoch id that a stall restart
            # has since replaced; the sender will requeue under the new key.
            self.dropped_ciphertexts += 1
            return
        self.inbox.append((sealed.sender, plaintext))
        if self.on_secure_message is not None:
            self.on_secure_message(self, sealed.sender, plaintext)

    # -- rekey stall recovery ----------------------------------------------

    def _arm_watchdog(self, view: View) -> None:
        """Start (or restart) the epoch watchdog for ``view``.

        Disabled when the framework's ``stall_timeout_ms`` is None — the
        default, so fault-free runs schedule no extra events and stay
        bit-identical to builds without the watchdog.  The timeout must
        comfortably exceed a healthy rekey for the deployment, or the
        watchdog will declare stalls that are merely slow.
        """
        timeout = self.framework.stall_timeout_ms
        if timeout is None:
            return
        self._watchdog_token += 1
        token = (view.view_id, self._attempt, self._watchdog_token)
        self.sim.schedule(timeout, self._watchdog_fire, token)

    def _watchdog_fire(self, token) -> None:
        view_id, attempt, wd_token = token
        if wd_token != self._watchdog_token:
            return  # epoch installed or superseded since arming
        view = self.protocol.view
        if (
            view is None
            or view.view_id != view_id
            or attempt != self._attempt
            or self._current_epoch == view_id
            or not self.client.connected
        ):
            return
        # The rekey for the current view is still incomplete after a full
        # timeout: declare a stall and propose a coordinated restart.  The
        # marker is an ordinary Agreed message, so every member processes
        # it at the same point in the total order.
        self.stalls_detected += 1
        if self.obs.enabled:
            self.obs.counter("core.rekey_stalls", member=self.name).inc()
            self.obs.instant(
                "epoch", "rekey stall", self.name, self.machine.name,
                self.sim.now, epoch=str(view_id), attempt=attempt,
            )
        self.client.multicast(
            self.group_name,
            ("rekey-restart", view_id, self._attempt + 1),
            size_bytes=64,
        )
        # Re-arm: should even the restarted run stall, the next firing
        # proposes a further attempt.
        self._arm_watchdog(view)

    def _handle_rekey_restart(self, view_id, proposed: int) -> None:
        view = self.protocol.view
        if view is None or view.view_id != view_id:
            return  # a newer view already superseded the stalled run
        if proposed <= self._attempt:
            return  # duplicate marker (several members detected the stall)
        self._attempt = proposed
        self._attempt_epoch = view_id
        self.restarts += 1
        if self.obs.enabled:
            self.obs.counter("core.rekey_restarts", member=self.name).inc()
        # Members that already installed this epoch roll it back so the
        # whole group converges on the restarted run's key.
        if self._current_epoch == view_id:
            self._current_epoch = None
            self._ciphers.pop(view_id, None)
        outputs = self._charged(
            lambda: self.protocol.restart(view),
            label=f"{self.protocol.name}.restart",
        )
        self._after_protocol_step(view, outputs)
        self._arm_watchdog(view)
        # Release any messages of this attempt that raced ahead of the
        # marker (FIFO unicasts are not ordered relative to Agreed ones).
        replay = [e for e in self._early if e[3] == self._attempt]
        self._early = [e for e in self._early if e[3] > self._attempt]
        for sender, pmsg, signature, attempt in replay:
            self._handle_protocol_message(sender, pmsg, signature, attempt)

    # -- CPU charging -----------------------------------------------------------

    def _charged(
        self, work: Callable[[], List[ProtocolMessage]], label: str = "work"
    ):
        """Run protocol work, charging its ledger delta to our machine.

        The results are computed eagerly (the math is exact), but the
        member's CPU timeline advances by the modelled cost, and anything
        it emits is released only when the virtual CPU work completes.

        With observability enabled, the charged interval is recorded as a
        ``crypto`` span named ``label`` and the ledger delta is bridged
        into per-member, per-epoch operation counters.

        The unobserved path prices the step straight off the ledger's
        pending-record window (``begin_charge``/``charge_pending``)
        instead of building two :class:`~repro.crypto.ledger.OpCounts`
        snapshots and subtracting them; the cost comes out bit-identical
        (see ``charge_pending``), and this is the single hottest call in
        a large-n sweep.
        """
        if not self.obs.enabled:
            ledger = self.protocol.ledger
            ledger.begin_charge()
            outputs = work()
            cost = ledger.charge_pending(self._cost_model)
            sim = self._sim
            tail = self._cpu_tail
            now = sim.now
            self._cpu_tail = self.machine.submit(
                sim, cost, not_before=tail if tail > now else now, span=None,
            )
            return outputs
        before = self.protocol.ledger.snapshot()
        outputs = work()
        delta = self.protocol.ledger.delta_since(before)
        cost = self.framework.cost_model.time_of(delta)
        span = None
        if self.obs.enabled:
            view = self.protocol.view
            epoch = str(view.view_id) if view is not None else "?"
            step = label.split(".", 1)[-1]
            span = (
                "crypto", label, self.name,
                {
                    "epoch": epoch, "step": step,
                    "phase": self.protocol.phase_of(step),
                },
            )
            record_op_counts(
                self.obs.metrics, delta, member=self.name, epoch=epoch
            )
        self._cpu_tail = self.machine.submit(
            self.sim, cost, not_before=max(self._cpu_tail, self.sim.now),
            span=span, chain=self._last_cpu_span,
        )
        if span is not None:
            self._last_cpu_span = self.obs.causality.last_cpu_span
        return outputs


def _message_bytes(pmsg: ProtocolMessage) -> bytes:
    """Canonical bytes of a protocol message for signing.

    Memoized on the message object: a broadcast is signed once but
    verified by every receiver, and the simulator delivers the same
    in-process object to all of them, so without the memo the canonical
    bytes of one message are recomputed O(n) times.  Message bodies are
    never mutated after emission, so the memo cannot go stale.
    """
    cached = getattr(pmsg, "_canonical_bytes", None)
    if cached is None:
        cached = repr(
            (pmsg.protocol, pmsg.epoch, pmsg.step, pmsg.sender, sorted_repr(pmsg.body))
        ).encode()
        pmsg._canonical_bytes = cached
    return cached


def sorted_repr(body: dict) -> str:
    """Deterministic representation of a message body."""
    return repr(sorted(body.items(), key=lambda kv: repr(kv[0])))
