"""Group-data confidentiality and integrity under the group key.

Once a group is operational, Secure Spread "encrypts and decrypts user
data using the group key" (§3.3).  Each key agreement epoch derives fresh
symmetric keys from the agreed group secret, giving encrypt-then-MAC
protection with the from-scratch primitives of :mod:`repro.crypto.kdf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.kdf import derive_key, hmac_sha256, stream_xor


class IntegrityError(Exception):
    """Raised when a ciphertext fails authentication."""


@dataclass(frozen=True)
class SealedMessage:
    """An encrypted, authenticated application payload."""

    epoch: Tuple[int, int]
    sender: str
    nonce: bytes
    ciphertext: bytes
    mac: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.ciphertext) + len(self.nonce) + len(self.mac) + 48


class GroupCipher:
    """Symmetric protection derived from one epoch's group key."""

    def __init__(self, group_key: int, epoch: Tuple[int, int]):
        self.epoch = epoch
        label = f"epoch:{epoch[0]}:{epoch[1]}"
        self._enc_key = derive_key(group_key, label + ":enc")
        self._mac_key = derive_key(group_key, label + ":mac")
        self._counter = 0

    def seal(self, sender: str, plaintext: bytes) -> SealedMessage:
        """Encrypt-then-MAC a payload; nonces never repeat per sender."""
        self._counter += 1
        nonce = f"{sender}:{self._counter}".encode()
        ciphertext = stream_xor(self._enc_key, nonce, plaintext)
        mac = hmac_sha256(self._mac_key, nonce + ciphertext)
        return SealedMessage(
            epoch=self.epoch,
            sender=sender,
            nonce=nonce,
            ciphertext=ciphertext,
            mac=mac,
        )

    def open(self, sealed: SealedMessage) -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        expected = hmac_sha256(self._mac_key, sealed.nonce + sealed.ciphertext)
        if expected != sealed.mac:
            raise IntegrityError("message failed authentication")
        return stream_xor(self._enc_key, sealed.nonce, sealed.ciphertext)
