"""Measurement of the paper's "total elapsed time" (§6).

The paper measures "from the moment the group membership event happens
until the moment when the group key agreement finished and the application
is notified about the membership change and the new key" — at the *last*
member to finish.  :class:`RekeyTimeline` collects the per-member
notification instants the Secure Spread layer reports and decomposes the
elapsed time into the membership-service part (view delivery) and the key
agreement part, which is exactly how Figures 11, 12 and 14 plot their
"Membership service" baseline against the protocol curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class EpochRecord:
    """Per-member timings for one key agreement epoch (one view)."""

    epoch: Tuple[int, int]
    event_started_at: Optional[float] = None
    view_delivered: Dict[str, float] = field(default_factory=dict)
    key_ready: Dict[str, float] = field(default_factory=dict)
    members: Tuple[str, ...] = ()

    def membership_elapsed(self) -> float:
        """Event start -> last member's view delivery (the paper's
        "membership service" cost)."""
        self._require_started()
        return max(self.view_delivered.values()) - self.event_started_at

    def total_elapsed(self) -> float:
        """Event start -> last member holds the key and is notified."""
        self._require_started()
        return max(self.key_ready.values()) - self.event_started_at

    def key_agreement_elapsed(self) -> float:
        """The rekey overhead on top of the membership service."""
        return self.total_elapsed() - self.membership_elapsed()

    def complete(self) -> bool:
        """True when every member of the view reported its key."""
        return bool(self.members) and set(self.key_ready) >= set(self.members)

    def _require_started(self) -> None:
        if self.event_started_at is None:
            raise ValueError("event start was never marked")


class RekeyTimeline:
    """Collects epoch records across a simulation run."""

    def __init__(self) -> None:
        self.epochs: Dict[Tuple[int, int], EpochRecord] = {}
        self._event_pending: Optional[float] = None

    def mark_event(self, now: float) -> None:
        """The instant a membership event is injected (join call, leave
        call, network partition)."""
        self._event_pending = now

    def record_view(self, epoch: Tuple[int, int], member: str, now: float,
                    members: Tuple[str, ...]) -> None:
        record = self.epochs.get(epoch)
        if record is None:
            record = EpochRecord(epoch=epoch, event_started_at=self._event_pending)
            self.epochs[epoch] = record
        record.members = members
        record.view_delivered.setdefault(member, now)

    def record_key(self, epoch: Tuple[int, int], member: str, now: float) -> None:
        record = self.epochs.get(epoch)
        if record is None:
            record = EpochRecord(epoch=epoch, event_started_at=self._event_pending)
            self.epochs[epoch] = record
        record.key_ready.setdefault(member, now)

    def latest_complete(self) -> EpochRecord:
        """The most recent epoch every member finished."""
        complete = [r for r in self.epochs.values() if r.complete()]
        if not complete:
            raise LookupError("no complete rekey epoch recorded")
        return max(complete, key=lambda r: r.epoch)
