"""The Secure Spread framework (paper §3.3).

Ties the key agreement protocols to the group communication system: when a
group's membership changes, the framework detects it, runs the group's
configured key agreement protocol to completion, and notifies the
application of the membership change together with the new key; once a
group is operational it encrypts and decrypts application data under the
group key.

The central design goal the paper highlights — "the architecture of Secure
Spread allows it to handle different key agreement algorithms for
different groups" — is :class:`SecureSpreadFramework`'s protocol registry.
"""

from repro.core.encryption import GroupCipher
from repro.core.framework import SecureSpreadFramework
from repro.core.secure_group import SecureGroupMember
from repro.core.timing import RekeyTimeline

__all__ = [
    "GroupCipher",
    "SecureSpreadFramework",
    "SecureGroupMember",
    "RekeyTimeline",
]
