"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (pip falls back to the setup.py develop path when
PEP 517 is disabled); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
