"""Future work B (§7): partition and merge events.

The paper measured only join and leave ("we also need to experiment with
more complex group operations such as partition and merge").  This
benchmark injects real network partitions and heals on both testbeds and
measures the rekey latency of every protocol, checking the conceptual
expectations of §5: GDH merge pays a round per merging member, BD pays
all-to-all broadcasts, the tree protocols stay constant-round.
"""

import pytest

from conftest import ALL_PROTOCOLS, run_once
from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed, wan_testbed

GROUP_SIZE = 12
SPLIT = [0, 1, 2, 3]  # machines carved out by the partition


def _measure(topology_factory, protocol):
    framework = SecureSpreadFramework(
        topology_factory(), default_protocol=protocol, dh_group="dh-512"
    )
    members = framework.spawn_members(GROUP_SIZE)
    for member in members:
        member.join()
        framework.run_until_idle()
    machine_count = len(framework.world.topology.machines)
    majority = [i for i in range(machine_count) if i not in SPLIT]
    framework.timeline.mark_event(framework.now)
    framework.world.partition([SPLIT, majority])
    framework.run_until_idle()
    partition_record = framework.timeline.latest_complete()
    framework.timeline.mark_event(framework.now)
    framework.world.heal()
    framework.run_until_idle()
    merge_record = framework.timeline.latest_complete()
    keys = {m.key_bytes for m in members}
    assert len(keys) == 1, f"{protocol}: keys diverged after merge"
    return partition_record.total_elapsed(), merge_record.total_elapsed()


@pytest.fixture(scope="module")
def lan_results():
    return {p: _measure(lan_testbed, p) for p in ALL_PROTOCOLS}


@pytest.fixture(scope="module")
def wan_results():
    return {p: _measure(wan_testbed, p) for p in ALL_PROTOCOLS}


def test_partition_merge_lan(benchmark, results_dir, lan_results):
    results = run_once(benchmark, lambda: lan_results)
    print("\nPartition & merge rekey latency, n=12, LAN (ms):")
    print(f"{'protocol':8s} {'partition':>10s} {'merge':>10s}")
    with open(f"{results_dir}/future_partition_merge_lan.csv", "w") as handle:
        handle.write("protocol,partition_ms,merge_ms\n")
        for protocol, (part, merge) in results.items():
            print(f"{protocol:8s} {part:10.1f} {merge:10.1f}")
            handle.write(f"{protocol},{part:.1f},{merge:.1f}\n")
    # Subtractive events: single-broadcast protocols beat BD.  (CKD is
    # excluded: this partition removes its controller — the oldest member
    # on machine 0 — forcing full channel re-establishment, §4.2.)
    for protocol in ("GDH", "TGDH"):
        assert results[protocol][0] < results["BD"][0]
    assert results["CKD"][0] < 2.5 * results["BD"][0]
    # Everything completes within a second on the LAN.
    for part, merge in results.values():
        assert part < 1000 and merge < 1000


def test_partition_merge_wan(benchmark, results_dir, wan_results):
    results = run_once(benchmark, lambda: wan_results)
    print("\nPartition & merge rekey latency, n=12, WAN (ms):")
    print(f"{'protocol':8s} {'partition':>10s} {'merge':>10s}")
    with open(f"{results_dir}/future_partition_merge_wan.csv", "w") as handle:
        handle.write("protocol,partition_ms,merge_ms\n")
        for protocol, (part, merge) in results.items():
            print(f"{protocol:8s} {part:10.1f} {merge:10.1f}")
            handle.write(f"{protocol},{part:.1f},{merge:.1f}\n")
    # GDH's merge pays one token round per merging member: on the WAN it
    # is the costliest merge by a clear margin.
    gdh_merge = results["GDH"][1]
    for protocol in ("CKD", "STR", "TGDH"):
        assert gdh_merge > results[protocol][1]


def test_merge_costlier_than_partition_for_gdh(wan_results):
    """§5: GDH partition is one broadcast; its merge is m+3 rounds."""
    partition_ms, merge_ms = wan_results["GDH"]
    assert merge_ms > partition_ms
