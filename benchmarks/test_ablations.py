"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one modelling decision and checks that the effect the
paper attributes to it actually appears in (or disappears from) the
simulation:

* **signature pricing** — §6.1.1 argues for RSA with e=3 because
  "expensive signature verification (e.g., as in DSA) noticeably degrades
  performance": under DSA-like costs BD (2(n-1) verifications per member)
  collapses;
* **CPU contention** — BD's doubling-every-13-members disappears on
  many-core machines;
* **crypto-free stack** — isolates pure communication cost: protocol
  ordering on the WAN is driven by rounds alone;
* **token ring vs idealized broadcast** — replacing the ring with nearly
  free links shows how much of the WAN cost is ordering latency.
"""


from conftest import run_once
from repro.bench.harness import measure_event
from repro.crypto.costmodel import expensive_signatures, free_crypto
from repro.core import SecureSpreadFramework
from repro.gcs.topology import Topology, lan_testbed, wan_testbed
from repro.sim.cpu import Machine

N = 20


def _measure(topology_factory, protocol, cost_model=None, dh="dh-512"):
    framework = SecureSpreadFramework(
        topology_factory(),
        default_protocol=protocol,
        dh_group=dh,
        cost_model=cost_model,
    )
    members = framework.spawn_members(N)
    for member in members:
        member.join()
        framework.run_until_idle()
    framework.timeline.mark_event(framework.now)
    extra = framework.member("x", 5)
    extra.join()
    framework.run_until_idle()
    return framework.timeline.latest_complete().total_elapsed()


def test_dsa_like_signatures_degrade_bd(benchmark):
    def measure():
        rsa_bd = _measure(lan_testbed, "BD")
        dsa_bd = _measure(lan_testbed, "BD", cost_model=expensive_signatures())
        rsa_tgdh = _measure(lan_testbed, "TGDH")
        dsa_tgdh = _measure(lan_testbed, "TGDH", cost_model=expensive_signatures())
        return rsa_bd, dsa_bd, rsa_tgdh, dsa_tgdh

    rsa_bd, dsa_bd, rsa_tgdh, dsa_tgdh = run_once(benchmark, measure)
    print(f"\nBD join n={N}: RSA(e=3) {rsa_bd:.0f} ms vs DSA-like {dsa_bd:.0f} ms")
    print(f"TGDH join n={N}: RSA(e=3) {rsa_tgdh:.0f} ms vs DSA-like {dsa_tgdh:.0f} ms")
    # BD's many verifications make it far more sensitive than TGDH.
    assert dsa_bd > 1.8 * rsa_bd
    assert (dsa_bd / rsa_bd) > 1.5 * (dsa_tgdh / rsa_tgdh)


def _many_core_lan():
    machines = [
        Machine(f"lan{i}", site="jhu-lan", cores=16, speed=1.0) for i in range(13)
    ]
    return Topology("lan-16core", machines, site_latency_ms={})


def test_cpu_contention_drives_bd_scaling(benchmark):
    """With 16 cores per machine, BD at 40 members loses the contention
    penalty that dual-CPU machines impose."""

    def measure():
        dual = measure_event(lan_testbed, "BD", 40, "join", repeats=1)
        many = measure_event(_many_core_lan, "BD", 40, "join", repeats=1)
        return dual.total_ms, many.total_ms

    dual, many = run_once(benchmark, measure)
    print(f"\nBD join n=40: dual-CPU {dual:.0f} ms vs 16-core {many:.0f} ms")
    assert many < 0.75 * dual


def test_free_crypto_isolates_communication(benchmark):
    """With zero-cost crypto on the WAN, rounds alone order the protocols:
    4-round GDH > 3-round CKD > 2-round STR/TGDH-class."""

    def measure():
        return {
            p: _measure(wan_testbed, p, cost_model=free_crypto())
            for p in ("GDH", "CKD", "STR", "BD")
        }

    costs = run_once(benchmark, measure)
    print("\nWAN join with free crypto (communication only):")
    for protocol, cost in costs.items():
        print(f"  {protocol:5s} {cost:7.0f} ms")
    assert costs["GDH"] > costs["CKD"]
    assert costs["CKD"] > min(costs["STR"], costs["BD"]) * 0.8
    assert costs["GDH"] > costs["STR"]


def _fast_ring_wan():
    """The WAN testbed with near-free intersite links: an 'idealized
    broadcast' network that removes the token-ring ordering latency."""
    topo = wan_testbed()
    machines = [
        Machine(m.name, site="one-site", cores=m.cores, speed=m.speed)
        for m in topo.machines
    ]
    return Topology("wan-idealized", machines, site_latency_ms={},
                    intra_site_latency_ms=0.08)


def test_token_ring_latency_dominates_wan(benchmark):
    """Collapsing the WAN to an idealized low-latency broadcast medium
    removes most of the measured cost: the ordering/token mechanics, not
    computation, dominate the real WAN numbers (§6.2.2)."""

    def measure():
        real = _measure(wan_testbed, "TGDH")
        ideal = _measure(_fast_ring_wan, "TGDH")
        return real, ideal

    real, ideal = run_once(benchmark, measure)
    print(f"\nTGDH join n={N}: real WAN {real:.0f} ms vs idealized {ideal:.0f} ms")
    assert ideal < real / 4


def test_key_confirmation_overhead(benchmark):
    """§5: the original Cliques TGDH/STR recompute published blinded keys
    as key confirmation; the paper counts the optimized variant.  The
    overhead is real but modest — roughly one extra exponentiation per
    level/position per member."""
    from repro.protocols.loopback import LoopbackGroup
    from repro.protocols.tgdh import TgdhProtocol

    class ConfirmingTgdh(TgdhProtocol):
        def __init__(self, member, group, rng, ledger=None, engine=None):
            super().__init__(
                member, group, rng, ledger, engine=engine, key_confirmation=True
            )

    ConfirmingTgdh.name = "TGDH"

    def measure():
        plain = LoopbackGroup(TgdhProtocol)
        confirming = LoopbackGroup(ConfirmingTgdh)
        for loop in (plain, confirming):
            for i in range(16):
                loop.join(f"m{i}")
        return (
            plain.leave("m8").exponentiations(),
            confirming.leave("m8").exponentiations(),
        )

    plain_exps, confirm_exps = run_once(benchmark, measure)
    print(f"\nTGDH leave n=16 total exponentiations: optimized {plain_exps} "
          f"vs key-confirmation {confirm_exps}")
    assert plain_exps < confirm_exps <= 3 * plain_exps


def test_tgdh_random_tree_vs_balanced(benchmark):
    """§6.1.2: the paper measures TGDH on an artificially balanced tree
    and argues that on a random (churn-grown) tree joins get cheaper
    (insertion lands nearer the root) while leaves get more expensive —
    but still cheaper than GDH.  We grow a random tree by churn and check
    both directions on sponsor workloads."""
    import random

    from repro.protocols.loopback import LoopbackGroup
    from repro.protocols.tgdh import TgdhProtocol
    from repro.protocols.gdh import GdhProtocol

    def random_tree_group(churn_events=40, seed=7):
        rng = random.Random(seed)
        loop = LoopbackGroup(TgdhProtocol)
        counter = 0
        for _ in range(16):
            loop.join(f"m{counter}")
            counter += 1
        for _ in range(churn_events):
            members = list(loop.members())
            if len(members) <= 12 or rng.random() < 0.5:
                loop.join(f"m{counter}")
                counter += 1
            else:
                loop.leave(rng.choice(members))
        while len(loop.members()) > 16:
            loop.leave(loop.members()[len(loop.members()) // 2])
        while len(loop.members()) < 16:
            loop.join(f"m{counter}")
            counter += 1
        return loop

    def measure():
        balanced = LoopbackGroup(TgdhProtocol)
        for i in range(16):
            balanced.join(f"b{i}")
        random_loop = random_tree_group()
        gdh = LoopbackGroup(GdhProtocol)
        for i in range(16):
            gdh.join(f"g{i}")
        bal_height = balanced.protocols[balanced.members()[0]]._tree.height()
        rnd_height = random_loop.protocols[
            random_loop.members()[0]
        ]._tree.height()
        bal_leave = balanced.leave(balanced.members()[8]).max_exponentiations()
        rnd_leave = random_loop.leave(
            random_loop.members()[8]
        ).max_exponentiations()
        gdh_leave = gdh.leave(gdh.members()[8]).max_exponentiations()
        return bal_height, rnd_height, bal_leave, rnd_leave, gdh_leave

    bal_h, rnd_h, bal_leave, rnd_leave, gdh_leave = run_once(benchmark, measure)
    print(f"\nTGDH tree height n=16: balanced {bal_h} vs churn-grown {rnd_h}")
    print(f"leave sponsor exponentiations: balanced {bal_leave}, "
          f"churn-grown {rnd_leave}, GDH {gdh_leave}")
    # The churn-grown tree is at least as tall, so its leave costs at
    # least as much -- but still (far) less than GDH's linear cost.
    assert rnd_h >= bal_h
    assert rnd_leave >= bal_leave - 1
    assert rnd_leave < gdh_leave
