"""§6.1.1 micro-measurements on the LAN testbed.

The paper's basic parameters: an Agreed multicast costs ~1.2-1.6 ms nearly
independently of group size; a BD-style all-to-all round costs a few ms
for small groups growing to ~20 ms at 50 members; the membership service
costs 1-3 ms; and the per-operation cryptographic costs on the 666 MHz
PIII platform (RSA-1024 sign/verify, 512/1024-bit modular exponentiation).
"""


from conftest import run_once
from repro.crypto.costmodel import pentium3_666
from repro.gcs import GcsWorld, lan_testbed


def _grow(world, count, group="g"):
    clients = world.spawn_clients([f"c{i}" for i in range(count)])
    for client in clients:
        client.join(group)
        world.run_until_idle()
    return clients


def _agreed_latency(world, clients):
    """Send one Agreed multicast; time until every member delivered it."""
    stamps = []
    for client in clients:
        client.on_message = lambda _c, _m: stamps.append(world.now)
    t0 = world.now
    clients[0].multicast("g", "probe")
    world.run_until_idle()
    for client in clients:
        client.on_message = None
    return max(stamps) - t0


def _all_to_all_latency(world, clients):
    """Every member broadcasts; time until everyone has all n-1 others'."""
    t0 = world.now
    for client in clients:
        client.multicast("g", f"blast-{client.name}")
    world.run_until_idle()
    return world.now - t0


def test_agreed_multicast_cost(benchmark, results_dir):
    def measure():
        rows = []
        for size in (3, 13, 27, 50):
            world = GcsWorld(lan_testbed())
            clients = _grow(world, size)
            rows.append((size, _agreed_latency(world, clients)))
        return rows

    rows = run_once(benchmark, measure)
    print("\nAgreed multicast send+deliver cost (LAN):")
    for size, cost in rows:
        print(f"  n={size:3d}: {cost:5.2f} ms")
    # Almost constant, single-digit milliseconds, mild growth with n.
    costs = [cost for _, cost in rows]
    assert all(0.5 < cost < 6.0 for cost in costs)
    assert max(costs) < 3.0 * min(costs)


def test_all_to_all_round_cost(benchmark):
    def measure():
        rows = []
        for size in (3, 20, 50):
            world = GcsWorld(lan_testbed())
            clients = _grow(world, size)
            rows.append((size, _all_to_all_latency(world, clients)))
        return rows

    rows = run_once(benchmark, measure)
    print("\nBD-style all-to-all broadcast round (LAN):")
    for size, cost in rows:
        print(f"  n={size:3d}: {cost:5.2f} ms")
    by_size = dict(rows)
    # A few ms for small groups, noticeably more at 50 members.
    assert by_size[3] < 10.0
    assert by_size[50] > 2.0 * by_size[3]
    assert by_size[50] < 60.0


def test_membership_service_cost(benchmark):
    """Join/leave membership cost (no key agreement): 1-3 ms on the LAN."""

    def measure():
        world = GcsWorld(lan_testbed())
        clients = _grow(world, 20)
        stamps = []
        late = world.client("late", 5)
        for client in clients:
            client.on_view = lambda _c, _v: stamps.append(world.now)
        t0 = world.now
        late.join("g")
        world.run_until_idle()
        return max(stamps) - t0

    cost = run_once(benchmark, measure)
    print(f"\nMembership service (join, n=20): {cost:.2f} ms")
    assert 0.5 < cost < 6.0


def test_crypto_operation_costs():
    """The cost model matches the paper's reported per-op milliseconds."""
    model = pentium3_666()
    assert 1.0 < model.exp_cost(512) < 3.5  # "~2 ms"
    assert 5.0 < model.exp_cost(1024) < 9.0  # "~7 ms"
    assert 7.0 < model.sign_ms < 12.0  # RSA-1024 sign w/ CRT
    assert 0.3 < model.verify_ms < 2.0  # RSA-1024 verify, e=3
    # Verification is much cheaper than signing (the reason for e=3).
    assert model.sign_ms > 5 * model.verify_ms
