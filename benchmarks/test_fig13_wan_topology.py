"""Figure 13: the WAN testbed — JHU, UCI and ICU with the paper's
round-trip latencies (35 / 150 / 135 ms) and thirteen machines.

This "figure" is a topology, so its reproduction is a validation that the
simulated WAN testbed has exactly the paper's geometry, plus the derived
quantities (token ring cycle) the other WAN benchmarks depend on.
"""

import pytest

from conftest import run_once
from repro.gcs import GcsWorld
from repro.gcs.ring import TokenRing
from repro.gcs.topology import wan_testbed


def _ping_matrix():
    topo = wan_testbed()
    probes = {
        ("JHU", "UCI"): (topo.machine("jhu0"), topo.machine("uci0")),
        ("UCI", "ICU"): (topo.machine("uci0"), topo.machine("icu0")),
        ("ICU", "JHU"): (topo.machine("icu0"), topo.machine("jhu0")),
    }
    return {pair: topo.round_trip_ms(a, b) for pair, (a, b) in probes.items()}


def test_fig13_round_trip_latencies(benchmark, results_dir):
    matrix = run_once(benchmark, _ping_matrix)
    print()
    print("Figure 13: WAN testbed round-trip latencies (simulated ping)")
    for (src, dst), rtt in matrix.items():
        print(f"  {src} - {dst}: {rtt:6.1f} ms")
    with open(f"{results_dir}/fig13_topology.txt", "w") as handle:
        for (src, dst), rtt in matrix.items():
            handle.write(f"{src}-{dst},{rtt:.1f}\n")
    assert matrix[("JHU", "UCI")] == pytest.approx(35.0)
    assert matrix[("UCI", "ICU")] == pytest.approx(150.0)
    assert matrix[("ICU", "JHU")] == pytest.approx(135.0)


def test_fig13_machine_distribution():
    topo = wan_testbed()
    by_site = {}
    for machine in topo.machines:
        by_site.setdefault(machine.site, []).append(machine)
    assert len(by_site["jhu"]) == 11
    assert len(by_site["uci"]) == 1
    assert len(by_site["icu"]) == 1


def test_fig13_token_cycle_dominated_by_transcontinental_links():
    world = GcsWorld(wan_testbed())
    topo = world.topology
    ring = TokenRing(topo, topo.machines, world.sim)
    # One-way sum of the site triangle: 17.5 + 75 + 67.5 = 160 ms.
    assert 158 < ring.cycle_ms < 165
