"""§6.2.1 micro-measurements on the WAN testbed.

The paper's basic parameters: an Agreed multicast costs ~300-335 ms
depending on the sender's site; a BD-style all-to-all round for 50 members
costs over a second; the membership service costs 400-700 ms for a join
and several hundred ms for a leave.
"""


from conftest import run_once
from repro.gcs import GcsWorld, wan_testbed

#: one representative sender machine per site
SITE_SENDERS = {"JHU": 0, "UCI": 11, "ICU": 12}


def _grown_world(count):
    world = GcsWorld(wan_testbed())
    clients = world.spawn_clients([f"c{i}" for i in range(count)])
    for client in clients:
        client.join("g")
        world.run_until_idle()
    return world, clients


def test_agreed_multicast_by_sender_site(benchmark, results_dir):
    def measure():
        results = {}
        for site, machine_index in SITE_SENDERS.items():
            world, clients = _grown_world(13)
            sender = clients[machine_index]
            stamps = []
            for client in clients:
                client.on_message = lambda _c, _m: stamps.append(world.now)
            t0 = world.now
            sender.multicast("g", "probe")
            world.run_until_idle()
            results[site] = max(stamps) - t0
        return results

    results = run_once(benchmark, measure)
    print("\nAgreed multicast send+deliver cost by sender site (WAN):")
    for site, cost in results.items():
        print(f"  sender at {site}: {cost:6.1f} ms")
    with open("benchmarks/results/micro_wan_agreed.txt", "w") as handle:
        for site, cost in results.items():
            handle.write(f"{site},{cost:.1f}\n")
    # Hundreds of milliseconds, sender-site dependent, within a 2x band.
    for cost in results.values():
        assert 120 < cost < 500
    assert max(results.values()) < 2.0 * min(results.values())


def test_all_to_all_round_cost(benchmark):
    def measure():
        world, clients = _grown_world(50)
        t0 = world.now
        for client in clients:
            client.multicast("g", f"blast-{client.name}")
        world.run_until_idle()
        return world.now - t0

    cost = run_once(benchmark, measure)
    print(f"\nBD-style all-to-all round, n=50 (WAN): {cost:.0f} ms")
    # The paper reports ~1.5 s; anything in the high-hundreds-to-2s band
    # preserves the conclusion (all-to-all is ruinous on a WAN).
    assert 400 < cost < 2500


def test_membership_service_cost(benchmark):
    """Join membership cost on the WAN: hundreds of milliseconds."""

    def measure():
        world, clients = _grown_world(20)
        stamps = []
        for client in clients:
            client.on_view = lambda _c, _v: stamps.append(world.now)
        late = world.client("late", 5)
        t0 = world.now
        late.join("g")
        world.run_until_idle()
        join_cost = max(stamps) - t0
        stamps.clear()
        t0 = world.now
        clients[7].leave("g")
        world.run_until_idle()
        leave_cost = max(stamps) - t0
        return join_cost, leave_cost

    join_cost, leave_cost = run_once(benchmark, measure)
    print(f"\nMembership service (WAN): join {join_cost:.0f} ms, "
          f"leave {leave_cost:.0f} ms")
    assert 100 < join_cost < 900
    assert 100 < leave_cost < 900
