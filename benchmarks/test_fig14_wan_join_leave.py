"""Figure 14: average join and leave time vs group size on the WAN
testbed (512-bit Diffie-Hellman).

Shape claims reproduced (§6.2.2-6.2.3):

* **join** — GDH performs significantly worse than the others: it needs
  more rounds, and its factor-out round is n Agreed-ordered messages, not
  cheap unicasts; CKD remains competitive (its extra rounds are single
  unicasts); STR and TGDH land in the same range as BD for moderate sizes;
* **leave** — BD is the most expensive (two all-broadcast rounds); GDH,
  CKD and TGDH need a single broadcast and perform similarly; STR's higher
  computation puts it above TGDH;
* the membership service costs hundreds of milliseconds — a significant
  fraction of the total, unlike on the LAN;
* communication cost (rounds × ring latency) dominates everything.
"""

import pytest

from conftest import ALL_PROTOCOLS, run_once
from repro.bench import render_series, series_to_csv, sweep_group_sizes
from repro.gcs.topology import wan_testbed

WAN_SIZES = (2, 8, 14, 20, 26, 35, 50)


@pytest.fixture(scope="module")
def wan_join():
    return sweep_group_sizes(
        wan_testbed, ALL_PROTOCOLS, "join", dh_group="dh-512",
        sizes=WAN_SIZES, repeats=2,
    )


@pytest.fixture(scope="module")
def wan_leave():
    return sweep_group_sizes(
        wan_testbed, ALL_PROTOCOLS, "leave", dh_group="dh-512",
        sizes=WAN_SIZES, repeats=2,
    )


def test_fig14_join(benchmark, results_dir, wan_join):
    series = run_once(benchmark, lambda: wan_join)
    print()
    print(render_series(series, "Figure 14 (left): Join - DH 512 bits (WAN)"))
    series_to_csv(series, f"{results_dir}/fig14_join_512.csv")
    # GDH is significantly worse than the non-BD protocols at every size,
    # and the worst overall at large sizes.
    for size in WAN_SIZES:
        assert series.at("GDH", size) > 1.4 * series.at("CKD", size)
        assert series.at("GDH", size) >= series.at("STR", size)
    # CKD remains competitive (two of its three rounds are unicasts).
    assert series.at("CKD", 50) < series.at("GDH", 50) / 1.5
    # Everything is dominated by communication: hundreds of milliseconds.
    for protocol in ALL_PROTOCOLS:
        assert series.at(protocol, 8) > 250


def test_fig14_leave(benchmark, results_dir, wan_leave):
    series = run_once(benchmark, lambda: wan_leave)
    print()
    print(render_series(series, "Figure 14 (right): Leave - DH 512 bits (WAN)"))
    series_to_csv(series, f"{results_dir}/fig14_leave_512.csv")
    # BD is the most expensive leave protocol on the WAN.
    for size in WAN_SIZES[1:]:
        assert series.loser(size) == "BD"
    # GDH, CKD and TGDH exhibit similar performance (single broadcast).
    for size in (20, 50):
        trio = [series.at(p, size) for p in ("GDH", "CKD", "TGDH")]
        assert max(trio) < 2.0 * min(trio)


def test_fig14_membership_service_hundreds_of_ms(wan_join):
    """§6.2.1: the membership service costs 150-700 ms on the WAN — no
    longer negligible relative to key agreement."""
    for cost in wan_join.membership:
        assert 100 < cost < 800


def test_fig14_rounds_dominate(wan_join):
    """§6.2.3: "the number of rounds seems to be the most important factor"
    — 4-round GDH costs more than 3-round CKD, which costs more than the
    fastest 2-round protocol, at every measured size."""
    for size in WAN_SIZES:
        two_round_best = min(
            wan_join.at(p, size) for p in ("BD", "STR", "TGDH")
        )
        assert wan_join.at("GDH", size) > two_round_best
