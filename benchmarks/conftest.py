"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper on the
simulated testbeds, prints the series it measured, writes a CSV under
``benchmarks/results/``, and asserts the paper's *shape* claims (who wins,
by roughly what factor, where the crossovers fall).
"""

import os

import pytest

from repro.protocols import available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Every registered protocol — the paper's five, in presentation order
#: (which happens to be sorted order).
ALL_PROTOCOLS = available()

#: The group sizes sampled along the paper's 0-50 member x-axis.
FIGURE_SIZES = (2, 4, 8, 13, 20, 26, 33, 40, 50)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
