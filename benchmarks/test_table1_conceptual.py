"""Table 1: conceptual communication and computation costs.

Prints the symbolic grid and an evaluated instance, and validates the
formulas against instrumented protocol runs (the same cross-check the
unit-test suite performs, here at the table's presentation sizes).
"""


from conftest import run_once
from repro.analysis.costs import conceptual_cost
from repro.analysis.table1 import render_table1
from repro.gcs.messages import ViewEvent
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group


def _measure_all(n=10):
    measurements = {}
    for name, cls in PROTOCOLS.items():
        loop = build_group(cls, n)
        stats = loop.join("x")
        loop.leave("x")
        leave_stats = loop.leave(f"m{n // 2}")
        measurements[name] = (stats, leave_stats)
    return measurements


def test_table1(benchmark, results_dir):
    measurements = run_once(benchmark, _measure_all)
    print()
    print(render_table1())
    print()
    print(render_table1(n=10, m=4, p=4))
    with open(f"{results_dir}/table1.txt", "w") as handle:
        handle.write(render_table1() + "\n\n" + render_table1(n=10, m=4, p=4))
    # Validate the exact formulas against the instrumented runs.
    for name, (join_stats, leave_stats) in measurements.items():
        join_cost = conceptual_cost(name, ViewEvent.JOIN, n=10)
        if join_cost.exact:
            assert join_stats.rounds == join_cost.rounds, name
            assert join_stats.total_messages == join_cost.messages, name
            assert (
                join_stats.max_exponentiations()
                == join_cost.serial_exponentiations
            ), name
        leave_cost = conceptual_cost(name, ViewEvent.LEAVE, n=10)
        assert leave_stats.rounds <= leave_cost.rounds, name
        assert leave_stats.total_messages <= leave_cost.messages, name


def test_table1_orderings():
    """The qualitative conclusions the paper draws from Table 1."""
    n = 20
    join = {p: conceptual_cost(p, ViewEvent.JOIN, n=n) for p in PROTOCOLS}
    leave = {p: conceptual_cost(p, ViewEvent.LEAVE, n=n) for p in PROTOCOLS}
    # BD minimizes exponentiations but explodes in messages.
    assert join["BD"].serial_exponentiations == 3
    assert join["BD"].messages == max(c.messages for c in join.values())
    # GDH and CKD scale linearly in computation.
    assert join["GDH"].serial_exponentiations >= n
    assert join["CKD"].serial_exponentiations >= n
    # TGDH scales logarithmically (the bound is 2h+1 with h <= 2 log2 n):
    # asymptotically it beats the linear protocols clearly.
    big_tgdh = conceptual_cost("TGDH", ViewEvent.JOIN, n=100)
    big_gdh = conceptual_cost("GDH", ViewEvent.JOIN, n=100)
    assert big_tgdh.serial_exponentiations < big_gdh.serial_exponentiations / 3
    # STR join is constant.
    assert join["STR"].serial_exponentiations == 5
    # Leave: TGDH's logarithmic bound beats the linear protocols clearly
    # once n outgrows the bound's 2x slack on the tree height.
    big_leave_tgdh = conceptual_cost("TGDH", ViewEvent.LEAVE, n=100)
    big_leave_gdh = conceptual_cost("GDH", ViewEvent.LEAVE, n=100)
    big_leave_str = conceptual_cost("STR", ViewEvent.LEAVE, n=100)
    assert big_leave_tgdh.serial_exponentiations < big_leave_gdh.serial_exponentiations
    assert big_leave_tgdh.serial_exponentiations < big_leave_str.serial_exponentiations
    # GDH merge needs m+3 rounds; everyone else is constant-round.
    merge = {p: conceptual_cost(p, ViewEvent.MERGE, n=n, m=6) for p in PROTOCOLS}
    assert merge["GDH"].rounds == 9
    assert all(merge[p].rounds <= 8 for p in ("BD", "CKD", "STR"))
