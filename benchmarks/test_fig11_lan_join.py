"""Figure 11: average join time vs group size on the LAN testbed,
512- and 1024-bit Diffie-Hellman.

Shape claims reproduced (§6.1.3):

* BD is competitive for small groups but deteriorates rapidly — with a
  512-bit modulus it becomes the worst performer past ~30 members, and its
  cost roughly doubles as the group grows in increments of 13 (one more
  process per testbed machine);
* with a 1024-bit modulus GDH is the worst (modular exponentiation
  dominates) and BD stays good longer;
* STR and TGDH are fairly close, STR slightly better;
* the membership service is negligible (a few milliseconds).
"""

import pytest

from conftest import ALL_PROTOCOLS, FIGURE_SIZES, run_once
from repro.bench import render_series, series_to_csv, sweep_group_sizes
from repro.gcs.topology import lan_testbed


@pytest.fixture(scope="module")
def join_512(request):
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "join", dh_group="dh-512",
        sizes=FIGURE_SIZES, repeats=2,
    )


@pytest.fixture(scope="module")
def join_1024(request):
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "join", dh_group="dh-1024",
        sizes=FIGURE_SIZES, repeats=2,
    )


def test_fig11_join_dh512(benchmark, results_dir, join_512):
    series = run_once(benchmark, lambda: join_512)
    print()
    print(render_series(series, "Figure 11 (left): Join - DH 512 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/fig11_join_512.csv")
    # BD deteriorates: worst at 50 members, and far worse than at 13.
    assert series.loser(50) == "BD"
    assert series.at("BD", 50) > 2.5 * series.at("BD", 13)
    # The BD-vs-GDH crossover exists in the paper's mid-size region
    # (ours falls between 13 and 40 members; the paper's near 30).
    crossover = series.crossover("BD", "GDH")
    print(f"BD-vs-GDH crossover between {crossover[0]} and {crossover[1]} members")
    assert crossover is not None
    assert 4 <= crossover[0] and crossover[1] <= 40
    # GDH and CKD scale linearly; GDH is the costlier of the two.
    assert series.at("GDH", 50) > series.at("CKD", 50) > 3 * series.at("CKD", 2)
    # STR stays nearly flat and beats TGDH slightly.
    assert series.at("STR", 50) < 2.5 * series.at("STR", 2)
    assert series.at("STR", 50) < series.at("TGDH", 50)
    # Membership service is a few milliseconds, dwarfed by key agreement.
    assert all(cost < 8.0 for cost in series.membership)
    assert series.membership_at(50) < series.at("TGDH", 50) / 5


def test_fig11_join_dh1024(benchmark, results_dir, join_1024):
    series = run_once(benchmark, lambda: join_1024)
    print()
    print(render_series(series, "Figure 11 (right): Join - DH 1024 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/fig11_join_1024.csv")
    # GDH is the worst at 1024 bits (sharp increase in exponentiation).
    assert series.loser(50) == "GDH"
    assert series.at("GDH", 50) > series.at("BD", 50)
    # BD remains best-of-breed longer than at 512 bits: it still beats
    # GDH and CKD at 26 members.
    assert series.at("BD", 26) < series.at("GDH", 26)
    assert series.at("BD", 26) < series.at("CKD", 26)
    # STR & TGDH remain the cheap protocols.
    assert series.at("STR", 50) < series.at("CKD", 50)
    assert series.at("TGDH", 50) < series.at("GDH", 50)


def test_fig11_bd_cost_doubles_every_thirteen(join_512):
    """§6.1.3: "BD's cost roughly doubles as the group size grows in
    increments of 13" — one extra process lands on every dual-CPU machine."""
    series = join_512
    # 13 -> 26 -> 40: each step adds one process per machine.
    first, second, third = (
        series.at("BD", 13),
        series.at("BD", 26),
        series.at("BD", 40),
    )
    assert second > 1.35 * first
    assert third > 1.35 * second


def test_fig11_1024_costs_exceed_512(join_512, join_1024):
    for protocol in ALL_PROTOCOLS:
        assert join_1024.at(protocol, 50) > join_512.at(protocol, 50)
