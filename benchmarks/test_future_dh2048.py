"""Future work C (paper footnote 9): 2048-bit Diffie-Hellman results.

The paper intended to add 2048-bit measurements.  At 2048 bits a full
exponentiation costs ~26 ms on the reference platform, which pushes the
512-bit trends to their extreme: computation dwarfs LAN communication
entirely, GDH/CKD become unusable for medium groups, and the constant- or
log-exponentiation protocols (STR joins, TGDH leaves) win by an order of
magnitude.
"""

import pytest

from conftest import ALL_PROTOCOLS, run_once
from repro.bench import render_series, series_to_csv, sweep_group_sizes
from repro.gcs.topology import lan_testbed

SIZES = (4, 13, 26)


@pytest.fixture(scope="module")
def join_2048():
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "join", dh_group="dh-2048",
        sizes=SIZES, repeats=1,
    )


@pytest.fixture(scope="module")
def leave_2048():
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "leave", dh_group="dh-2048",
        sizes=SIZES, repeats=1,
    )


def test_join_2048(benchmark, results_dir, join_2048):
    series = run_once(benchmark, lambda: join_2048)
    print()
    print(render_series(series, "Future work: Join - DH 2048 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/future_join_2048.csv")
    # Linear-exponentiation protocols are far behind the flat ones.
    assert series.at("GDH", 26) > 3 * series.at("STR", 26)
    assert series.at("CKD", 26) > 3 * series.at("STR", 26)
    # BD's 3 exponentiations keep it strong well past its 512-bit range.
    assert series.at("BD", 13) < series.at("GDH", 13)
    assert series.at("BD", 13) < series.at("CKD", 13)


def test_leave_2048(benchmark, results_dir, leave_2048):
    series = run_once(benchmark, lambda: leave_2048)
    print()
    print(render_series(series, "Future work: Leave - DH 2048 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/future_leave_2048.csv")
    # The constant/logarithmic protocols win: at 2048 bits BD's three
    # exponentiations finally beat even TGDH's 2h (the trend §6.1.4 notes
    # going from 512 to 1024 bits, taken one step further).
    assert series.winner(26) in ("TGDH", "BD")
    assert series.at("STR", 26) > 2 * series.at("TGDH", 26)
    assert series.at("GDH", 26) > 2 * series.at("TGDH", 26)


def test_2048_exponentation_cost_dominates(join_2048):
    """At 2048 bits the LAN membership service (~2 ms) is hundreds of
    times below the expensive protocols."""
    assert join_2048.at("GDH", 26) > 200 * join_2048.membership_at(26)
