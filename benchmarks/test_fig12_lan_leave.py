"""Figure 12: average leave time vs group size on the LAN testbed,
512- and 1024-bit Diffie-Hellman.

Shape claims reproduced (§6.1.4):

* TGDH outperforms the rest — its sub-linear (logarithmic) behaviour
  becomes particularly evident past ~30 members;
* BD is the worst at 512 bits (its cost is the same as for a join);
* STR, CKD and GDH all scale linearly, with STR's slope the steepest
  (~3/2 of the others'), which makes STR the most expensive protocol at
  1024 bits;
* TGDH's 1024-bit cost is roughly twice its 512-bit cost and remains the
  leader.
"""

import pytest

from conftest import ALL_PROTOCOLS, FIGURE_SIZES, run_once
from repro.bench import render_series, series_to_csv, sweep_group_sizes
from repro.gcs.topology import lan_testbed


@pytest.fixture(scope="module")
def leave_512():
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "leave", dh_group="dh-512",
        sizes=FIGURE_SIZES, repeats=2,
    )


@pytest.fixture(scope="module")
def leave_1024():
    return sweep_group_sizes(
        lan_testbed, ALL_PROTOCOLS, "leave", dh_group="dh-1024",
        sizes=FIGURE_SIZES, repeats=2,
    )


def test_fig12_leave_dh512(benchmark, results_dir, leave_512):
    series = run_once(benchmark, lambda: leave_512)
    print()
    print(render_series(series, "Figure 12 (left): Leave - DH 512 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/fig12_leave_512.csv")
    # TGDH outperforms the rest; sub-linear growth.
    assert series.winner(50) == "TGDH"
    assert series.at("TGDH", 50) < 2.2 * series.at("TGDH", 13)
    # BD is the worst at 512 bits.
    assert series.loser(50) == "BD"
    # CKD and GDH are quite close; STR's slope is steeper.
    ckd, gdh = series.at("CKD", 50), series.at("GDH", 50)
    assert abs(ckd - gdh) < 0.45 * max(ckd, gdh)
    str_slope = (series.at("STR", 50) - series.at("STR", 13)) / 37
    gdh_slope = (series.at("GDH", 50) - series.at("GDH", 13)) / 37
    assert str_slope > 1.05 * gdh_slope


def test_fig12_leave_dh1024(benchmark, results_dir, leave_1024):
    series = run_once(benchmark, lambda: leave_1024)
    print()
    print(render_series(series, "Figure 12 (right): Leave - DH 1024 bits (LAN)"))
    series_to_csv(series, f"{results_dir}/fig12_leave_1024.csv")
    # STR is the most expensive protocol at 1024-bit leaves.
    assert series.loser(50) == "STR"
    # TGDH remains the leader.
    assert series.winner(50) == "TGDH"
    # BD is no longer the worst: for small-to-medium groups it performs
    # close to, or better than, GDH.
    assert series.at("BD", 13) < 1.3 * series.at("GDH", 13)


def test_fig12_tgdh_1024_roughly_doubles_512(leave_512, leave_1024):
    """§6.1.4: at 1024 bits TGDH costs roughly twice the 512-bit case."""
    ratio = leave_1024.at("TGDH", 50) / leave_512.at("TGDH", 50)
    assert 1.5 < ratio < 4.5
