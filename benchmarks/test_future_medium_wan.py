"""Future work A (§7): a medium-delay (40-100 ms round-trip) WAN, where
"communication and computation costs are expected to equalize, at least in
theory".

We run the join/leave sweep on the medium-delay testbed and check the
equalization: computation-heavy protocols (GDH) and communication-heavy
protocols (BD) move much closer together than on either extreme testbed,
and TGDH — the paper's overall recommendation — stays at or near the top.
"""

import pytest

from conftest import ALL_PROTOCOLS, run_once
from repro.bench import render_series, series_to_csv, sweep_group_sizes
from repro.gcs.topology import medium_wan_testbed

SIZES = (4, 13, 26, 40)


def _testbed():
    return medium_wan_testbed(rtt_ms=70.0)


@pytest.fixture(scope="module")
def medium_join():
    return sweep_group_sizes(
        _testbed, ALL_PROTOCOLS, "join", dh_group="dh-512",
        sizes=SIZES, repeats=2,
    )


@pytest.fixture(scope="module")
def medium_leave():
    return sweep_group_sizes(
        _testbed, ALL_PROTOCOLS, "leave", dh_group="dh-512",
        sizes=SIZES, repeats=2,
    )


def test_medium_wan_join(benchmark, results_dir, medium_join):
    series = run_once(benchmark, lambda: medium_join)
    print()
    print(render_series(series, "Future work: Join - DH 512 (70 ms RTT WAN)"))
    series_to_csv(series, f"{results_dir}/future_medium_wan_join.csv")
    # Communication and computation equalize: the best/worst spread at a
    # moderate size is well under the high-delay WAN's ~2.3x.
    spread = series.at(series.loser(26), 26) / series.at(series.winner(26), 26)
    assert spread < 4.0
    # GDH's extra rounds still cost, but less catastrophically.
    assert series.at("GDH", 26) < 3.0 * series.at("CKD", 26)


def test_medium_wan_leave(benchmark, results_dir, medium_leave):
    series = run_once(benchmark, lambda: medium_leave)
    print()
    print(render_series(series, "Future work: Leave - DH 512 (70 ms RTT WAN)"))
    series_to_csv(series, f"{results_dir}/future_medium_wan_leave.csv")
    # The single-broadcast protocols stay within one round of each other.
    for size in SIZES[1:]:
        trio = [series.at(p, size) for p in ("GDH", "CKD", "TGDH")]
        assert max(trio) < 2.5 * min(trio)


def test_tgdh_best_choice_across_environments(medium_join, medium_leave):
    """§7: "TGDH is the protocol that will work best in both environments"
    — on the medium WAN, TGDH is within 1.5x of the winner for both
    events (it need not win outright at every size)."""
    for series in (medium_join, medium_leave):
        for size in (13, 26):
            best = series.at(series.winner(size), size)
            assert series.at("TGDH", size) < 1.8 * best
