#!/usr/bin/env python
"""Quickstart: a secure group on the paper's LAN testbed in ~30 lines.

Creates a Secure Spread deployment on the simulated 13-machine LAN
cluster, forms a 4-member group keyed with TGDH (the paper's recommended
protocol), exchanges encrypted application messages, and rekeys on a
leave.

Run:  python examples/quickstart.py
"""

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed


def main():
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="TGDH", dh_group="dh-512"
    )

    # Four member processes on four different machines join the group.
    members = framework.spawn_members(4, group_name="demo")
    for member in members:
        framework.timeline.mark_event(framework.now)
        member.join()
        framework.run_until_idle()
        record = framework.timeline.latest_complete()
        print(
            f"{member.name} joined: {len(record.members)} members, "
            f"rekeyed in {record.total_elapsed():.1f} ms "
            f"(membership {record.membership_elapsed():.1f} ms)"
        )

    alice, bob, carol, dave = members
    assert len({m.key_bytes for m in members}) == 1
    print(f"\nshared group key: {alice.key_bytes.hex()[:32]}…")

    # Application data is encrypted under the group key.
    alice.send_secure(b"The package is in the usual place.")
    framework.run_until_idle()
    for member in (bob, carol, dave):
        sender, plaintext = member.inbox[-1]
        print(f"{member.name} received from {sender}: {plaintext.decode()}")

    # A leave triggers an automatic rekey; the old key is gone.
    old_key = alice.key_bytes
    framework.timeline.mark_event(framework.now)
    dave.leave()
    framework.run_until_idle()
    record = framework.timeline.latest_complete()
    print(
        f"\ndave left: rekeyed in {record.total_elapsed():.1f} ms; "
        f"key changed: {alice.key_bytes != old_key}"
    )


if __name__ == "__main__":
    main()
