#!/usr/bin/env python
"""A transcontinental secure conference: the paper's motivating scenario.

Conferencing participants at JHU, UCI and ICU (Figure 13's testbed) hold a
secure session over Secure Spread.  Participants come and go; every
membership change transparently rekeys the group, and the application
only ever sees plaintext under the current key.  The script reports the
per-event rekey latency — the number Figure 14 plots — and shows why the
paper cares about WAN round counts.

Run:  python examples/secure_conference_wan.py
"""

from repro.core import SecureSpreadFramework
from repro.gcs.topology import wan_testbed

SITE_OF_MACHINE = lambda m: m.site.upper()


def report_rekey(framework, what):
    record = framework.timeline.latest_complete()
    print(
        f"  {what}: {len(record.members)} members, "
        f"rekeyed in {record.total_elapsed():.0f} ms "
        f"(membership service {record.membership_elapsed():.0f} ms, "
        f"key agreement {record.key_agreement_elapsed():.0f} ms)"
    )


def main():
    framework = SecureSpreadFramework(
        wan_testbed(), default_protocol="TGDH", dh_group="dh-512"
    )
    topo = framework.world.topology

    print("Conference sites:", ", ".join(s.upper() for s in topo.sites))
    print("\n--- participants joining ---")
    roster = [
        ("yair", 0),      # JHU
        ("cristina", 1),  # JHU
        ("gene", 11),     # UCI
        ("yongdae", 12),  # ICU
    ]
    participants = {}
    for name, machine in roster:
        member = framework.member(name, machine, "conference")
        participants[name] = member
        framework.timeline.mark_event(framework.now)
        member.join()
        framework.run_until_idle()
        site = SITE_OF_MACHINE(topo.machines[machine])
        report_rekey(framework, f"{name} ({site}) joined")

    print("\n--- encrypted discussion ---")
    transcripts = {name: [] for name in participants}
    for name, member in participants.items():
        member.on_secure_message = (
            lambda m, sender, text, _n=name: transcripts[_n].append(
                f"{sender}: {text.decode()}"
            )
        )
    participants["yair"].send_secure(b"Shall we compare the LAN numbers?")
    participants["yongdae"].send_secure(b"ICU's round trips are brutal.")
    framework.run_until_idle()
    for line in transcripts["gene"]:
        print(f"  [gene@UCI hears] {line}")
    assert transcripts["gene"] == transcripts["cristina"]

    print("\n--- churn: a participant drops, another dials in ---")
    framework.timeline.mark_event(framework.now)
    participants["gene"].leave()
    framework.run_until_idle()
    report_rekey(framework, "gene left")

    late = framework.member("late-joiner", 5, "conference")
    framework.timeline.mark_event(framework.now)
    late.join()
    framework.run_until_idle()
    report_rekey(framework, "late-joiner (JHU) joined")

    # The newcomer can read new traffic but no pre-join messages.
    participants["cristina"].send_secure(b"Welcome aboard.")
    framework.run_until_idle()
    assert late.inbox[-1][1] == b"Welcome aboard."
    assert all(text != b"Shall we compare the LAN numbers?" for _, text in late.inbox)
    print("  late-joiner reads new traffic, and none from before it joined.")


if __name__ == "__main__":
    main()
