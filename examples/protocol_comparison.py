#!/usr/bin/env python
"""Choose a key agreement protocol for your deployment.

Runs a miniature version of the paper's evaluation — joins and leaves at a
few group sizes on both testbeds — and prints the comparison, ending with
the paper's conclusion: TGDH works best in both environments, BD is fine
for small LAN groups, and round-heavy protocols suffer on the WAN.

Run:  python examples/protocol_comparison.py   (takes ~1 minute)
"""

from repro.bench import render_plot, render_series, sweep_group_sizes
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.protocols import available

PROTOCOLS = available()
SIZES = (4, 13, 26)


def main():
    print("Comparing the five protocols of Amir et al. (ICDCS 2002)…\n")
    tables = []
    for topology, factory in (("LAN", lan_testbed), ("WAN", wan_testbed)):
        for event in ("join", "leave"):
            series = sweep_group_sizes(
                factory, PROTOCOLS, event, dh_group="dh-512",
                sizes=SIZES, repeats=1,
            )
            tables.append(series)
            title = f"{event.capitalize()} cost on the {topology} (ms)"
            print(render_series(series, title))
            print()
            if topology == "LAN" and event == "join":
                print(render_plot(series, title=title + " — chart"))
                print()

    lan_join, lan_leave, wan_join, wan_leave = tables
    print("What the numbers say:")
    print(f"  * smallest LAN groups: {lan_join.winner(4)} and BD are cheap;"
          f" BD deteriorates to {lan_join.at('BD', 26):.0f} ms by n=26.")
    print(f"  * LAN leaves at n=26: TGDH needs "
          f"{lan_leave.at('TGDH', 26):.0f} ms vs "
          f"{lan_leave.at('BD', 26):.0f} ms for BD.")
    print(f"  * WAN joins: GDH's {wan_join.at('GDH', 13):.0f} ms vs "
          f"{wan_join.at('CKD', 13):.0f} ms for CKD - rounds dominate.")
    print(f"  * WAN leaves: single-broadcast protocols cluster near "
          f"{wan_leave.at('TGDH', 13):.0f} ms; BD pays "
          f"{wan_leave.at('BD', 13):.0f} ms.")
    print("\nPaper's conclusion, reproduced: pick TGDH for dynamic peer "
          "groups in both local and wide area networks.")


if __name__ == "__main__":
    main()
