#!/usr/bin/env python
"""A replicated whiteboard: the collaborative application of §1.

Every member applies the same totally ordered stream of encrypted drawing
operations, so all replicas converge — the classic group communication
use-case ("white-boards, distributed simulations, replicated servers")
that motivates reliable ordered delivery *and* group secrecy.  Mid-session
churn rekeys the group without disturbing replica consistency.

Run:  python examples/replicated_whiteboard.py
"""

import json

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed


class Whiteboard:
    """One member's replica: applies ops in delivery order."""

    def __init__(self, member):
        self.member = member
        self.shapes = []
        member.on_secure_message = self._apply

    def _apply(self, _member, sender, payload):
        op = json.loads(payload.decode())
        if op["kind"] == "draw":
            self.shapes.append((sender, op["shape"], tuple(op["at"])))
        elif op["kind"] == "clear":
            self.shapes.clear()

    def draw(self, shape, at):
        self.member.send_secure(
            json.dumps({"kind": "draw", "shape": shape, "at": at}).encode()
        )

    def clear(self):
        self.member.send_secure(json.dumps({"kind": "clear"}).encode())


def main():
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="STR", dh_group="dh-512"
    )
    members = framework.spawn_members(5, group_name="whiteboard")
    for member in members:
        member.join()
        framework.run_until_idle()
    boards = [Whiteboard(member) for member in members]

    # Concurrent drawing from several members: Agreed ordering makes every
    # replica apply the same sequence.
    boards[0].draw("circle", [10, 10])
    boards[2].draw("square", [40, 25])
    boards[4].draw("arrow", [15, 30])
    framework.run_until_idle()
    reference = boards[0].shapes
    assert all(b.shapes == reference for b in boards), "replicas diverged!"
    print(f"{len(members)} replicas, {len(reference)} shapes, all identical:")
    for author, shape, at in reference:
        print(f"  {shape:7s} at {at} by {author}")

    # Churn mid-session: a member leaves (rekey), a new one joins (rekey),
    # and drawing continues without losing consistency.
    members[1].leave()
    framework.run_until_idle()
    newcomer = framework.member("reviewer", 7, "whiteboard")
    newcomer.join()
    framework.run_until_idle()
    new_board = Whiteboard(newcomer)

    boards[3].draw("star", [5, 5])
    framework.run_until_idle()
    survivors = [b for i, b in enumerate(boards) if i != 1]
    assert all(
        b.shapes[-1][1] == "star" for b in survivors
    ), "post-churn op lost"
    assert new_board.shapes == [("m3", "star", (5, 5))]
    print("\nafter churn (leave + join): survivors have 4 shapes, the "
          "newcomer sees only post-join ops — past drawings stay private.")

    boards[0].clear()
    framework.run_until_idle()
    assert all(b.shapes == [] for b in survivors + [new_board])
    print("board cleared everywhere. replicas consistent throughout.")


if __name__ == "__main__":
    main()
