#!/usr/bin/env python
"""Network partitions and healing: the events §5 calls partition and merge.

A nine-member group on the LAN cluster is split by a network fault into
two components.  Each side detects the partition, rekeys among its own
survivors, and keeps operating securely — the property that makes
contributory key agreement suitable for peer groups (no omni-present key
server needed, §1.1).  When the network heals, the components merge and
agree on a fresh common key.

Run:  python examples/partition_healing.py
"""

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed


def keys_by_side(members, left_indices):
    left = {members[i].key_bytes for i in left_indices}
    right = {
        m.key_bytes for i, m in enumerate(members) if i not in left_indices
    }
    return left, right


def main():
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="GDH", dh_group="dh-512"
    )
    members = framework.spawn_members(9, group_name="resilient")
    for member in members:
        member.join()
        framework.run_until_idle()
    print(f"group formed: {len(members)} members, one key: "
          f"{members[0].key_bytes.hex()[:16]}…")

    # The switch fails: machines 0-3 are cut off from the rest.
    print("\n--- network partitions: machines {0,1,2,3} vs the rest ---")
    framework.timeline.mark_event(framework.now)
    framework.world.partition([[0, 1, 2, 3], list(range(4, 13))])
    framework.run_until_idle()
    left_keys, right_keys = keys_by_side(members, left_indices={0, 1, 2, 3})
    assert len(left_keys) == 1 and len(right_keys) == 1
    assert left_keys != right_keys
    print(f"  left side key : {left_keys.pop().hex()[:16]}…")
    print(f"  right side key: {right_keys.pop().hex()[:16]}…")

    # Both sides keep communicating securely within themselves.
    members[0].send_secure(b"left side still standing")
    members[4].send_secure(b"right side unaffected")
    framework.run_until_idle()
    assert members[1].inbox[-1][1] == b"left side still standing"
    assert members[5].inbox[-1][1] == b"right side unaffected"
    assert all(text != b"left side still standing" for _, text in members[5].inbox)
    print("  each side exchanges traffic under its own key; nothing crosses.")

    # The fault heals; the components merge and rekey together.
    print("\n--- network heals ---")
    framework.timeline.mark_event(framework.now)
    framework.world.heal()
    framework.run_until_idle()
    record = framework.timeline.latest_complete()
    merged = {m.key_bytes for m in members}
    assert len(merged) == 1
    print(f"  merged in {record.total_elapsed():.1f} ms; "
          f"one key again: {merged.pop().hex()[:16]}…")

    members[2].send_secure(b"reunited")
    framework.run_until_idle()
    assert members[8].inbox[-1][1] == b"reunited"
    print("  cross-partition traffic flows again.")


if __name__ == "__main__":
    main()
