"""Flight-recorder walkthrough: trace one rekey and attribute its cost.

Grows a TGDH group on the simulated LAN testbed with observability
enabled, injects one join, then:

* prints the span-based per-epoch report — total elapsed time decomposed
  into the paper's §6 membership / communication / computation phases,
  reconciled against the ``RekeyTimeline``;
* prints the crypto operation counters the ledger bridge collected;
* writes a Chrome trace-event JSON you can open in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` — one process per
  simulated machine, one thread per member.

Run with ``python examples/trace_rekey.py``.
"""

import os
import tempfile

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed
from repro.obs import render_report, timeline_breakdowns, validate_chrome_trace

GROUP_SIZE = 8


def main() -> None:
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="TGDH", observe=True
    )
    machines = len(framework.world.topology.machines)
    for index in range(GROUP_SIZE):
        member = framework.member(f"m{index}", index % machines)
        member.join()
        framework.run_until_idle()

    framework.mark_event()                       # the measured instant
    joiner = framework.member("newcomer", GROUP_SIZE % machines)
    joiner.join()
    framework.run_until_idle()

    print(render_report(
        framework.timeline, framework.obs.spans,
        f"TGDH join at n={GROUP_SIZE} on the LAN testbed (ms)",
    ))

    (breakdown,) = timeline_breakdowns(framework.timeline, framework.obs.spans)
    assert breakdown.reconciles(), "phases must sum to the timeline total"

    metrics = framework.obs.metrics
    print()
    print(f"exponentiations (whole run): "
          f"{metrics.counter_total('crypto.exponentiations'):.0f}")
    print(f"signatures: {metrics.counter_total('crypto.signatures'):.0f}, "
          f"verifications: {metrics.counter_total('crypto.verifications'):.0f}")
    print(f"network frames: {metrics.counter_total('net.frames'):.0f} "
          f"({metrics.counter_total('net.bytes'):.0f} bytes)")

    path = os.path.join(tempfile.mkdtemp(prefix="repro-trace-"), "rekey.json")
    trace = framework.obs.write_chrome_trace(path)
    validate_chrome_trace(trace)
    print()
    print(f"wrote {path} ({len(trace['traceEvents'])} trace events) — "
          f"open it in Perfetto or chrome://tracing")


if __name__ == "__main__":
    main()
