"""Tests for the protocol registry (`repro.protocols.register/available`)."""

import warnings

import pytest

from repro.bench.cli import build_subcommand_parser
from repro.protocols import (
    PROTOCOLS,
    KeyAgreementProtocol,
    TgdhProtocol,
    available,
    get_protocol,
    register,
    unregister,
)


class DummyProtocol(KeyAgreementProtocol):
    name = "DUMMY"


def test_available_lists_the_papers_five_sorted():
    names = available()
    assert names == ("BD", "CKD", "GDH", "STR", "TGDH")
    assert list(names) == sorted(names)


def test_get_protocol_is_case_insensitive():
    assert get_protocol("tgdh") is get_protocol("TGDH") is TgdhProtocol


def test_get_protocol_names_the_choices_on_error():
    with pytest.raises(ValueError, match="choose from"):
        get_protocol("NOPE")


def test_register_and_unregister_roundtrip():
    register("DUMMY", DummyProtocol)
    try:
        assert "DUMMY" in available()
        assert get_protocol("dummy") is DummyProtocol
    finally:
        unregister("DUMMY")
    assert "DUMMY" not in available()


def test_register_rejects_non_protocol_classes():
    with pytest.raises(TypeError, match="KeyAgreementProtocol subclass"):
        register("BAD", object)


def test_register_same_class_is_idempotent():
    register("TGDH", TgdhProtocol)  # no-op, no error
    assert get_protocol("TGDH") is TgdhProtocol


def test_register_refuses_to_shadow_without_replace():
    with pytest.raises(ValueError, match="already registered"):
        register("TGDH", DummyProtocol)
    assert get_protocol("TGDH") is TgdhProtocol


def test_register_replace_rebinds_and_restores():
    register("TGDH", DummyProtocol, replace=True)
    try:
        assert get_protocol("TGDH") is DummyProtocol
    finally:
        register("TGDH", TgdhProtocol, replace=True)
    assert get_protocol("TGDH") is TgdhProtocol


def test_register_attaches_step_phases():
    phases = {"dummy-round": "broadcast"}
    register("DUMMY", DummyProtocol, phases=phases)
    try:
        assert DummyProtocol.STEP_PHASES == phases
    finally:
        unregister("DUMMY")


def test_unregister_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown protocol"):
        unregister("NOPE")


def test_protocols_mapping_iterates_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert sorted(PROTOCOLS) == list(available())
        assert len(PROTOCOLS) == len(available())
        assert "TGDH" in PROTOCOLS


def test_protocols_getitem_warns_deprecation():
    with pytest.warns(DeprecationWarning, match="get_protocol"):
        assert PROTOCOLS["TGDH"] is TgdhProtocol
    with pytest.warns(DeprecationWarning):
        with pytest.raises(KeyError):
            PROTOCOLS["NOPE"]


def test_registered_protocol_appears_in_cli_choices():
    """The acceptance demo: registering a protocol makes it a valid
    ``--protocols`` choice everywhere, with no CLI edits."""
    register("DUMMY", DummyProtocol)
    try:
        parser = build_subcommand_parser()
        args = parser.parse_args(["load", "--protocols", "DUMMY", "TGDH"])
        assert args.protocols == ["DUMMY", "TGDH"]
    finally:
        unregister("DUMMY")
    with pytest.raises(SystemExit):
        build_subcommand_parser().parse_args(["load", "--protocols", "DUMMY"])
