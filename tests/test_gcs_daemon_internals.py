"""White-box tests of daemon behaviour: flush reconstruction, freezing,
canonical merge views, and edge paths a black-box test rarely hits."""

import pytest

from repro.gcs import GcsWorld, ViewEvent, lan_testbed
from repro.gcs.daemon import MemberRecord, _reconstruct_groups, _AcceptState
from repro.gcs.messages import GroupMessage, SequencedMessage


def _world_with_group(names):
    world = GcsWorld(lan_testbed())
    clients = [world.channel(n, i) for i, n in enumerate(names)]
    for client in clients:
        client.join("g")
        world.run_until_idle()
    return world, clients


class TestReconstruction:
    def _smsg(self, seq, kind, sender, daemon_id=0, config=(1, 0)):
        return SequencedMessage(
            config_id=config,
            seq=seq,
            origin_daemon=daemon_id,
            sequenced_at=0.0,
            message=GroupMessage(
                group="g",
                sender=sender,
                payload={"daemon_id": daemon_id} if kind == "join" else None,
                kind=kind,
            ),
        )

    def _state(self, groups, delivered=0, config=(1, 0)):
        return _AcceptState(
            daemon_id=0,
            config_id=config,
            delivered=delivered,
            undelivered={},
            groups=groups,
        )

    def test_applies_pending_joins(self):
        state = self._state({"g": {}})
        union = {(1, 0): {5: self._smsg(5, "join", "alice")}}
        groups = _reconstruct_groups(state, union)
        assert "alice" in groups["g"]
        assert groups["g"]["alice"].birth == ((1, 0), 5)

    def test_applies_pending_leaves(self):
        record = MemberRecord("bob", 0, ((1, 0), 1))
        state = self._state({"g": {"bob": record}})
        union = {(1, 0): {3: self._smsg(3, "leave", "bob")}}
        groups = _reconstruct_groups(state, union)
        assert "bob" not in groups["g"]

    def test_skips_already_delivered(self):
        state = self._state({"g": {}}, delivered=7)
        union = {(1, 0): {5: self._smsg(5, "join", "alice")}}
        groups = _reconstruct_groups(state, union)
        assert "alice" not in groups["g"]

    def test_join_is_idempotent(self):
        record = MemberRecord("alice", 0, ((1, 0), 2))
        state = self._state({"g": {"alice": record}})
        union = {(1, 0): {4: self._smsg(4, "join", "alice")}}
        groups = _reconstruct_groups(state, union)
        assert groups["g"]["alice"].birth == ((1, 0), 2)  # original kept

    def test_ignores_other_configs(self):
        state = self._state({"g": {}}, config=(2, 1))
        union = {(1, 0): {5: self._smsg(5, "join", "alice")}}
        assert "alice" not in _reconstruct_groups(state, union).get("g", {})


class TestFreezing:
    def test_sends_queued_while_frozen_are_released(self):
        world, (a, b) = _world_with_group(["a", "b"])
        world.partition([[0, 1], list(range(2, 13))], detection_delay_ms=0.1)
        # Submit right after detection: daemons are frozen mid-change.
        world.sim.schedule(0.15, a.multicast, "g", "during-freeze")
        world.run_until_idle()
        assert any(m.payload == "during-freeze" for m in b.received)

    def test_messages_sequenced_in_old_config_resubmitted(self):
        """A message waiting for the token when the config changes is
        re-sequenced in the new configuration, not lost."""
        world, (a, b) = _world_with_group(["a", "b"])
        a.multicast("g", "racing")
        # Detection fires before the token can possibly arrive.
        world.partition([[0, 1], list(range(2, 13))], detection_delay_ms=0.01)
        world.run_until_idle()
        assert any(m.payload == "racing" for m in b.received)


class TestCanonicalMergeViews:
    def test_joined_is_identical_on_both_sides(self):
        world, clients = _world_with_group(["a", "b", "c", "d"])
        world.partition([[0, 1], [2, 3] + list(range(4, 13))])
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        views = [c.views[-1] for c in clients]
        assert len({v.joined for v in views}) == 1
        # The oldest member 'a' anchors the base side.
        assert views[0].joined == ("c", "d")

    def test_merge_with_simultaneous_leave_classified_as_merge(self):
        world, clients = _world_with_group(["a", "b", "c", "d"])
        world.partition([[0, 1], [2, 3] + list(range(4, 13))])
        world.run_until_idle()
        # 'd' disconnects while partitioned; then the network heals.
        clients[3].disconnect()
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        view = clients[0].views[-1]
        assert view.event is ViewEvent.MERGE
        assert set(view.members) == {"a", "b", "c"}


class TestEdgePaths:
    def test_fifo_to_departed_member_dropped_silently(self):
        world, (a, b) = _world_with_group(["a", "b"])
        b.leave("g")
        world.run_until_idle()
        a.unicast("g", "b", "too late")  # must not raise
        world.run_until_idle()
        assert all(m.payload != "too late" for m in b.received)

    def test_duplicate_join_ignored(self):
        world, (a, b) = _world_with_group(["a", "b"])
        views_before = len(b.views)
        a.join("g")  # already a member
        world.run_until_idle()
        assert len(b.views) == views_before

    def test_leave_of_non_member_ignored(self):
        world, (a, b) = _world_with_group(["a", "b"])
        outsider = world.channel("outsider", 5)
        outsider.leave("g")
        world.run_until_idle()
        assert b.views[-1].members == ("a", "b")

    def test_disconnect_leaves_all_groups(self):
        world = GcsWorld(lan_testbed())
        a = world.channel("a", 0)
        b = world.channel("b", 1)
        for group in ("g1", "g2"):
            a.join(group)
            b.join(group)
            world.run_until_idle()
        a.disconnect()
        world.run_until_idle()
        last_two = [v for v in b.views if v.event is ViewEvent.LEAVE]
        assert {v.group for v in last_two} == {"g1", "g2"}
        assert all(v.members == ("b",) for v in last_two)

    def test_crash_client_helper(self):
        world, (a, b) = _world_with_group(["a", "b"])
        world.crash_client("a")
        world.run_until_idle()
        assert b.views[-1].members == ("b",)
        with pytest.raises(KeyError):
            world.crash_client("ghost")

    def test_isolate_machine_helper(self):
        world, (a, b) = _world_with_group(["a", "b"])
        world.isolate_machine(0)
        world.run_until_idle()
        assert b.views[-1].members == ("b",)
        assert a.views[-1].members == ("a",)
