"""Tests for the JSONL and Chrome trace-event exporters."""

import json

import pytest

from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import lan_testbed
from repro.obs import (
    Observability,
    spans_to_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.spans import Span


def _spans():
    return [
        Span("crypto", "TGDH.start", "m0", "lan0", 1.0, 3.0, {"epoch": "e"}),
        Span("net", "frame d0->d1", "d0", "lan0", 2.0, 4.5, {"bytes": 96}),
        Span("membership", "event", "world", "world", 0.5, 0.5, {}),
    ]


def test_spans_to_jsonl_round_trips(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    count = spans_to_jsonl(_spans(), path)
    assert count == 3
    rows = [json.loads(line) for line in open(path)]
    assert rows[0]["name"] == "TGDH.start"
    assert rows[1]["attrs"] == {"bytes": 96}
    assert rows[2]["start"] == rows[2]["end"] == 0.5


def test_chrome_trace_shape():
    trace = to_chrome_trace(_spans())
    validate_chrome_trace(trace)  # must not raise
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2 and len(instants) == 1
    # one process per machine (lan0, world), one thread per actor
    names = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
    assert names == {"lan0", "world"}
    # virtual ms -> microsecond timestamps
    span_event = next(e for e in complete if e["name"] == "TGDH.start")
    assert span_event["ts"] == 1000.0
    assert span_event["dur"] == 2000.0
    assert span_event["cat"] == "crypto"


def test_validate_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"nope": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "a"}
            ]}
        )  # complete event without dur


def test_observability_jsonl_includes_metrics(tmp_path):
    obs = Observability(enabled=True)
    obs.span("crypto", "w", "m0", "p0", 0.0, 1.0)
    obs.counter("net.frames", src="d0", dst="d1").inc(4)
    path = str(tmp_path / "dump.jsonl")
    lines = obs.to_jsonl(path)
    rows = [json.loads(line) for line in open(path)]
    assert lines == len(rows) == 2
    assert rows[0]["category"] == "crypto"
    assert rows[1]["metric"]["name"] == "net.frames"
    assert rows[1]["metric"]["value"] == 4


def test_full_stack_trace_is_valid_chrome_json(tmp_path):
    """A real (small) simulated rekey exports a loadable trace."""
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="TGDH", observe=True
    )
    for i in range(3):
        member = framework.member(f"m{i}", i)
        member.join()
        framework.run_until_idle()
    path = str(tmp_path / "trace.json")
    trace = framework.obs.write_chrome_trace(path)
    validate_chrome_trace(trace)
    reloaded = json.load(open(path))
    validate_chrome_trace(reloaded)
    cats = {e.get("cat") for e in reloaded["traceEvents"] if e["ph"] == "X"}
    assert "crypto" in cats and "net" in cats and "epoch" in cats
