"""Tests for the JSONL and Chrome trace-event exporters."""

import json

import pytest

from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import lan_testbed
from repro.obs import (
    JSONL_SCHEMA_VERSION,
    Observability,
    spans_to_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.spans import Span


def _spans():
    return [
        Span("crypto", "TGDH.start", "m0", "lan0", 1.0, 3.0, {"epoch": "e"}),
        Span("net", "frame d0->d1", "d0", "lan0", 2.0, 4.5, {"bytes": 96}),
        Span("membership", "event", "world", "world", 0.5, 0.5, {}),
    ]


def test_spans_to_jsonl_round_trips(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    count = spans_to_jsonl(_spans(), path)
    assert count == 4  # schema header + three spans
    rows = [json.loads(line) for line in open(path)]
    assert rows[0]["schema"]["version"] == JSONL_SCHEMA_VERSION
    assert rows[1]["name"] == "TGDH.start"
    assert rows[2]["attrs"] == {"bytes": 96}
    assert rows[3]["start"] == rows[3]["end"] == 0.5


def test_chrome_trace_shape():
    trace = to_chrome_trace(_spans())
    validate_chrome_trace(trace)  # must not raise
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2 and len(instants) == 1
    # one process per machine (lan0, world), one thread per actor
    names = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
    assert names == {"lan0", "world"}
    # virtual ms -> microsecond timestamps
    span_event = next(e for e in complete if e["name"] == "TGDH.start")
    assert span_event["ts"] == 1000.0
    assert span_event["dur"] == 2000.0
    assert span_event["cat"] == "crypto"


def test_validate_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"nope": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "a"}
            ]}
        )  # complete event without dur


def test_observability_jsonl_includes_metrics(tmp_path):
    obs = Observability(enabled=True)
    obs.span("crypto", "w", "m0", "p0", 0.0, 1.0)
    obs.counter("net.frames", src="d0", dst="d1").inc(4)
    path = str(tmp_path / "dump.jsonl")
    lines = obs.to_jsonl(path)
    rows = [json.loads(line) for line in open(path)]
    assert lines == len(rows) == 3  # schema header + span + metric
    assert rows[0]["schema"]["kind"] == "repro.obs"
    assert rows[1]["category"] == "crypto"
    assert rows[2]["metric"]["name"] == "net.frames"
    assert rows[2]["metric"]["value"] == 4


def _caused_spans():
    """A two-span parent/child chain with causal ids."""
    return [
        Span(
            "crypto", "sign", "m0", "lan0", 1.0, 3.0, {},
            span_id=1, parent_id=None, trace_id=1,
        ),
        Span(
            "net", "frame d0->d1", "d0", "lan1", 3.0, 4.0, {},
            span_id=2, parent_id=1, trace_id=1,
        ),
    ]


def test_chrome_trace_emits_flow_events_along_parent_edges():
    trace = to_chrome_trace(_caused_spans())
    validate_chrome_trace(trace)
    starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    start, finish = starts[0], finishes[0]
    # One flow arrow per parent edge, id'd by the child span.
    assert start["id"] == finish["id"] == 2
    assert start["cat"] == finish["cat"] == "flow"
    assert finish["bp"] == "e"
    # Arrow leaves the parent's end, lands at the child's start (in us).
    assert start["ts"] == 3000.0 and finish["ts"] == 3000.0
    # The arrow connects the two distinct process/thread lanes.
    assert (start["pid"], start["tid"]) != (finish["pid"], finish["tid"])


def test_chrome_trace_skips_flows_for_dropped_parents():
    orphan = [
        Span(
            "net", "frame", "d0", "lan0", 1.0, 2.0, {},
            span_id=9, parent_id=404, trace_id=1,  # parent not recorded
        )
    ]
    trace = to_chrome_trace(orphan)
    validate_chrome_trace(trace)
    assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]


def test_metadata_carries_sort_indices():
    trace = to_chrome_trace(_spans())
    metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    names = {e["name"] for e in metadata}
    assert "process_sort_index" in names and "thread_sort_index" in names
    for event in metadata:
        if event["name"] == "process_sort_index":
            assert event["args"]["sort_index"] == event["pid"]


def test_full_stack_trace_is_valid_chrome_json(tmp_path):
    """A real (small) simulated rekey exports a loadable trace."""
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="TGDH", observe=True
    )
    for i in range(3):
        member = framework.member(f"m{i}", i)
        member.join()
        framework.run_until_idle()
    path = str(tmp_path / "trace.json")
    trace = framework.obs.write_chrome_trace(path)
    validate_chrome_trace(trace)
    reloaded = json.load(open(path))
    validate_chrome_trace(reloaded)
    cats = {e.get("cat") for e in reloaded["traceEvents"] if e["ph"] == "X"}
    assert "crypto" in cats and "net" in cats and "epoch" in cats
