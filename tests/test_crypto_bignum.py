"""Tests for the optional bignum backend seam (``repro.crypto.bignum``).

Every arithmetic test is parametrized over *available* backends: on a
bare interpreter that is just the pure-python one, and the suite still
proves the seam's plumbing (selection, env override, error paths).  On
an interpreter with gmpy2 installed — the ``bignum-identity`` CI job —
the same assertions pin bit-identity between the two implementations.
"""

import pytest

from repro.crypto.bignum import (
    ENV_VAR,
    PYTHON_BACKEND,
    BignumBackend,
    available_backends,
    backend_info,
    get_backend,
    gmpy2_available,
)
from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import GROUP_TINY
from repro.crypto.modmath import batch_exp, multi_exp, sliding_window_pow

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return get_backend(request.param)


# ---------------------------------------------------------------------------
# selection


def test_python_backend_always_available():
    assert "python" in BACKENDS
    assert get_backend("python") is PYTHON_BACKEND


def test_instance_passes_through():
    assert get_backend(PYTHON_BACKEND) is PYTHON_BACKEND


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown bignum backend"):
        get_backend("openssl")


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "python")
    assert get_backend(None).name == "python"


def test_auto_never_fails(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert get_backend(None).name in BACKENDS
    monkeypatch.setenv(ENV_VAR, "auto")
    chosen = get_backend(None)
    # auto prefers the compiled path exactly when it is importable.
    assert chosen.name == ("gmpy2" if gmpy2_available() else "python")


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, BACKENDS[-1])
    assert get_backend("python").name == "python"


@pytest.mark.skipif(gmpy2_available(), reason="gmpy2 is installed here")
def test_explicit_gmpy2_raises_when_missing():
    with pytest.raises(ValueError, match="gmpy2"):
        get_backend("gmpy2")


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 not installed")
def test_gmpy2_results_are_plain_ints():
    gm = get_backend("gmpy2")
    assert gm.name == "gmpy2"
    assert get_backend("gmpy2") is gm  # one instance per process
    value = gm.unwrap(gm.powmod(4, 17, GROUP_TINY.p))
    assert type(value) is int
    assert gm.unwrap(gm.wrap(12345)) == 12345


def test_backend_info_shape(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "python")
    info = backend_info()
    assert info["selected"] == "python"
    assert "python" in info["available"]
    assert info["env"] == "python"


# ---------------------------------------------------------------------------
# arithmetic identity (vs builtins, per available backend)


def test_powmod_matches_builtin(backend: BignumBackend):
    p = GROUP_TINY.p
    for base, exponent in ((2, 0), (GROUP_TINY.g, 1), (7, 509), (p - 1, 2)):
        assert backend.unwrap(backend.powmod(base, exponent, p)) == pow(
            base, exponent, p
        )


def test_powmod_negative_exponent(backend: BignumBackend):
    p = GROUP_TINY.p
    assert backend.unwrap(backend.powmod(4, -3, p)) == pow(4, -3, p)


def test_mulmod_matches_builtin(backend: BignumBackend):
    p = GROUP_TINY.p
    assert backend.unwrap(backend.mulmod(p - 2, p - 3, p)) == (p - 2) * (p - 3) % p


def test_invmod_matches_builtin(backend: BignumBackend):
    p = GROUP_TINY.p
    inv = backend.unwrap(backend.invmod(42, p))
    assert inv == pow(42, -1, p)
    assert 42 * inv % p == 1


def test_invmod_rejects_noninvertible(backend: BignumBackend):
    with pytest.raises(ValueError):
        backend.invmod(6, 12)


def test_wrap_unwrap_round_trip(backend: BignumBackend):
    assert backend.unwrap(backend.wrap(GROUP_TINY.p)) == GROUP_TINY.p


# ---------------------------------------------------------------------------
# multi_exp / batch_exp / fixed-base edge cases, per backend


def _naive_product(pairs, modulus):
    result = 1
    for base, exponent in pairs:
        result = result * pow(base, exponent, modulus) % modulus
    return result


def test_multi_exp_empty_batch(backend):
    assert multi_exp([], GROUP_TINY.p, backend=backend) == 1


def test_multi_exp_single_pair(backend):
    p = GROUP_TINY.p
    assert multi_exp([(4, 123)], p, backend=backend) == pow(4, 123, p)


def test_multi_exp_zero_exponent(backend):
    p = GROUP_TINY.p
    assert multi_exp([(4, 0)], p, backend=backend) == 1
    assert multi_exp([(4, 0), (9, 7)], p, backend=backend) == pow(9, 7, p)


def test_multi_exp_mixed_bases(backend):
    p = GROUP_TINY.p
    pairs = [(4, 301), (9, 118), (25, 0), (p - 1, 2), (2, 508)]
    assert multi_exp(pairs, p, backend=backend) == _naive_product(pairs, p)


@pytest.mark.parametrize("window", [1, 2, 3, 4, 5, 8])
def test_multi_exp_window_boundaries(backend, window):
    p = GROUP_TINY.p
    pairs = [(4, (1 << 9) - 1), (9, 1 << 8), (7, 255)]
    assert multi_exp(pairs, p, window=window, backend=backend) == _naive_product(
        pairs, p
    )


def test_multi_exp_rejects_negative_exponent(backend):
    with pytest.raises(ValueError):
        multi_exp([(4, -1)], GROUP_TINY.p, backend=backend)


def test_batch_exp_matches_pow_loop(backend):
    p = GROUP_TINY.p
    exponents = [0, 1, 2, 255, 256, 508, (1 << 9) - 1]
    assert batch_exp(7, exponents, p, backend=backend) == [
        pow(7, e, p) for e in exponents
    ]
    assert batch_exp(7, [], p, backend=backend) == []


def test_batch_exp_rejects_negative_exponent(backend):
    with pytest.raises(ValueError):
        batch_exp(7, [3, -1], GROUP_TINY.p, backend=backend)


def test_sliding_window_pow_matches_builtin(backend):
    p = GROUP_TINY.p
    for exponent in (0, 1, 508, -3):
        assert sliding_window_pow(4, exponent, p, backend=backend) == pow(
            4, exponent, p
        )


def test_fixed_base_table_per_backend(backend):
    group = GROUP_TINY
    table = FixedBaseTable(
        group.p, group.g, group.q.bit_length(), window=3, backend=backend
    )
    exponents = [0, 1, 2, 100, group.q - 1]
    assert table.pow_many(exponents) == [
        pow(group.g, e, group.p) for e in exponents
    ]
    assert all(type(v) is int for v in table.pow_many(exponents))
