"""Key tree structure tests (the TGDH substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.keytree import KeyTree


def _grow(names):
    tree = KeyTree.singleton(names[0])
    for name in names[1:]:
        tree.insert_tree(KeyTree.singleton(name))
    return tree


class TestStructure:
    def test_singleton(self):
        tree = KeyTree.singleton("a", key=7)
        assert tree.members() == ["a"]
        assert tree.height() == 0
        assert tree.root.key == 7

    def test_insert_keeps_all_members(self):
        tree = _grow(["a", "b", "c", "d", "e"])
        assert sorted(tree.members()) == ["a", "b", "c", "d", "e"]

    def test_sequential_inserts_stay_balanced(self):
        """The rightmost-shallowest heuristic keeps height logarithmic for
        sequential joins (the paper: height < 2 log2 n)."""
        import math

        for n in (4, 8, 16, 31):
            tree = _grow([f"m{i}" for i in range(n)])
            assert tree.height() <= 2 * math.ceil(math.log2(n))

    def test_insert_at_root_when_tree_full(self):
        tree = _grow(["a", "b"])  # perfectly balanced, height 1
        h_before = tree.height()
        tree.insert_tree(KeyTree.singleton("c"))
        assert tree.height() == h_before + 1  # had to grow

    def test_insert_fills_gap_without_height_increase(self):
        tree = _grow(["a", "b", "c"])  # height 2 with a free slot
        tree.insert_tree(KeyTree.singleton("d"))
        assert tree.height() == 2

    def test_parent_pointers_consistent(self):
        tree = _grow(["a", "b", "c", "d", "e"])
        for leaf in tree.leaves():
            node = leaf
            while node.parent is not None:
                assert node in (node.parent.left, node.parent.right)
                node = node.parent
            assert node is tree.root

    def test_remove_promotes_sibling(self):
        tree = _grow(["a", "b"])
        tree.remove_members(["a"])
        assert tree.members() == ["b"]
        assert tree.root.is_leaf

    def test_remove_multiple(self):
        tree = _grow(["a", "b", "c", "d", "e", "f"])
        tree.remove_members(["b", "e"])
        assert sorted(tree.members()) == ["a", "c", "d", "f"]

    def test_remove_adjacent_siblings(self):
        tree = _grow(["a", "b", "c", "d"])
        tree.remove_members(["a", "b"])
        assert sorted(tree.members()) == ["c", "d"]

    def test_cannot_remove_everyone(self):
        tree = _grow(["a", "b"])
        with pytest.raises(ValueError):
            tree.remove_members(["a", "b"])

    def test_internal_nodes_have_two_children(self):
        tree = _grow([f"m{i}" for i in range(9)])
        tree.remove_members(["m2", "m5", "m7"])
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.extend([node.left, node.right])


class TestInvalidation:
    def test_insert_invalidates_path_to_root(self):
        tree = _grow(["a", "b", "c"])
        for node in tree._all_nodes():
            if not node.is_leaf:
                node.key, node.bkey = 1, 2
        joint = tree.insert_tree(KeyTree.singleton("d"))
        node = joint
        while node is not None:
            assert node.key is None and node.bkey is None
            node = node.parent

    def test_remove_invalidates_above_promotion_only(self):
        tree = _grow(["a", "b", "c", "d"])
        for node in tree._all_nodes():
            if not node.is_leaf:
                node.key, node.bkey = 1, 2
        leaf_d = tree.leaf_of("d")
        sibling_subtree_root = leaf_d.sibling()
        tree.remove_members(["d"])
        # The promoted subtree keeps its keys; ancestors are cleared.
        node = sibling_subtree_root
        if not node.is_leaf:
            assert node.key == 1
        while node.parent is not None:
            node = node.parent
            assert node.key is None


class TestSerialization:
    def test_round_trip_preserves_structure_and_bkeys(self):
        tree = _grow(["a", "b", "c", "d", "e"])
        for i, node in enumerate(tree._all_nodes()):
            node.bkey = 100 + i
        clone = KeyTree.deserialize(tree.serialize())
        assert clone.members() == tree.members()
        assert clone.height() == tree.height()
        assert [n.bkey for n in clone._all_nodes()] == [
            n.bkey for n in tree._all_nodes()
        ]

    def test_serialization_never_carries_secret_keys(self):
        tree = _grow(["a", "b", "c"])
        for node in tree._all_nodes():
            node.key = 42
        flat = repr(tree.serialize())
        assert "42" not in flat

    def test_node_ids_round_trip(self):
        tree = _grow(["a", "b", "c", "d", "e", "f", "g"])
        for node in tree._all_nodes():
            assert tree.find(tree.node_id(node)) is node


class TestSponsorSelection:
    def test_rightmost_member(self):
        tree = _grow(["a", "b", "c", "d"])
        assert tree.rightmost_member() == tree.members()[-1]

    def test_rightmost_of_subtree(self):
        tree = _grow(["a", "b", "c", "d"])
        left_subtree = tree.root.left
        expected = left_subtree
        while not expected.is_leaf:
            expected = expected.right
        assert tree.rightmost_member(left_subtree) == expected.member


@given(st.lists(st.integers(0, 30), min_size=1, max_size=25, unique=True))
@settings(max_examples=60, deadline=None)
def test_random_grow_shrink_preserves_invariants(indices):
    """Property: any interleaving of inserts and removals keeps the tree
    binary (internal nodes have exactly two children) and loses no member."""
    names = [f"m{i}" for i in indices]
    tree = _grow(names)
    if len(names) > 1:
        victims = names[:: 2][: len(names) - 1]
        tree.remove_members(victims)
        expected = [n for n in names if n not in victims]
        assert sorted(tree.members()) == sorted(expected)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not node.is_leaf:
            assert node.left and node.right
            assert node.left.parent is node and node.right.parent is node
            stack.extend([node.left, node.right])
        else:
            assert node.member is not None
