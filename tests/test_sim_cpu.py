"""Tests for the multi-core CPU contention model."""

import pytest

from repro.sim.cpu import Machine
from repro.sim.engine import Simulator


def test_single_core_serializes_work():
    sim = Simulator()
    machine = Machine("m0", cores=1)
    first = machine.submit(sim, 10)
    second = machine.submit(sim, 10)
    assert first == 10
    assert second == 20


def test_dual_core_parallelizes_two_tasks():
    sim = Simulator()
    machine = Machine("m0", cores=2)
    assert machine.submit(sim, 10) == 10
    assert machine.submit(sim, 10) == 10
    # The third task waits for a core.
    assert machine.submit(sim, 10) == 20


def test_contention_doubles_elapsed_time_for_symmetric_load():
    """The mechanism behind the paper's BD-doubles-every-13-members effect:
    k simultaneous equal tasks on a c-core machine finish at ceil(k/c) x."""
    sim = Simulator()
    machine = Machine("m0", cores=2)
    finishes = [machine.submit(sim, 10) for _ in range(4)]
    assert max(finishes) == 20
    machine.reset()
    finishes = [machine.submit(sim, 10) for _ in range(6)]
    assert max(finishes) == 30


def test_speed_scales_duration():
    sim = Simulator()
    slow = Machine("slow", cores=1, speed=0.5)
    assert slow.submit(sim, 10) == 20


def test_completion_callback_fires_at_finish():
    sim = Simulator()
    machine = Machine("m0", cores=1)
    fired = []
    machine.submit(sim, 10, lambda: fired.append(sim.now))
    machine.submit(sim, 5, lambda: fired.append(sim.now))
    sim.run_until_idle()
    assert fired == [10, 15]


def test_work_starts_no_earlier_than_now():
    sim = Simulator()
    machine = Machine("m0", cores=1)
    sim.schedule(100, lambda: None)
    sim.run_until_idle()
    assert machine.submit(sim, 10) == 110


def test_zero_work_completes_immediately():
    sim = Simulator()
    machine = Machine("m0", cores=2)
    assert machine.submit(sim, 0) == 0


def test_negative_work_rejected():
    with pytest.raises(ValueError):
        Machine("m0").submit(Simulator(), -1)


def test_invalid_construction():
    with pytest.raises(ValueError):
        Machine("m0", cores=0)
    with pytest.raises(ValueError):
        Machine("m0", speed=0)


def test_busy_until_reports_next_free_core():
    sim = Simulator()
    machine = Machine("m0", cores=2)
    machine.submit(sim, 10)
    assert machine.busy_until(sim) == 0  # second core still free
    machine.submit(sim, 30)
    assert machine.busy_until(sim) == 10


def test_total_work_accumulates():
    sim = Simulator()
    machine = Machine("m0", cores=2, speed=2.0)
    machine.submit(sim, 10)
    machine.submit(sim, 10)
    assert machine.total_work_ms == 10.0  # scaled by speed


def test_reset_clears_booking():
    sim = Simulator()
    machine = Machine("m0", cores=1)
    machine.submit(sim, 50)
    machine.reset()
    assert machine.submit(sim, 10) == 10


def test_not_before_serializes_a_single_process():
    """A client process is single-threaded: its next task cannot start
    before its previous one finished, even if another core is free."""
    sim = Simulator()
    machine = Machine("m0", cores=2)
    first = machine.submit(sim, 10)
    second = machine.submit(sim, 10, not_before=first)
    assert first == 10
    assert second == 20  # a free core existed, but the process was busy


def test_not_before_in_the_past_has_no_effect():
    sim = Simulator()
    machine = Machine("m0", cores=2)
    assert machine.submit(sim, 5, not_before=0.0) == 5
