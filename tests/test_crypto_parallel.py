"""Tests for intra-epoch crypto sharding (``repro.crypto.parallel``).

The contract under test is transparency: sharded epoch crypto only
pre-warms the engine's power cache, so every observable — simulated
times, ledger charges, keys — is bit-identical to the inline run.
"""

import pytest

from repro.bench.scale import run_scale_cell
from repro.crypto.engine import (
    PowerCache,
    RealEngine,
    get_engine,
    sharded_engine,
)
from repro.crypto.groups import GROUP_TINY
from repro.crypto.parallel import EpochShardPool, PowChain, evaluate_chains

P, Q, G = GROUP_TINY.p, GROUP_TINY.q, GROUP_TINY.g


def _chain(start, bases):
    return PowChain(modulus=P, order=Q, start=start, bases=tuple(bases))


# ---------------------------------------------------------------------------
# chains


def test_pow_chain_validates():
    with pytest.raises(ValueError):
        PowChain(modulus=P, order=0, start=3, bases=(G,))
    with pytest.raises(ValueError):
        PowChain(modulus=0, order=Q, start=3, bases=(G,))


def test_evaluate_chains_matches_sequential_pow():
    entries = evaluate_chains([_chain(7, (G, 9))])
    v1 = pow(G, 7, P)
    v2 = pow(9, v1 % Q, P)
    assert entries == [(P, G, 7, v1), (P, 9, v1 % Q, v2)]


def test_evaluate_chains_deduplicates_shared_steps():
    # Two members lifting the same blinded value produce one entry.
    entries = evaluate_chains([_chain(7, (G,)), _chain(7, (G, 11))])
    assert len(entries) == 2
    assert [e[:3] for e in entries] == [
        (P, G, 7),
        (P, 11, pow(G, 7, P) % Q),
    ]


def test_evaluate_chains_reduces_exponent_mod_order():
    entries = evaluate_chains([_chain(Q + 5, (G,))])
    assert entries == [(P, G, 5, pow(G, 5, P))]


# ---------------------------------------------------------------------------
# the shard pool


def test_pool_rejects_zero_jobs():
    with pytest.raises(ValueError):
        EpochShardPool(0)


def test_pool_inline_path_matches_reference():
    pool = EpochShardPool(1)
    chains = [_chain(s, (G, 9)) for s in (3, 5, 7)]
    assert pool.evaluate(chains) == evaluate_chains(chains)


def test_pool_process_path_matches_reference():
    pool = EpochShardPool(2, min_chains=1)
    chains = [_chain(s, (G, 9, 11)) for s in (3, 5, 7, 12, 13)]
    try:
        assert pool.evaluate(chains) == evaluate_chains(chains)
    finally:
        pool.close()


def test_warm_seeds_cache_and_counts():
    pool = EpochShardPool(1)
    cache = PowerCache(capacity=64)
    seeded = pool.warm(cache, [_chain(7, (G, 9))])
    assert seeded == 2
    assert (pool.batches, pool.chains_planned, pool.entries_seeded) == (1, 1, 2)
    # The inline handler now hits instead of recomputing — bit-identical
    # by construction (a cached power is a pure function of its key).
    assert cache.pow(G, 7, P) == pow(G, 7, P)
    assert (cache.hits, cache.misses) == (1, 0)
    # Re-warming the same plan seeds nothing new.
    assert pool.warm(cache, [_chain(7, (G, 9))]) == 0


def test_seed_keeps_existing_entries():
    cache = PowerCache(capacity=4)
    assert cache.pow(G, 7, P) == pow(G, 7, P)
    cache.seed(G, 7, P, 12345)  # bogus value must NOT displace the real one
    assert cache.seeded == 0
    assert cache.pow(G, 7, P) == pow(G, 7, P)


# ---------------------------------------------------------------------------
# engine resolution


def test_get_engine_backend_suffix_is_cached():
    engine = get_engine("real:python")
    assert engine is get_engine("real:python")
    assert engine.name == "real"  # artifacts never record the backend
    assert engine.backend.name == "python"


def test_sharded_engine_passthrough():
    assert sharded_engine("symbolic", 4) is get_engine("symbolic")
    assert sharded_engine("real", 0) is get_engine("real")


def test_sharded_engine_caches_per_configuration():
    engine = sharded_engine("real", 1)
    assert isinstance(engine, RealEngine)
    assert engine.shard_pool is not None
    assert sharded_engine("real", 1) is engine


# ---------------------------------------------------------------------------
# end to end: a sharded scale cell is bit-identical to the plain one


@pytest.mark.parametrize("protocol", ["TGDH", "BD"])
def test_sharded_cell_is_bit_identical(protocol):
    spec = {
        "protocol": protocol,
        "group_size": 8,
        "engine": "real",
        "seed": 0,
    }
    plain = run_scale_cell(dict(spec))
    sharded = run_scale_cell(dict(spec, shard_jobs=1))
    assert sharded == plain
    pool = sharded_engine("real", 1).shard_pool
    assert pool.plan_errors == 0
    assert pool.chains_planned > 0
