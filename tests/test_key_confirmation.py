"""Tests for the key-confirmation variant of TGDH and STR (paper §5).

"Current implementations of TGDH and STR re-compute a blinded key even
though it has been computed already by the sponsor.  This provides a form
of key confirmation ...  This computation, however, can be removed for
better efficiency, and we consider this optimization when counting the
number of exponentiations."  We implement both variants; the default (and
everything the benchmarks measure) is the optimized one.
"""

import pytest

from repro.protocols.loopback import LoopbackGroup
from repro.protocols.str_protocol import StrProtocol
from repro.protocols.str_protocol import KeyConfirmationError as StrConfirmError
from repro.protocols.tgdh import TgdhProtocol
from repro.protocols.tgdh import KeyConfirmationError as TgdhConfirmError


def _confirming(cls):
    class Confirming(cls):
        def __init__(self, member, group, rng, ledger=None, engine=None):
            super().__init__(
                member, group, rng, ledger, engine=engine, key_confirmation=True
            )

    Confirming.name = cls.name
    return Confirming


def _grow(cls, size):
    loop = LoopbackGroup(cls)
    for i in range(size):
        loop.join(f"m{i}")
    return loop


@pytest.mark.parametrize(
    "protocol_cls", [TgdhProtocol, StrProtocol], ids=["TGDH", "STR"]
)
class TestConfirmationVariant:
    def test_agreement_still_holds(self, protocol_cls):
        loop = _grow(_confirming(protocol_cls), 6)
        loop.shared_key()
        loop.leave("m2")
        loop.shared_key()
        loop.join("x")
        loop.shared_key()

    def test_confirmation_costs_more_exponentiations(self, protocol_cls):
        plain = _grow(protocol_cls, 8)
        confirming = _grow(_confirming(protocol_cls), 8)
        plain_stats = plain.leave("m4")
        confirm_stats = confirming.leave("m4")
        assert (
            confirm_stats.exponentiations() > plain_stats.exponentiations()
        )

    def test_same_key_as_plain_variant(self, protocol_cls):
        """Confirmation only adds checks — the agreed key is unchanged."""
        plain = _grow(protocol_cls, 5)
        confirming = _grow(_confirming(protocol_cls), 5)
        assert plain.shared_key() == confirming.shared_key()


class TestConfirmationDetectsCorruption:
    def test_tgdh_detects_corrupted_blinded_key(self):
        loop = _grow(_confirming(TgdhProtocol), 4)
        member = loop.protocols["m0"]
        # Corrupt a published blinded key on m0's path, then force a
        # recompute by invalidating the keys at and above it.
        path = member._tree.path("m0")
        target = path[1]
        target.bkey = (target.bkey or 2) + 1
        target.key = None
        path[-1].key = None
        with pytest.raises(TgdhConfirmError):
            member._compute_path_keys()

    def test_str_detects_corrupted_blinded_key(self):
        loop = _grow(_confirming(StrProtocol), 4)
        member = loop.protocols["m0"]
        top = len(member._order)
        member._bk[top] = member._bk[top] + 1
        member._keys.pop(top, None)
        with pytest.raises(StrConfirmError):
            member._compute_chain(publish=False)
