"""Tests for the self-profiling benchmark (``python -m repro.bench profile``).

The fast tests exercise the comparison/artifact logic on canned
documents and the CLI on a tiny symbolic cell; the ``slow``-marked
wall-clock smoke runs the real engine end to end (the shape CI's
bench-regression job runs — see .github/workflows/ci.yml) and is
excluded from tier-1 by the ``-m "not slow"`` default.
"""

import json

import pytest

from repro.bench.cli import main
from repro.bench.profiling import (
    _timed_cell,
    profile_micro_sweep,
    wallclock_document,
)


def _fake_profile_doc(wall_by_protocol, sims):
    return {
        "schema": "repro.bench.profile/1",
        "spec": {
            "protocols": list(wall_by_protocol),
            "group_size": 8,
            "engine": "real",
            "topology": "lan",
            "dh_group": "dh-512",
            "seed": 0,
        },
        "total_wall_s": round(sum(wall_by_protocol.values()), 4),
        "cells": {
            name: {"wall_s": wall, "sim": sims[name]}
            for name, wall in wall_by_protocol.items()
        },
    }


def test_wallclock_document_speedup_and_identity():
    sims = {
        "BD": {"join_total_ms": 10.0, "leave_total_ms": 11.0},
        "STR": {"join_total_ms": 3.0, "leave_total_ms": 4.0},
    }
    doc = _fake_profile_doc({"BD": 2.0, "STR": 1.0}, sims)
    baseline = {
        "source": "test",
        "per_protocol": {
            "BD": {"wall_s": 10.0, "sim": sims["BD"]},
            "STR": {"wall_s": 5.0, "sim": sims["STR"]},
        },
    }
    wallclock = wallclock_document(doc, baseline)
    assert wallclock["speedup"] == 5.0
    assert wallclock["sim_identical"] is True
    assert wallclock["baseline"]["total_wall_s"] == 15.0


def test_wallclock_document_flags_sim_divergence():
    sims = {"BD": {"join_total_ms": 10.0, "leave_total_ms": 11.0}}
    doc = _fake_profile_doc({"BD": 2.0}, sims)
    baseline = {
        "per_protocol": {
            "BD": {
                "wall_s": 10.0,
                "sim": {"join_total_ms": 10.0, "leave_total_ms": 99.0},
            },
        },
    }
    assert wallclock_document(doc, baseline)["sim_identical"] is False


def test_wallclock_document_compares_shared_protocols_only():
    sims = {
        "BD": {"join_total_ms": 1.0, "leave_total_ms": 2.0},
        "GDH": {"join_total_ms": 3.0, "leave_total_ms": 4.0},
    }
    doc = _fake_profile_doc({"BD": 2.0, "GDH": 2.0}, sims)
    baseline = {"per_protocol": {"BD": {"wall_s": 8.0, "sim": sims["BD"]}}}
    wallclock = wallclock_document(doc, baseline)
    assert list(wallclock["baseline"]["per_protocol"]) == ["BD"]
    assert wallclock["speedup"] == 4.0  # 8.0 / BD's 2.0; GDH not compared


def test_wallclock_document_without_baseline():
    doc = _fake_profile_doc(
        {"BD": 1.0}, {"BD": {"join_total_ms": 1.0, "leave_total_ms": 2.0}}
    )
    wallclock = wallclock_document(doc, None)
    assert "speedup" not in wallclock and "baseline" not in wallclock


def test_timed_cell_sim_times_match_scale_cell():
    # The profile cell mirrors run_scale_cell's measurement protocol, so
    # its simulated join/leave totals must match a scale cell of the
    # same spec exactly — that equivalence is what lets the committed
    # wall-clock baseline double as a behaviour oracle.
    from repro.bench.scale import run_scale_cell

    spec = {"protocol": "TGDH", "group_size": 6, "engine": "symbolic"}
    cell = _timed_cell(dict(spec))
    scale = run_scale_cell(dict(spec))
    assert cell["sim"]["join_total_ms"] == scale["join"]["total_ms"]
    assert cell["sim"]["leave_total_ms"] == scale["leave"]["total_ms"]
    assert cell["wall_s"] > 0
    assert set(cell["phases_wall_s"]) == {"grow", "join", "leave"}


def test_profile_subcommand_emits_artifacts(capsys, tmp_path):
    out = str(tmp_path / "profile.json")
    wallclock = str(tmp_path / "wallclock.json")
    code = main([
        "profile", "--size", "6", "--protocols", "STR",
        "--engine", "symbolic", "--top", "3",
        "-o", out, "--wallclock", wallclock, "--baseline", "",
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "micro-sweep" in stdout and "no baseline comparison" in stdout
    profile_doc = json.load(open(out))
    cell = profile_doc["cells"]["STR"]
    assert cell["wall_s"] > 0
    assert len(cell["hot_functions"]) == 3
    assert all(row["ncalls"] > 0 for row in cell["hot_functions"])
    wallclock_doc = json.load(open(wallclock))
    assert wallclock_doc["current"]["per_protocol"]["STR"]["sim"] == cell["sim"]


def test_profile_subcommand_skips_mismatched_baseline(capsys, tmp_path):
    # A baseline recorded at a different spec must not be compared: the
    # sim values would always "diverge" and the speedup would be bogus.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "spec": {"group_size": 256, "engine": "real"},
        "per_protocol": {"STR": {"wall_s": 1.0, "sim": {}}},
    }))
    code = main([
        "profile", "--size", "6", "--protocols", "STR",
        "--engine", "symbolic", "--no-profiler",
        "-o", str(tmp_path / "p.json"),
        "--wallclock", str(tmp_path / "w.json"),
        "--baseline", str(baseline),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "skipping comparison" in stdout
    assert "sim_identical" not in json.load(open(tmp_path / "w.json"))


@pytest.mark.slow
def test_real_engine_wallclock_smoke(tmp_path):
    # The CI-shaped smoke: a small real-engine sweep, profiler on, both
    # artifacts written.  No timing thresholds — hosts vary — but the
    # wall-clock plumbing and the hot tables must be populated, and the
    # simulated times must be engine-independent (the symbolic run of
    # the same spec is the oracle).
    doc = profile_micro_sweep(
        protocols=("BD", "TGDH"), size=16, engine="real", top=5,
    )
    assert doc["total_wall_s"] > 0
    for cell in doc["cells"].values():
        assert cell["hot_functions"]
        assert cell["wall_s"] >= sum(cell["phases_wall_s"].values()) - 0.01
    symbolic = profile_micro_sweep(
        protocols=("BD", "TGDH"), size=16, engine="symbolic",
        with_profiler=False,
    )
    for name in ("BD", "TGDH"):
        assert doc["cells"][name]["sim"] == symbolic["cells"][name]["sim"]
