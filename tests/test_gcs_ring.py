"""Tests for the token-ring sequencer."""

import pytest

from repro.gcs.ring import TokenRing
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.sim.engine import Simulator


def _ring(testbed=lan_testbed, machines=None):
    sim = Simulator()
    topo = testbed()
    ring = TokenRing(topo, machines or topo.machines, sim)
    return sim, ring


def _request(sim, ring, index, count=1, at=0.0):
    """Request sequencing and collect the assignments."""
    collected = []
    sim.schedule_at(max(at, sim.now), ring.request, index, count, collected.extend)
    return collected


def test_cycle_time_is_sum_of_hops():
    _, ring = _ring()
    # 13 hops of (0.08 link + 0.03 processing)
    assert ring.cycle_ms == pytest.approx(13 * 0.11)


def test_wan_cycle_dominated_by_site_links():
    _, ring = _ring(wan_testbed)
    expected = 10 * (0.08 + 0.03) + (17.5 + 0.03) + (75.0 + 0.03) + (67.5 + 0.03)
    assert ring.cycle_ms == pytest.approx(expected)


def test_sequencing_waits_for_token_arrival():
    sim, ring = _ring()
    got = _request(sim, ring, 5)
    sim.run_until_idle()
    ((seq, t),) = got
    assert seq == 1
    # Token starts at daemon 0 and travels 5 hops, plus message processing.
    assert t == pytest.approx(5 * 0.11 + 0.05)


def test_burst_sequencing_spaces_messages():
    sim, ring = _ring()
    got = _request(sim, ring, 0, count=3)
    sim.run_until_idle()
    seqs = [s for s, _ in got]
    times = [t for _, t in got]
    assert seqs == [1, 2, 3]
    assert times[1] - times[0] == pytest.approx(0.05)


def test_simultaneous_requests_serviced_in_ring_order():
    """One sweep services every daemon with pending messages — requests
    are NOT serialized by arrival order (a full-cycle penalty each)."""
    sim, ring = _ring()
    results = {}
    # Submit in descending daemon order at the same instant.
    for index in (7, 5, 3, 1):
        collected = _request(sim, ring, index)
        results[index] = collected
    sim.run_until_idle()
    times = {i: results[i][0][1] for i in results}
    assert times[1] < times[3] < times[5] < times[7]
    # All four serviced within a single rotation.
    assert times[7] - times[1] < ring.cycle_ms


def test_sequence_numbers_global_and_in_service_order():
    sim, ring = _ring()
    late = _request(sim, ring, 9)
    early = _request(sim, ring, 2)
    sim.run_until_idle()
    assert early[0][0] == 1
    assert late[0][0] == 2


def test_token_parks_and_resumes_with_correct_phase():
    sim, ring = _ring()
    first = _request(sim, ring, 0)
    sim.run_until_idle()
    # Long idle period; the token's virtual position keeps rotating.
    second = _request(sim, ring, 0, at=first[0][1] + 100.0)
    sim.run_until_idle()
    wait = second[0][1] - (first[0][1] + 100.0)
    assert 0 <= wait <= ring.cycle_ms + 0.2


def test_distance_is_directional():
    _, ring = _ring()
    assert ring.distance_ms(0, 1) == pytest.approx(0.11)
    assert ring.distance_ms(1, 0) == pytest.approx(12 * 0.11)
    assert ring.distance_ms(4, 4) == 0.0


def test_single_daemon_ring():
    sim, ring = _ring(machines=lan_testbed().machines[:1])
    got = _request(sim, ring, 0, at=5.0)
    sim.run_until_idle()
    ((seq, t),) = got
    assert seq == 1
    assert t >= 5.0


def test_request_validation():
    sim, ring = _ring()
    with pytest.raises(ValueError):
        ring.request(0, 0, lambda a: None)
    with pytest.raises(IndexError):
        ring.request(99, 1, lambda a: None)


def test_ring_without_simulator_rejects_requests():
    topo = lan_testbed()
    ring = TokenRing(topo, topo.machines)
    with pytest.raises(RuntimeError):
        ring.request(0, 1, lambda a: None)


def test_empty_ring_rejected():
    with pytest.raises(ValueError):
        TokenRing(lan_testbed(), [], Simulator())


def test_average_token_wait_about_half_cycle():
    """Statistical: arrivals at random phases average ~cycle/2 of waiting."""
    sim, ring = _ring()
    samples = []
    t = 10.0
    for i in range(60):
        t += 7.919  # irrational-ish spacing to sample phases
        collected = _request(sim, ring, 3, at=t)
        samples.append((t, collected))
    sim.run_until_idle()
    waits = [col[0][1] - t0 for t0, col in samples]
    mean = sum(waits) / len(waits)
    assert 0.2 * ring.cycle_ms < mean < 0.9 * ring.cycle_ms


def test_flow_control_window_spreads_bursts_over_rotations():
    """Totem-style flow control: one daemon may sequence at most
    ``token_window`` messages per visit; excess waits a full rotation."""
    from repro.gcs.topology import GcsParams

    sim = Simulator()
    topo = lan_testbed(GcsParams(token_window=2))
    ring = TokenRing(topo, topo.machines, sim)
    batches = []
    for _ in range(2):
        batches.append(_request(sim, ring, 0, count=2))
    extra = _request(sim, ring, 0, count=1)
    sim.run_until_idle()
    first_visit_end = batches[0][-1][1]
    # The first two requests (4 messages > window 2) already split, and
    # the fifth message lands even later.
    assert batches[1][0][1] - first_visit_end > ring.cycle_ms / 2
    assert extra[0][1] >= batches[1][-1][1]


def test_oversized_single_burst_not_starved():
    """A single request larger than the window is still serviced whole."""
    from repro.gcs.topology import GcsParams

    sim = Simulator()
    topo = lan_testbed(GcsParams(token_window=2))
    ring = TokenRing(topo, topo.machines, sim)
    got = _request(sim, ring, 0, count=5)
    sim.run_until_idle()
    assert [s for s, _ in got] == [1, 2, 3, 4, 5]
