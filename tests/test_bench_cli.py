"""Tests for the benchmark CLI (`python -m repro.bench`)."""

import json
import os

import pytest

from repro.bench.cli import FIGURES, build_parser, build_subcommand_parser, main
from repro.gcs.topology import TESTBEDS
from repro.obs import JSONL_SCHEMA_VERSION, validate_chrome_trace


def test_table_mode(capsys):
    assert main(["--table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "GDH" in out and "TGDH" in out


def test_figure_mode_small_run(capsys, tmp_path):
    code = main([
        "--figure", "14",
        "--sizes", "3",
        "--repeats", "1",
        "--protocols", "STR", "CKD",
        "--csv", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 14" in out
    csvs = [f for f in os.listdir(tmp_path) if f.endswith(".csv")]
    assert len(csvs) == 2  # join + leave
    content = open(tmp_path / csvs[0]).read()
    assert content.startswith("group_size,CKD,STR,membership")


def test_requires_a_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--figure", "99"])


def test_trace_subcommand_emits_valid_chrome_trace(capsys, tmp_path):
    out_path = str(tmp_path / "trace.json")
    jsonl_path = str(tmp_path / "events.jsonl")
    code = main([
        "trace", "--protocol", "TGDH", "--size", "4", "--event", "join",
        "-o", out_path, "--jsonl", jsonl_path,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace events" in out and "Perfetto" in out
    trace = json.load(open(out_path))
    validate_chrome_trace(trace)
    phases = {e["ph"] for e in trace["traceEvents"]}
    assert "X" in phases and "M" in phases
    assert all(
        "ts" in e and "pid" in e for e in trace["traceEvents"]
    )
    assert os.path.exists(jsonl_path)
    with open(jsonl_path) as handle:
        header = json.loads(handle.readline())
        second = json.loads(handle.readline())
    assert header["schema"]["version"] == JSONL_SCHEMA_VERSION
    assert "category" in second and "span_id" in second


def test_report_subcommand_prints_reconciled_phases(capsys):
    code = main([
        "report", "--protocol", "STR", "--size", "4", "--event", "leave",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "membship" in out and "comms" in out and "comput" in out
    assert "NO" not in out  # every epoch reconciles
    assert "worst |phases - timeline|" in out


def test_critpath_subcommand_prints_exact_chains(capsys):
    code = main([
        "critpath", "--protocol", "GDH", "--size", "4", "--event", "leave",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Critical paths:" in out
    assert "critical member" in out
    assert "(exact," in out and "INEXACT" not in out
    assert "truncated" not in out
    assert "Rekey latency percentiles" in out
    assert "member.rekey_ms" in out and "p99" in out


def test_report_critical_path_flag_appends_chains(capsys):
    code = main([
        "report", "--protocol", "TGDH", "--size", "4", "--event", "join",
        "--critical-path",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "worst |phases - timeline|" in out  # the base report survives
    assert "critical member" in out and "(exact," in out


def test_scale_observe_flag_prints_percentiles(capsys, tmp_path):
    code = main([
        "scale", "--sizes", "4", "--protocols", "TGDH", "--observe",
        "--jobs", "1", "--no-cache", "-o", str(tmp_path / "scale.json"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Rekey latency percentiles" in out
    assert "member.rekey_ms{group=secure-group,protocol=TGDH}" in out


def test_subcommand_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["trace", "--protocol", "NOPE"])


class TestTransportFlag:
    """`--transport` selects the substrate; incompatible combinations are
    rejected up front with an explanation, not a deep stack trace."""

    def test_default_transport_is_sim(self):
        args = build_subcommand_parser().parse_args(["scale", "--sizes", "4"])
        assert args.transport == "sim"

    def test_live_defaults_to_asyncio_and_live_json(self):
        args = build_subcommand_parser().parse_args(
            ["live", "--protocol", "tgdh"]
        )
        assert args.transport == "asyncio"
        assert args.protocol == "TGDH"
        assert args.out == "BENCH_live.json"

    def test_sim_only_subcommand_rejects_asyncio(self, capsys):
        code = main(["scale", "--sizes", "4", "--transport", "asyncio"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "virtual time" in err

    def test_live_rejects_sim_transport(self, capsys):
        code = main(["live", "--transport", "sim"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "asyncio" in err

    def test_live_rejects_trace_log(self, capsys):
        code = main(["live", "--trace", "events.jsonl"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "simulated event log" in err

    def test_live_parser_accepts_size_and_daemon_mode(self):
        args = build_subcommand_parser().parse_args(
            ["live", "--protocol", "bd", "-n", "6", "--daemon", "inline"]
        )
        assert args.protocol == "BD"
        assert args.size == 6
        assert args.daemon == "inline"

    def test_live_rejects_unknown_daemon_mode(self):
        with pytest.raises(SystemExit):
            build_subcommand_parser().parse_args(["live", "--daemon", "nope"])


def test_every_registered_figure_is_well_formed():
    for panels in FIGURES.values():
        for title, topology, event, dh_group in panels:
            assert event in ("join", "leave")
            assert dh_group.startswith("dh-")
            # Topologies are registry names so figure cells stay
            # JSON-ready (picklable, cacheable) for the parallel pool.
            assert topology in TESTBEDS
