"""Tests for the benchmark CLI (`python -m repro.bench`)."""

import os

import pytest

from repro.bench.cli import FIGURES, build_parser, main


def test_table_mode(capsys):
    assert main(["--table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "GDH" in out and "TGDH" in out


def test_figure_mode_small_run(capsys, tmp_path):
    code = main([
        "--figure", "14",
        "--sizes", "3",
        "--repeats", "1",
        "--protocols", "STR", "CKD",
        "--csv", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 14" in out
    csvs = [f for f in os.listdir(tmp_path) if f.endswith(".csv")]
    assert len(csvs) == 2  # join + leave
    content = open(tmp_path / csvs[0]).read()
    assert content.startswith("group_size,CKD,STR,membership")


def test_requires_a_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--figure", "99"])


def test_every_registered_figure_is_well_formed():
    for panels in FIGURES.values():
        for title, testbed, event, dh_group in panels:
            assert event in ("join", "leave")
            assert dh_group.startswith("dh-")
            assert callable(testbed)
