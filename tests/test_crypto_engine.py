"""The crypto engine abstraction: real vs symbolic, and fixed-base tables.

The symbolic engine represents group elements by their discrete logs, so
every algebraic identity the protocols rely on holds exactly while no
bignum arithmetic runs; the recorded-operation wrappers are shared with
the real engine, which is what makes the charged ledgers identical.
"""

import pytest

from repro.crypto.dh import DiffieHellman
from repro.crypto.engine import (
    REAL_ENGINE,
    SYMBOLIC_ENGINE,
    RealEngine,
    SymbolicEngine,
    get_engine,
)
from repro.crypto.fixedbase import FixedBaseTable
from repro.crypto.groups import GROUP_512, GROUP_TEST
from repro.crypto.ledger import OperationLedger
from repro.crypto.rng import DeterministicRandom


# -- fixed-base precomputation ------------------------------------------------


@pytest.mark.parametrize("window", [1, 3, 5, 6, 8])
def test_fixed_base_table_matches_builtin_pow(window):
    group = GROUP_512
    table = FixedBaseTable(group.p, group.g, group.q.bit_length(), window=window)
    rng = DeterministicRandom(7)
    for _ in range(20):
        e = rng.randrange(0, group.q)
        assert table.pow(e) == pow(group.g, e, group.p)


def test_fixed_base_table_edge_exponents():
    group = GROUP_TEST
    table = FixedBaseTable(group.p, group.g, group.q.bit_length(), window=4)
    for e in (0, 1, 2, group.q - 1, group.q, group.q + 1):
        assert table.pow(e) == pow(group.g, e, group.p)


def test_fixed_base_table_falls_back_outside_its_range():
    group = GROUP_TEST
    table = FixedBaseTable(group.p, group.g, group.q.bit_length(), window=4)
    oversized = 1 << (group.q.bit_length() + 13)
    assert table.pow(oversized) == pow(group.g, oversized, group.p)
    assert table.pow(-3) == pow(group.g, -3, group.p)


def test_fixed_base_table_single_window():
    # max_bits <= window collapses the table to a single row: every
    # in-range exponent is one table lookup, no assembly loop.
    group = GROUP_TEST
    max_bits = 4
    table = FixedBaseTable(group.p, group.g, max_bits, window=8)
    assert table.windows == 1
    for e in range((1 << max_bits) + 1):  # the last one falls back
        assert table.pow(e) == pow(group.g, e, group.p)


def test_fixed_base_table_boundary_bit_lengths():
    group = GROUP_TEST
    max_bits = group.q.bit_length()
    table = FixedBaseTable(group.p, group.g, max_bits, window=4)
    at_limit = (1 << max_bits) - 1  # bit_length == max_bits: table path
    beyond = 1 << max_bits  # bit_length == max_bits + 1: fallback path
    assert table.pow(at_limit) == pow(group.g, at_limit, group.p)
    assert table.pow(beyond) == pow(group.g, beyond, group.p)


def test_fixed_base_table_rejects_bad_parameters():
    group = GROUP_TEST
    with pytest.raises(ValueError):
        FixedBaseTable(group.p, group.g, group.q.bit_length(), window=0)
    with pytest.raises(ValueError):
        FixedBaseTable(group.p, group.g, 0)


def test_real_engine_precompute_changes_nothing_numerically():
    ledger_a, ledger_b = OperationLedger(), OperationLedger()
    fast = RealEngine(precompute=True).context(GROUP_512, ledger_a)
    plain = RealEngine(precompute=False).context(GROUP_512, ledger_b)
    rng = DeterministicRandom(3)
    for _ in range(5):
        e = rng.randrange(0, GROUP_512.q)
        assert fast.exp_g(e) == plain.exp_g(e)
    assert ledger_a.snapshot() == ledger_b.snapshot()


# -- engine dispatch ----------------------------------------------------------


def test_get_engine_dispatch():
    assert get_engine(None) is REAL_ENGINE
    assert get_engine("real") is REAL_ENGINE
    assert get_engine("symbolic") is SYMBOLIC_ENGINE
    custom = SymbolicEngine()
    assert get_engine(custom) is custom
    with pytest.raises(ValueError):
        get_engine("homomorphic")


def test_engine_names():
    assert REAL_ENGINE.name == "real"
    assert SYMBOLIC_ENGINE.name == "symbolic"


# -- symbolic algebra ---------------------------------------------------------


def test_symbolic_identities_mirror_the_real_group():
    ctx = SYMBOLIC_ENGINE.context(GROUP_TEST, OperationLedger())
    rng = DeterministicRandom(11)
    a = ctx.random_exponent(rng)
    b = ctx.random_exponent(rng)
    ga, gb = ctx.exp_g(a), ctx.exp_g(b)
    # (g^a)^b == (g^b)^a == g^(ab)
    assert ctx.exp(ga, b) == ctx.exp(gb, a)
    assert ctx.exp(ga, b) == ctx.exp_g(ctx.exponent_product(a, b))
    # g^a * g^b == g^(a+b)
    assert ctx.mul(ga, gb) == ctx.exp_g((a + b) % GROUP_TEST.q)
    # element * inverse == identity (g^0)
    assert ctx.mul(ga, ctx.inv_element(ga)) == ctx.exp_g(0)
    # blinding then unblinding via the inverse exponent round-trips
    k = ctx.random_exponent(rng)
    assert ctx.exp(ctx.exp(ga, k), ctx.inv_exponent(k)) == ga
    assert ctx.contains(ga)
    assert not ctx.contains("not-an-element")


def test_symbolic_and_real_charge_identical_ledgers():
    counts = {}
    for which in ("real", "symbolic"):
        ledger = OperationLedger()
        ctx = get_engine(which).context(GROUP_TEST, ledger)
        rng = DeterministicRandom(5)
        a, b = ctx.random_exponent(rng), ctx.random_exponent(rng)
        ga = ctx.exp_g(a)
        ctx.exp(ga, b)
        ctx.mul(ga, ctx.exp_g(b))
        ctx.inv_element(ga)
        ctx.small_exp(ga, 3)
        counts[which] = ledger.snapshot()
    assert counts["real"] == counts["symbolic"]


def test_diffie_hellman_agrees_under_both_engines():
    for which in ("real", "symbolic"):
        ctx_a = get_engine(which).context(GROUP_TEST, OperationLedger())
        ctx_b = get_engine(which).context(GROUP_TEST, OperationLedger())
        alice = DiffieHellman(ctx_a, DeterministicRandom(1))
        bob = DiffieHellman(ctx_b, DeterministicRandom(2))
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
