"""Tests for network partitions, merges and configuration changes."""


from repro.gcs import GcsWorld, ViewEvent, lan_testbed, wan_testbed


def _grouped_world(names, group="g", testbed=lan_testbed):
    world = GcsWorld(testbed())
    clients = world.spawn_clients(names)
    for client in clients:
        # Sequential joins fix the join-age order to the listing order.
        client.join(group)
        world.run_until_idle()
    return world, clients


class TestPartition:
    def test_each_component_sees_only_its_members(self):
        world, (a, b, c) = _grouped_world(["a", "b", "c"])
        world.partition([[0], [1, 2] + list(range(3, 13))])
        world.run_until_idle()
        assert a.views[-1].members == ("a",)
        assert a.views[-1].event is ViewEvent.PARTITION
        assert b.views[-1].members == ("b", "c")
        assert b.views[-1].left == ("a",)
        assert c.views[-1].members == ("b", "c")

    def test_unaffected_group_gets_no_view(self):
        world, (a, b) = _grouped_world(["a", "b"])  # machines 0 and 1
        counts_before = (len(a.views), len(b.views))
        world.partition([[0, 1], list(range(2, 13))])
        world.run_until_idle()
        assert (len(a.views), len(b.views)) == counts_before

    def test_messages_do_not_cross_partition(self):
        world, (a, b) = _grouped_world(["a", "b"])
        world.partition([[0], list(range(1, 13))])
        world.run_until_idle()
        a.multicast("g", "lonely")
        world.run_until_idle()
        assert all(m.payload != "lonely" for m in b.received)
        # a still delivers to itself within its singleton component
        assert any(m.payload == "lonely" for m in a.received)

    def test_multi_way_partition(self):
        world, clients = _grouped_world(["a", "b", "c"])
        world.partition([[0], [1], list(range(2, 13))])
        world.run_until_idle()
        for client in clients:
            assert len(client.views[-1].members) == 1

    def test_partition_views_consistent_within_component(self):
        world, clients = _grouped_world([f"m{i}" for i in range(10)])
        left_component = [0, 2, 4, 6, 8]
        right_component = [1, 3, 5, 7, 9, 10, 11, 12]
        world.partition([left_component, right_component])
        world.run_until_idle()
        evens = [c for i, c in enumerate(clients) if i % 2 == 0]
        odds = [c for i, c in enumerate(clients) if i % 2 == 1]
        for group_clients in (evens, odds):
            reference = group_clients[0].views[-1].members
            for client in group_clients:
                assert client.views[-1].members == reference


class TestMerge:
    def test_heal_merges_views(self):
        world, (a, b) = _grouped_world(["a", "b"])
        world.partition([[0], list(range(1, 13))])
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        assert a.views[-1].members == ("a", "b")
        assert a.views[-1].event is ViewEvent.MERGE
        # ``joined`` is canonical: the members outside the component of the
        # group's oldest member ("a"), identical at both sides.
        assert a.views[-1].joined == ("b",)
        assert b.views[-1].joined == ("b",)

    def test_merge_preserves_join_age_order(self):
        world, (a, b, c) = _grouped_world(["a", "b", "c"])
        world.partition([[0, 1], [2] + list(range(3, 13))])
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        # Original join order restored after merge.
        assert a.views[-1].members == ("a", "b", "c")

    def test_traffic_flows_after_merge(self):
        world, (a, b) = _grouped_world(["a", "b"])
        world.partition([[0], list(range(1, 13))])
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        a.multicast("g", "reunited")
        world.run_until_idle()
        assert any(m.payload == "reunited" for m in b.received)

    def test_total_order_holds_after_merge(self):
        world, clients = _grouped_world([f"m{i}" for i in range(6)])
        world.partition([[0, 1, 2], [3, 4, 5] + list(range(6, 13))])
        world.run_until_idle()
        world.heal()
        world.run_until_idle()
        for client in clients:
            client.multicast("g", f"from-{client.name}")
        world.run_until_idle()
        reference = [m.payload for m in clients[0].received if str(m.payload).startswith("from-")]
        assert len(reference) == 6
        for client in clients[1:]:
            got = [m.payload for m in client.received if str(m.payload).startswith("from-")]
            assert got == reference

    def test_wan_site_partition(self):
        """Partition along the paper's WAN site boundary (ICU cut off)."""
        world, clients = _grouped_world(
            [f"m{i}" for i in range(13)], testbed=wan_testbed
        )
        icu_index = 12
        world.partition([[icu_index], [i for i in range(13) if i != icu_index]])
        world.run_until_idle()
        icu_client = clients[icu_index]
        assert icu_client.views[-1].members == (icu_client.name,)
        mainland = clients[0]
        assert len(mainland.views[-1].members) == 12


class TestViewSynchrony:
    def test_in_flight_messages_flushed_before_partition_view(self):
        """A surviving member's in-flight message is delivered to the
        surviving component before the new view (flush)."""
        world, (a, b, c) = _grouped_world(["a", "b", "c"])
        order = []
        c.on_message = lambda _c, m: order.append(("msg", m.payload))
        c.on_view = lambda _c, v: order.append(("view", v.event.value))
        b.multicast("g", "pre-partition")  # b survives with c
        # Detection fires after the message is sequenced (the token wait is
        # ~1 cycle) but before its delivery settles everywhere.
        world.partition([[0], list(range(1, 13))], detection_delay_ms=2.5)
        world.run_until_idle()
        kinds = [k for k, _ in order]
        assert ("msg", "pre-partition") in order
        assert kinds.index("msg") < kinds.index("view")

    def test_cut_off_senders_message_not_delivered_to_survivors(self):
        """A message whose origin daemon is partitioned away before
        dissemination never reaches the other component."""
        world, (a, b, c) = _grouped_world(["a", "b", "c"])
        a.multicast("g", "doomed")
        world.partition([[0], list(range(1, 13))], detection_delay_ms=0.2)
        world.run_until_idle()
        assert all(m.payload != "doomed" for m in b.received)
        assert all(m.payload != "doomed" for m in c.received)

    def test_surviving_members_deliver_same_flush_set(self):
        world, clients = _grouped_world([f"m{i}" for i in range(8)])
        for client in clients[:4]:
            client.multicast("g", f"inflight-{client.name}")
        world.partition(
            [list(range(0, 7)), [7] + list(range(8, 13))], detection_delay_ms=0.3
        )
        world.run_until_idle()
        survivors = clients[:7]
        reference = [m.payload for m in survivors[0].received]
        for client in survivors[1:]:
            assert [m.payload for m in client.received] == reference

    def test_config_change_latency_scales_with_detection(self):
        world, (a, b) = _grouped_world(["a", "b"])
        t0 = world.now
        world.partition([[0], list(range(1, 13))], detection_delay_ms=50.0)
        world.run_until_idle()
        assert world.now - t0 >= 50.0
