"""Transport conformance: the same contract on both substrates.

Every scenario runs twice — once on the simulated world, once on the
asyncio backend with an in-process daemon over real loopback sockets —
asserting the interface guarantees of :mod:`repro.transport.base`:
join/leave view delivery, join-age member ordering, Agreed total order
(including under concurrent joins), and FIFO unicast targeting.

Channels record a single merged event log per client (views and
messages interleaved in delivery order), so cross-substrate assertions
compare the one thing the contract promises: what each member observed,
in order.
"""

import asyncio

import pytest

from repro.gcs import GcsWorld, lan_testbed
from repro.net.daemon import NetDaemon
from repro.net.client import NetClient

GROUP = "conformance"


class SimSubstrate:
    """The simulated world behind the async harness interface."""

    kind = "sim"

    async def start(self):
        self.world = GcsWorld(lan_testbed())
        return self

    async def channel(self, name, machine_index=0):
        client = self.world.channel(name, machine_index)
        _attach_log(client)
        return client

    async def settle(self):
        self.world.run_until_idle()

    async def stop(self):
        pass


class LiveSubstrate:
    """An inline NetDaemon plus NetClient channels over loopback TCP."""

    kind = "asyncio"

    async def start(self):
        self.daemon = NetDaemon()
        self.port = await self.daemon.start()
        self.clients = []
        return self

    async def channel(self, name, machine_index=0):
        client = NetClient(name, port=self.port, heartbeat_interval_s=0.2)
        await client.connect()
        _attach_log(client)
        self.clients.append(client)
        return client

    async def settle(self):
        """Quiescence: the observed event count is stable across polls."""
        stable = 0
        last = -1
        for _ in range(400):  # bounded: 400 * 10ms = 4s hard cap
            await asyncio.sleep(0.01)
            seen = sum(len(c.log) for c in self.clients)
            if seen == last:
                stable += 1
                if stable >= 3:
                    return
            else:
                stable = 0
                last = seen
        raise TimeoutError("live substrate did not quiesce within 4s")

    async def stop(self):
        for client in self.clients:
            await client.aclose()
        await self.daemon.stop()


def _attach_log(client):
    """One merged, ordered log of everything the channel delivered."""
    client.log = []
    client.on_view = lambda c, view: c.log.append(
        ("view", view.event.value, view.members)
    )
    client.on_message = lambda c, msg: c.log.append(
        ("msg", msg.sender, msg.payload)
    )


SUBSTRATES = [SimSubstrate, LiveSubstrate]


def run_scenario(substrate_cls, scenario):
    async def driver():
        substrate = await substrate_cls().start()
        try:
            await scenario(substrate)
        finally:
            await substrate.stop()

    asyncio.run(driver())


@pytest.mark.parametrize("substrate_cls", SUBSTRATES, ids=lambda s: s.kind)
class TestMembership:
    def test_join_delivers_view_to_all_members(self, substrate_cls):
        async def scenario(s):
            alice = await s.channel("alice")
            bob = await s.channel("bob", 1)
            alice.join(GROUP)
            await s.settle()
            bob.join(GROUP)
            await s.settle()
            assert alice.views[-1].members == ("alice", "bob")
            assert bob.views[-1].members == ("alice", "bob")
            assert alice.views[-1].joined == ("bob",)

        run_scenario(substrate_cls, scenario)

    def test_members_ordered_by_join_age(self, substrate_cls):
        async def scenario(s):
            names = ["c3", "c1", "c2"]
            clients = []
            for index, name in enumerate(names):
                client = await s.channel(name, index)
                client.join(GROUP)
                await s.settle()
                clients.append(client)
            final = clients[0].views[-1]
            assert final.members == ("c3", "c1", "c2")

        run_scenario(substrate_cls, scenario)

    def test_leave_delivers_view_without_leaver(self, substrate_cls):
        async def scenario(s):
            clients = []
            for index, name in enumerate(["alice", "bob", "carol"]):
                client = await s.channel(name, index)
                client.join(GROUP)
                await s.settle()
                clients.append(client)
            alice, bob, carol = clients
            bob.leave(GROUP)
            await s.settle()
            assert alice.views[-1].members == ("alice", "carol")
            assert alice.views[-1].left == ("bob",)
            # The leaver still learns it is out.
            assert bob.views[-1].members == ("alice", "carol")

        run_scenario(substrate_cls, scenario)

    def test_disconnect_acts_as_leave(self, substrate_cls):
        async def scenario(s):
            alice = await s.channel("alice")
            bob = await s.channel("bob", 1)
            for client in (alice, bob):
                client.join(GROUP)
                await s.settle()
            bob.disconnect()
            await s.settle()
            assert alice.views[-1].members == ("alice",)
            with pytest.raises(RuntimeError):
                bob.multicast(GROUP, "zombie")

        run_scenario(substrate_cls, scenario)


@pytest.mark.parametrize("substrate_cls", SUBSTRATES, ids=lambda s: s.kind)
class TestAgreedOrder:
    def test_all_members_deliver_same_order(self, substrate_cls):
        async def scenario(s):
            clients = []
            for index in range(4):
                client = await s.channel(f"m{index}", index)
                client.join(GROUP)
                await s.settle()
                clients.append(client)
            for index, client in enumerate(clients):
                client.multicast(GROUP, f"msg-{index}")
            await s.settle()
            reference = [
                entry for entry in clients[0].log if entry[0] == "msg"
            ]
            assert len(reference) == 4
            for client in clients[1:]:
                mine = [entry for entry in client.log if entry[0] == "msg"]
                assert mine == reference

        run_scenario(substrate_cls, scenario)

    def test_agreed_order_under_concurrent_joins(self, substrate_cls):
        async def scenario(s):
            base = []
            for index in range(3):
                client = await s.channel(f"b{index}", index)
                client.join(GROUP)
                await s.settle()
                base.append(client)
            # Compare only what happens from here on: the base members
            # joined at different times, so their log *prefixes* differ.
            for client in base:
                client.log.clear()
            # Two joins and interleaved data race into the total order.
            j1 = await s.channel("j1", 3)
            j2 = await s.channel("j2", 4)
            base[0].multicast(GROUP, "before")
            j1.join(GROUP)
            base[1].multicast(GROUP, "between")
            j2.join(GROUP)
            base[2].multicast(GROUP, "after")
            await s.settle()
            # All base members observe the identical interleaving of
            # views and messages (the Agreed guarantee).
            reference = base[0].log
            assert len([e for e in reference if e[0] == "msg"]) == 3
            for client in base[1:]:
                assert client.log == reference

        run_scenario(substrate_cls, scenario)

    def test_unicast_reaches_only_the_target(self, substrate_cls):
        async def scenario(s):
            clients = []
            for index, name in enumerate(["alice", "bob", "carol"]):
                client = await s.channel(name, index)
                client.join(GROUP)
                await s.settle()
                clients.append(client)
            alice, bob, carol = clients
            alice.unicast(GROUP, "bob", "psst")
            await s.settle()
            assert ("msg", "alice", "psst") in bob.log
            assert all(entry[0] != "msg" for entry in alice.log)
            assert all(entry[0] != "msg" for entry in carol.log)

        run_scenario(substrate_cls, scenario)

    def test_non_members_do_not_receive(self, substrate_cls):
        """Membership gates receiving, not sending (Spread semantics):
        an outsider's multicast reaches the group, but an outsider never
        receives group traffic."""

        async def scenario(s):
            alice = await s.channel("alice")
            outsider = await s.channel("eve", 1)
            alice.join(GROUP)
            await s.settle()
            outsider.multicast(GROUP, "from-outside")
            alice.multicast(GROUP, "private")
            await s.settle()
            assert ("msg", "eve", "from-outside") in alice.log
            assert all(entry[0] != "msg" for entry in outsider.log)

        run_scenario(substrate_cls, scenario)
