"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plot import GLYPHS, render_plot
from repro.bench.series import FigureSeries


def _series():
    return FigureSeries(
        name="unit", event="join", dh_group="dh-512", topology="lan",
        sizes=[2, 10, 20],
        curves={"BD": [10.0, 40.0, 100.0], "TGDH": [20.0, 25.0, 30.0]},
        membership=[1.0, 1.0, 1.0],
    )


def test_plot_contains_axes_glyphs_and_legend():
    text = render_plot(_series())
    assert "B=BD" in text and "T=TGDH" in text
    assert "+" + "-" * 64 in text
    assert "100 |" in text  # y-axis max label
    assert text.count("B") > 10  # interpolated curve, not lone points


def test_rising_curve_ends_higher_than_flat_curve():
    lines = render_plot(_series()).splitlines()
    rows_with_b = [i for i, line in enumerate(lines) if "B" in line and "|" in line]
    rows_with_t = [
        i for i, line in enumerate(lines)
        if "T" in line and "|" in line and "TGDH" not in line
    ]
    # BD reaches a higher (smaller row index) point than TGDH ever does.
    assert min(rows_with_b) < min(rows_with_t)


def test_title_override():
    assert render_plot(_series(), title="XYZ").splitlines()[0] == "XYZ"


def test_overlap_marker():
    series = FigureSeries(
        name="u", event="join", dh_group="dh-512", topology="lan",
        sizes=[2, 10],
        curves={"BD": [10.0, 10.0], "STR": [10.0, 10.0]},
        membership=[0, 0],
    )
    assert "*" in render_plot(series)


def test_size_validation():
    with pytest.raises(ValueError):
        render_plot(_series(), width=5)
    tiny = FigureSeries(
        name="u", event="join", dh_group="dh-512", topology="lan",
        sizes=[5], curves={"BD": [1.0]}, membership=[0],
    )
    with pytest.raises(ValueError):
        render_plot(tiny)


def test_every_protocol_has_a_stable_glyph():
    assert set(GLYPHS) == {"BD", "CKD", "GDH", "STR", "TGDH"}
    assert len(set(GLYPHS.values())) == 5


def test_cli_plot_flag(capsys):
    from repro.bench.cli import main

    main([
        "--figure", "14", "--sizes", "2", "4", "--repeats", "1",
        "--protocols", "STR", "--plot",
    ])
    out = capsys.readouterr().out
    assert "S=STR" in out
