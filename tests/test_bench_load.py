"""Tests for the sustained-load benchmark (`repro.bench load`)."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.load import (
    load_cells_grid,
    load_payload,
    render_load_table,
    run_load,
    run_load_cell,
    storm_faults,
)
from repro.bench.pool import canonical_json, cell_key
from repro.obs.metrics import MetricsRegistry
from repro.workload import WorkloadResult

SMALL = dict(
    groups=2, group_size=3, rate_hz=10.0, duration_ms=400.0, seed=7
)


def _small_cells(protocols=("TGDH",), arrivals=("poisson",), **overrides):
    return load_cells_grid(protocols, arrivals=arrivals, **{**SMALL, **overrides})


def test_runner_returns_json_ready_result():
    cell = _small_cells()[0]
    metrics = MetricsRegistry(enabled=True)
    result = run_load_cell(cell.spec, metrics)
    json.dumps(result)  # JSON-ready: crosses process/cache boundaries
    parsed = WorkloadResult.from_dict(result["cell"])
    assert parsed.converged
    assert parsed.protocol == "TGDH" and parsed.arrival == "poisson"
    # The merged sustained-phase histogram lands in the registry, which
    # is how the pool aggregates percentiles across worker shards.
    names = {h.name for h in metrics.log_histograms()}
    assert "load.rekey_ms" in names


def test_grid_shares_one_seed_and_orders_protocol_major():
    cells = _small_cells(protocols=("TGDH", "BD"), arrivals=("poisson", "flash"))
    labels = [
        (c.spec["workload"]["protocol"], c.spec["workload"]["arrival"])
        for c in cells
    ]
    assert labels == [
        ("TGDH", "poisson"), ("TGDH", "flash"),
        ("BD", "poisson"), ("BD", "flash"),
    ]
    assert {c.spec["workload"]["seed"] for c in cells} == {7}


def test_cell_key_tracks_every_spec_field():
    base = _small_cells()[0]
    fingerprint = "f" * 64
    baseline = cell_key(base, fingerprint)
    for overrides in ({"seed": 8}, {"rate_hz": 20.0}, {"groups": 3}):
        changed = _small_cells(**{**overrides})[0]
        assert cell_key(changed, fingerprint) != baseline
    # ...and an identical grid keys identically (cache hits across runs).
    assert cell_key(_small_cells()[0], fingerprint) == baseline


def test_storm_faults_cover_partition_and_heal():
    faults = storm_faults(1000.0)
    actions = [f["action"] for f in faults]
    assert actions == ["partition", "heal"]
    assert faults[0]["at_ms"] == 750.0
    machines = sorted(m for part in faults[0]["components"] for m in part)
    assert machines == list(range(13))


def test_run_load_matches_any_jobs_count():
    kwargs = dict(protocols=("TGDH", "BD"), arrivals=("poisson",), **SMALL)
    sequential = run_load(jobs=1, **kwargs)
    parallel = run_load(jobs=2, **kwargs)
    as_dicts = [r.to_dict() for r in sequential]
    assert as_dicts == [r.to_dict() for r in parallel]
    assert canonical_json(load_payload(sequential)) == canonical_json(
        load_payload(parallel)
    )
    assert all(r.converged for r in sequential)


def test_render_load_table_lists_every_cell():
    results = run_load(protocols=("TGDH",), arrivals=("poisson",), **SMALL)
    table = render_load_table(results)
    assert "p50 ms" in table and "epochs/s" in table
    assert "TGDH" in table and "poisson" in table


def test_cli_writes_byte_identical_artifact(tmp_path, capsys):
    args = [
        "load", "--protocols", "TGDH", "--arrivals", "poisson",
        "--groups", "2", "--group-size", "3", "--rate", "10",
        "--duration-ms", "400", "--seed", "7", "--no-storm", "--no-cache",
    ]
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert main(args + ["-o", str(first)]) == 0
    assert main(args + ["-o", str(second), "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "sustained churn" in out
    assert first.read_bytes() == second.read_bytes()
    payload = json.loads(first.read_text())
    assert payload["benchmark"] == "load"
    assert payload["seed"] == 7
    cells = payload["cells"]
    assert len(cells) == 1 and cells[0]["converged"] is True


def test_cli_replay_rejects_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a list"}')
    code = main([
        "load", "--replay", str(bad), "--protocols", "TGDH",
        "-o", str(tmp_path / "out.json"),
    ])
    assert code == 1
    assert "expected a JSON list" in capsys.readouterr().err


def test_cli_replay_rejects_unknown_action(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('[{"at_ms": 1.0, "group": 0, "action": "explode"}]')
    code = main([
        "load", "--replay", str(bad), "--protocols", "TGDH",
        "-o", str(tmp_path / "out.json"),
    ])
    assert code == 1
    assert "unknown churn action" in capsys.readouterr().err


def test_cli_rejects_unknown_protocol(capsys):
    with pytest.raises(SystemExit):
        main(["load", "--protocols", "NOPE"])
    assert "invalid choice" in capsys.readouterr().err


def test_cli_replay_runs_the_trace(tmp_path, capsys):
    trace = tmp_path / "churn.json"
    trace.write_text(json.dumps([
        {"at_ms": 50.0, "group": 0, "action": "join"},
        {"at_ms": 150.0, "group": 1, "action": "leave"},
    ]))
    out = tmp_path / "out.json"
    code = main([
        "load", "--replay", str(trace), "--protocols", "TGDH",
        "--groups", "2", "--group-size", "3", "--duration-ms", "300",
        "--no-storm", "--no-cache", "-o", str(out),
    ])
    assert code == 0
    cell = json.loads(out.read_text())["cells"][0]
    assert cell["arrival"] == "trace"
    assert cell["events"] == 2 and cell["converged"] is True


def test_cells_cache_and_invalidate(tmp_path):
    kwargs = dict(
        protocols=("TGDH",), arrivals=("poisson",),
        cache_dir=str(tmp_path), use_cache=True, **SMALL,
    )
    metrics = MetricsRegistry(enabled=True)
    run_load(metrics=metrics, **kwargs)
    assert metrics.counter_total("bench.pool.cache_misses") == 1
    again = MetricsRegistry(enabled=True)
    run_load(metrics=again, **kwargs)
    assert again.counter_total("bench.pool.cache_hits") == 1
    assert again.counter_total("bench.pool.cells_executed") == 0
