"""Tests for the virtual-time cost model."""

import pytest

from repro.crypto.costmodel import (
    expensive_signatures,
    free_crypto,
    pentium3_666,
)
from repro.crypto.ledger import OperationLedger


@pytest.fixture()
def model():
    return pentium3_666()


def test_full_exponentiation_costs(model):
    ledger = OperationLedger()
    ledger.record_exponentiation(512)
    assert model.time_of(ledger.snapshot()) == pytest.approx(2.0)
    ledger.reset()
    ledger.record_exponentiation(1024, 2)
    assert model.time_of(ledger.snapshot()) == pytest.approx(14.4)


def test_signature_costs(model):
    ledger = OperationLedger()
    ledger.record_signature()
    ledger.record_verification(10)
    assert model.time_of(ledger.snapshot()) == pytest.approx(9.3 + 12.0)


def test_small_exponent_hidden_cost(model):
    """BD's hidden cost: n-1 small-exponent exponentiations are priced as
    multiplications, each worth exp/240."""
    ledger = OperationLedger()
    ledger.record_small_exponentiation(1024, 0b101)  # 3 mults
    expected = 3 * model.exp_cost(1024) / 240.0
    assert model.time_of(ledger.snapshot()) == pytest.approx(expected)


def test_unlisted_modulus_scales_quadratically(model):
    assert model.exp_cost(256) == pytest.approx(model.exp_cost(512) / 4)
    # Tiny test group moduli cost almost nothing.
    assert model.exp_cost(10) < 0.01


def test_free_crypto_model_is_zero():
    ledger = OperationLedger()
    ledger.record_exponentiation(512, 100)
    ledger.record_signature(10)
    ledger.record_verification(10)
    assert free_crypto().time_of(ledger.snapshot()) == 0.0


def test_dsa_like_model_makes_verification_expensive():
    assert expensive_signatures().verify_ms > pentium3_666().verify_ms * 5


def test_paper_bd_hidden_cost_magnitude(model):
    """§5: BD step 3 costs ~373 1024-bit modular multiplications for n≈50
    (square-and-multiply with exponents 1..n-1)."""
    ledger = OperationLedger()
    for exponent in range(1, 50):
        ledger.record_small_exponentiation(1024, exponent)
    mults = ledger.snapshot().small_mult_count(1024)
    # Same order of magnitude as the paper's figure (exact value depends on
    # the group size and the square-and-multiply accounting convention).
    assert 200 <= mults <= 450
