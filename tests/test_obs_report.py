"""Acceptance tests: span-based per-epoch attribution reconciles exactly.

The paper's §6 decomposes total rekey latency into membership,
communication and computation.  These tests assert the span-based report
reproduces ``RekeyTimeline`` totals to 1e-6 ms, and that observability is
passive — the timing numbers with it enabled are bit-identical to the
seed's (golden) values.
"""

import pytest

from repro.bench.harness import measure_event
from repro.core.framework import SecureSpreadFramework
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.obs import epoch_breakdown, render_report, timeline_breakdowns


def _observed_join(protocol, testbed, size=6):
    framework = SecureSpreadFramework(
        testbed(), default_protocol=protocol, observe=True
    )
    for i in range(size):
        member = framework.member(f"m{i}", i % len(framework.world.topology.machines))
        member.join()
        framework.run_until_idle()
    framework.mark_event()
    joiner = framework.member("x1", size % len(framework.world.topology.machines))
    joiner.join()
    framework.run_until_idle()
    return framework


@pytest.mark.parametrize("protocol", ["TGDH", "BD", "GDH", "STR", "CKD"])
def test_phases_sum_to_timeline_total_lan(protocol):
    framework = _observed_join(protocol, lan_testbed)
    record = framework.timeline.latest_complete()
    phases = epoch_breakdown(record, framework.obs.spans)
    assert phases.phase_sum() == pytest.approx(
        record.total_elapsed(), abs=1e-6
    )
    assert phases.membership_ms == pytest.approx(
        record.membership_elapsed(), abs=1e-9
    )
    assert phases.communication_ms >= 0
    assert phases.computation_ms >= 0
    assert phases.reconciles()


def test_phases_sum_to_timeline_total_wan():
    framework = _observed_join("TGDH", wan_testbed)
    record = framework.timeline.latest_complete()
    phases = epoch_breakdown(record, framework.obs.spans)
    assert phases.reconciles(tolerance=1e-6)
    # On the WAN, communication dominates computation (paper §6.2.2).
    assert phases.communication_ms > phases.computation_ms


def test_bd_is_computation_heavy_on_lan():
    """BD serializes many exponentiations; on a LAN the computation phase
    dominates communication (the effect behind the paper's Fig. 11)."""
    framework = _observed_join("BD", lan_testbed)
    record = framework.timeline.latest_complete()
    phases = epoch_breakdown(record, framework.obs.spans)
    assert phases.computation_ms > phases.communication_ms


def test_timeline_breakdowns_skips_unmarked_epochs():
    framework = _observed_join("TGDH", lan_testbed)
    breakdowns = timeline_breakdowns(framework.timeline, framework.obs.spans)
    # growth-phase epochs were never event-marked: only the measured join
    assert len(breakdowns) == 1
    assert breakdowns[0].reconciles()


def test_render_report_reconciles_and_names_phases():
    framework = _observed_join("TGDH", lan_testbed)
    text = render_report(framework.timeline, framework.obs.spans)
    assert "membship" in text and "comms" in text and "comput" in text
    assert " yes " in text or text.rstrip().endswith("ms")
    assert "NO" not in text
    assert "WARNING" not in text  # nothing dropped at this scale


def test_render_report_warns_loudly_about_dropped_spans():
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol="TGDH", observe=True, span_capacity=8
    )
    for i in range(3):
        member = framework.member(f"m{i}", i)
        member.join()
        framework.run_until_idle()
    assert framework.obs.spans.dropped > 0
    text = render_report(framework.timeline, framework.obs.spans)
    assert "!! WARNING" in text
    assert f"dropped {framework.obs.spans.dropped} span(s)" in text
    assert "capacity 8" in text


@pytest.mark.parametrize("event", ["join", "leave"])
def test_measure_event_breakdown_fields(event):
    measurement = measure_event(
        lan_testbed, "TGDH", 5, event, repeats=1, breakdown=True
    )
    assert measurement.communication_ms is not None
    assert measurement.computation_ms is not None
    phase_sum = (
        measurement.membership_ms
        + measurement.communication_ms
        + measurement.computation_ms
    )
    assert phase_sum == pytest.approx(measurement.total_ms, abs=1e-6)


def test_measure_event_without_breakdown_leaves_fields_none():
    measurement = measure_event(lan_testbed, "TGDH", 4, "join", repeats=1)
    assert measurement.communication_ms is None
    assert measurement.computation_ms is None


def test_observability_is_passive_bit_identical_timings():
    """Enabling the flight recorder must not move any measured time."""
    plain = measure_event(lan_testbed, "BD", 5, "join", repeats=1, seed=0)
    observed = measure_event(
        lan_testbed, "BD", 5, "join", repeats=1, seed=0, breakdown=True
    )
    assert observed.total_ms == plain.total_ms  # exact, not approx
    assert observed.membership_ms == plain.membership_ms


def test_ckd_weighted_leave_breakdown_reconciles():
    measurement = measure_event(
        lan_testbed, "CKD", 5, "leave", repeats=1, breakdown=True
    )
    phase_sum = (
        measurement.membership_ms
        + measurement.communication_ms
        + measurement.computation_ms
    )
    assert phase_sum == pytest.approx(measurement.total_ms, abs=1e-6)
