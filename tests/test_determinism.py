"""Determinism: DESIGN.md invariant 5 — same seed, identical results."""

import pytest

from repro.bench.harness import measure_event
from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_loopback_runs_are_reproducible(protocol):
    a = build_group(PROTOCOLS[protocol], 5, seed=3)
    b = build_group(PROTOCOLS[protocol], 5, seed=3)
    assert a.shared_key() == b.shared_key()
    assert a.join("x").key == b.join("x").key


def test_simulated_measurements_are_reproducible():
    first = measure_event(
        lan_testbed, "TGDH", 6, "join", dh_group="dh-test", repeats=1, seed=42
    )
    second = measure_event(
        lan_testbed, "TGDH", 6, "join", dh_group="dh-test", repeats=1, seed=42
    )
    assert first.total_ms == second.total_ms
    assert first.membership_ms == second.membership_ms


def test_different_seeds_change_key_material():
    fw1 = SecureSpreadFramework(lan_testbed(), dh_group="dh-test", seed=1)
    fw2 = SecureSpreadFramework(lan_testbed(), dh_group="dh-test", seed=2)
    keys = []
    for fw in (fw1, fw2):
        a = fw.member("a", 0)
        b = fw.member("b", 1)
        a.join()
        b.join()
        fw.run_until_idle()
        keys.append(a.key_bytes)
    assert keys[0] != keys[1]


def test_full_wan_simulation_is_bit_reproducible():
    def run():
        fw = SecureSpreadFramework(
            wan_testbed(), default_protocol="GDH", dh_group="dh-test", seed=9
        )
        members = fw.spawn_members(5)
        for member in members:
            member.join()
            fw.run_until_idle()
        members[2].leave()
        fw.run_until_idle()
        return (fw.now, members[0].key_bytes)

    assert run() == run()


def test_concurrent_groups_with_different_protocols():
    """Spread's design point: many collaboration sessions at once — five
    groups, five protocols, overlapping rekeys, no interference."""
    fw = SecureSpreadFramework(lan_testbed(), dh_group="dh-test")
    groups = {}
    for index, protocol in enumerate(sorted(PROTOCOLS)):
        group_name = f"grp-{protocol}"
        fw.set_group_protocol(group_name, protocol)
        groups[group_name] = [
            fw.member(f"{protocol}-{i}", (index * 2 + i) % 13, group_name)
            for i in range(3)
        ]
    # Interleave the joins so the agreements overlap in time.
    for i in range(3):
        for members in groups.values():
            members[i].join()
    fw.run_until_idle()
    keys = {}
    for group_name, members in groups.items():
        group_keys = {m.key_bytes for m in members}
        assert len(group_keys) == 1, f"{group_name} diverged"
        keys[group_name] = group_keys.pop()
    # Every group has a distinct key.
    assert len(set(keys.values())) == len(keys)
