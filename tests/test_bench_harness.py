"""Tests for the experiment harness (repro.bench)."""

import pytest

from repro.bench.harness import EventMeasurement, grow_group, measure_event
from repro.bench.report import render_series, series_to_csv
from repro.bench.series import FigureSeries, sweep_group_sizes
from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed


def _fast(**kwargs):
    defaults = dict(dh_group="dh-test", repeats=1)
    defaults.update(kwargs)
    return defaults


class TestMeasureEvent:
    def test_join_measurement(self):
        result = measure_event(lan_testbed, "STR", 4, "join", **_fast())
        assert isinstance(result, EventMeasurement)
        assert result.protocol == "STR"
        assert result.group_size == 4
        assert result.total_ms > result.membership_ms > 0
        assert result.key_agreement_ms == pytest.approx(
            result.total_ms - result.membership_ms
        )

    def test_leave_measurement(self):
        result = measure_event(lan_testbed, "TGDH", 5, "leave", **_fast())
        assert result.event == "leave"
        assert result.total_ms > 0

    def test_ckd_leave_includes_controller_weighting(self):
        result = measure_event(lan_testbed, "CKD", 6, "leave", **_fast())
        assert result.total_ms > 0

    def test_size_restored_between_repeats(self):
        result = measure_event(
            lan_testbed, "BD", 3, "join", dh_group="dh-test", repeats=3
        )
        assert result.samples == 3

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            measure_event(lan_testbed, "BD", 3, "banana", **_fast())

    def test_grow_group_distributes_members(self):
        framework = SecureSpreadFramework(
            lan_testbed(), default_protocol="BD", dh_group="dh-test"
        )
        members = grow_group(framework, 15)
        machines = {m.machine.name for m in members}
        assert len(members) == 15
        assert len(machines) == 13  # uniform distribution wraps around


class TestSweep:
    @pytest.fixture(scope="class")
    def series(self):
        return sweep_group_sizes(
            lan_testbed, ("BD", "STR"), "join", dh_group="dh-test",
            sizes=(3, 5), repeats=1, name="unit-sweep",
        )

    def test_series_structure(self, series):
        assert isinstance(series, FigureSeries)
        assert series.sizes == [3, 5]
        assert set(series.curves) == {"BD", "STR"}
        assert len(series.membership) == 2

    def test_accessors(self, series):
        assert series.at("BD", 3) == series.curves["BD"][0]
        assert series.membership_at(5) == series.membership[1]
        winner = series.winner(5)
        loser = series.loser(5)
        assert series.at(winner, 5) <= series.at(loser, 5)

    def test_render(self, series):
        text = render_series(series)
        assert "BD" in text and "STR" in text
        assert "   3" in text and "   5" in text

    def test_csv(self, series, tmp_path):
        path = str(tmp_path / "out.csv")
        series_to_csv(series, path)
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "group_size,BD,STR,membership"
        assert len(lines) == 3

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            sweep_group_sizes(
                lan_testbed, ("BD",), "banana", sizes=(3,), repeats=1
            )


class TestCrossover:
    def test_crossover_detected(self):
        series = FigureSeries(
            name="t", event="join", dh_group="dh-512", topology="lan",
            sizes=[2, 10, 20, 40],
            curves={"BD": [1.0, 5.0, 20.0, 80.0], "GDH": [3.0, 8.0, 15.0, 30.0]},
            membership=[0, 0, 0, 0],
        )
        assert series.crossover("BD", "GDH") == (10, 20)

    def test_no_crossover_returns_none(self):
        series = FigureSeries(
            name="t", event="join", dh_group="dh-512", topology="lan",
            sizes=[2, 10],
            curves={"A": [1.0, 2.0], "B": [3.0, 4.0]},
            membership=[0, 0],
        )
        assert series.crossover("A", "B") is None
