"""Tests for the sustained-churn workload package (`repro.workload`)."""

import json

import pytest

from repro.bench.pool import canonical_json
from repro.workload import (
    ChurnEvent,
    WorkloadEngine,
    WorkloadSpec,
    diurnal_stream,
    flash_stream,
    poisson_stream,
    run_workload,
    stream_populations,
    trace_stream,
)
from repro.workload.engine import group_converged


# -- spec validation and round-trip -----------------------------------------


def test_spec_roundtrips_through_to_spec():
    spec = WorkloadSpec(
        protocol="tgdh",  # case-normalized at construction
        arrival="flash",
        groups=3,
        group_size=4,
        rate_hz=10.0,
        duration_ms=500.0,
        seed=42,
        burst_at_ms=250.0,
        burst_joins=5,
        faults=(
            {"at_ms": 100.0, "action": "partition", "components": [[0, 1], [2]]},
            {"at_ms": 200.0, "action": "heal"},
        ),
    )
    assert spec.protocol == "TGDH"
    rebuilt = WorkloadSpec.from_spec(spec.to_spec())
    assert rebuilt == spec
    # The canonical JSON of the spec dict is the pool's cache-key input:
    # the round trip must preserve it byte for byte.
    assert canonical_json(rebuilt.to_spec()) == canonical_json(spec.to_spec())


def test_spec_roundtrip_survives_json():
    spec = WorkloadSpec(protocol="GDH", arrival="trace", trace=(
        {"at_ms": 1.0, "group": 0, "action": "join"},
    ))
    wire = json.dumps(spec.to_spec())
    assert WorkloadSpec.from_spec(json.loads(wire)) == spec


def test_spec_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="unknown protocol 'NOPE'"):
        WorkloadSpec(protocol="nope")


def test_spec_rejects_unknown_arrival():
    with pytest.raises(ValueError, match="unknown arrival process"):
        WorkloadSpec(protocol="TGDH", arrival="bursty")


def test_spec_rejects_unknown_fault_action():
    with pytest.raises(ValueError, match="unknown fault action"):
        WorkloadSpec(
            protocol="TGDH",
            faults=({"at_ms": 1.0, "action": "explode"},),
        )


def test_spec_rejects_unknown_churn_action():
    with pytest.raises(ValueError, match="unknown churn action"):
        WorkloadSpec(
            protocol="TGDH",
            arrival="trace",
            trace=({"at_ms": 1.0, "group": 0, "action": "defect"},),
        )


def test_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown workload spec keys"):
        WorkloadSpec.from_spec({"protocol": "TGDH", "colour": "red"})


def test_spec_rejects_trace_beyond_group_count():
    with pytest.raises(ValueError, match="has only 2 groups"):
        WorkloadSpec(
            protocol="TGDH",
            groups=2,
            arrival="trace",
            trace=({"at_ms": 1.0, "group": 5, "action": "join"},),
        )


# -- arrival processes ------------------------------------------------------


ARRIVAL_ARGS = dict(
    groups=4, group_size=4, rate_hz=50.0, duration_ms=1000.0, seed=7
)


@pytest.mark.parametrize(
    "stream", [poisson_stream, flash_stream, diurnal_stream]
)
def test_streams_are_seed_deterministic(stream):
    first = stream(**ARRIVAL_ARGS)
    second = stream(**ARRIVAL_ARGS)
    assert first == second
    assert first  # the parameters produce a non-empty stream
    other = stream(**{**ARRIVAL_ARGS, "seed": 8})
    assert first != other


@pytest.mark.parametrize(
    "stream", [poisson_stream, flash_stream, diurnal_stream]
)
def test_streams_are_time_ordered_and_in_range(stream):
    events = stream(**ARRIVAL_ARGS)
    times = [event.at_ms for event in events]
    assert times == sorted(times)
    assert all(0 <= t < ARRIVAL_ARGS["duration_ms"] for t in times)
    assert all(0 <= e.group < ARRIVAL_ARGS["groups"] for e in events)


@pytest.mark.parametrize(
    "stream", [poisson_stream, flash_stream, diurnal_stream]
)
def test_streams_never_drain_a_group_below_minimum(stream):
    """The feasibility invariant: replaying the population arithmetic
    never dips below min_members at any prefix of the stream."""
    events = stream(**ARRIVAL_ARGS, min_members=2)
    populations = [ARRIVAL_ARGS["group_size"]] * ARRIVAL_ARGS["groups"]
    for event in events:
        populations[event.group] += 1 if event.action == "join" else -1
        assert populations[event.group] >= 2
    assert populations == stream_populations(
        events, ARRIVAL_ARGS["groups"], ARRIVAL_ARGS["group_size"]
    )


def test_flash_burst_lands_at_the_requested_instant():
    events = flash_stream(**ARRIVAL_ARGS, burst_at_ms=400.0, burst_joins=6)
    background = poisson_stream(**ARRIVAL_ARGS)
    burst = [e for e in events if e not in background]
    assert len(burst) >= 6
    joins = [e for e in burst if e.action == "join" and e.at_ms >= 400.0]
    assert len(joins) >= 6
    assert min(e.at_ms for e in joins) == 400.0


def test_trace_stream_orders_and_validates():
    events = trace_stream(
        [
            {"at_ms": 30.0, "group": 1, "action": "leave"},
            {"at_ms": 10.0, "group": 0, "action": "join"},
            ChurnEvent(20.0, 0, "leave"),
        ],
        groups=2,
    )
    assert [e.at_ms for e in events] == [10.0, 20.0, 30.0]
    with pytest.raises(ValueError, match="missing 'at_ms'"):
        trace_stream([{"group": 0, "action": "join"}])


# -- the engine -------------------------------------------------------------


def _small_spec(**overrides):
    base = dict(
        protocol="TGDH",
        arrival="poisson",
        groups=2,
        group_size=3,
        rate_hz=10.0,
        duration_ms=400.0,
        seed=7,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_run_workload_converges_and_counts():
    result = run_workload(_small_spec())
    assert result.converged
    assert result.converged_groups == result.groups == 2
    assert result.events == result.joins + result.leaves
    assert result.skipped == 0
    assert result.member_epochs > 0
    assert result.throughput_eps > 0
    assert result.rekey_p50_ms > 0
    assert result.rekey_p50_ms <= result.rekey_p95_ms <= result.rekey_p99_ms
    assert result.makespan_ms >= result.last_injection_ms


def test_run_workload_is_deterministic():
    first = run_workload(_small_spec())
    second = run_workload(_small_spec())
    assert first.to_dict() == second.to_dict()


def test_result_roundtrips_through_dict():
    result = run_workload(_small_spec())
    data = result.to_dict()
    assert data["converged"] is True
    rebuilt = type(result).from_dict(json.loads(json.dumps(data)))
    assert rebuilt.to_dict() == data


def test_groups_keep_distinct_keys():
    """Multi-group isolation: concurrent groups on the same daemons end
    converged on *different* group keys."""
    engine = WorkloadEngine(_small_spec(groups=3))
    engine.run()
    keys = []
    for group, roster in engine.rosters.items():
        assert group_converged(roster), f"group {group} did not converge"
        keys.append(roster[0].protocol.key)
    assert len(set(keys)) == len(keys)


def test_faults_compose_with_churn():
    spec = _small_spec(
        protocol="GDH",
        faults=(
            {
                "at_ms": 150.0,
                "action": "partition",
                "components": [[0, 1, 2, 3, 4, 5, 6], [7, 8, 9, 10, 11, 12]],
            },
            {"at_ms": 300.0, "action": "heal"},
        ),
    )
    result = run_workload(spec)
    assert result.converged
    assert result.last_injection_ms >= 300.0


def test_trace_replay_drives_exact_events():
    spec = _small_spec(
        arrival="trace",
        trace=(
            {"at_ms": 50.0, "group": 0, "action": "join"},
            {"at_ms": 120.0, "group": 1, "action": "leave"},
            {"at_ms": 200.0, "group": 0, "action": "leave"},
        ),
    )
    engine = WorkloadEngine(spec)
    result = engine.run()
    assert result.converged
    assert result.events == 3
    assert result.joins == 1 and result.leaves == 2
    assert len(engine.rosters[0]) == 3  # 3 + 1 join - 1 leave
    assert len(engine.rosters[1]) == 2


def test_engine_rejects_unknown_topology():
    with pytest.raises(ValueError, match="unknown topology"):
        WorkloadEngine(_small_spec(), topology="metro")
