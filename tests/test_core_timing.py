"""Tests for the rekey measurement timeline."""

import pytest

from repro.core.timing import EpochRecord, RekeyTimeline


def test_elapsed_decomposition():
    timeline = RekeyTimeline()
    timeline.mark_event(100.0)
    timeline.record_view((1, 1), "a", 102.0, ("a", "b"))
    timeline.record_view((1, 1), "b", 103.0, ("a", "b"))
    timeline.record_key((1, 1), "a", 110.0)
    timeline.record_key((1, 1), "b", 112.0)
    record = timeline.latest_complete()
    assert record.membership_elapsed() == pytest.approx(3.0)
    assert record.total_elapsed() == pytest.approx(12.0)
    assert record.key_agreement_elapsed() == pytest.approx(9.0)


def test_incomplete_epoch_not_reported():
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_view((1, 1), "a", 1.0, ("a", "b"))
    timeline.record_key((1, 1), "a", 2.0)  # b never finishes
    with pytest.raises(LookupError):
        timeline.latest_complete()


def test_latest_complete_picks_newest():
    timeline = RekeyTimeline()
    for seq in (1, 2):
        timeline.mark_event(float(seq * 10))
        timeline.record_view((1, seq), "a", seq * 10 + 1.0, ("a",))
        timeline.record_key((1, seq), "a", seq * 10 + 2.0)
    assert timeline.latest_complete().epoch == (1, 2)


def test_duplicate_records_keep_first():
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_view((1, 1), "a", 1.0, ("a",))
    timeline.record_view((1, 1), "a", 5.0, ("a",))
    timeline.record_key((1, 1), "a", 2.0)
    timeline.record_key((1, 1), "a", 9.0)
    record = timeline.latest_complete()
    assert record.view_delivered["a"] == 1.0
    assert record.key_ready["a"] == 2.0


def test_unmarked_event_raises():
    record = EpochRecord(epoch=(1, 1))
    record.view_delivered["a"] = 1.0
    with pytest.raises(ValueError):
        record.membership_elapsed()


def test_latest_complete_with_zero_epochs():
    with pytest.raises(LookupError):
        RekeyTimeline().latest_complete()


def test_latest_complete_with_only_partial_epochs():
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_view((1, 1), "a", 1.0, ("a", "b"))
    timeline.record_view((1, 1), "b", 1.5, ("a", "b"))
    # neither member ever reports its key
    with pytest.raises(LookupError):
        timeline.latest_complete()


def test_key_recorded_before_view():
    """A key report may race ahead of the view report for another member;
    the epoch record must survive the inverted arrival order."""
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_key((1, 1), "a", 9.0)  # before any record_view
    timeline.record_view((1, 1), "a", 2.0, ("a",))
    record = timeline.latest_complete()
    assert record.event_started_at == 0.0
    assert record.total_elapsed() == pytest.approx(9.0)
    assert record.membership_elapsed() == pytest.approx(2.0)
    assert record.key_agreement_elapsed() == pytest.approx(7.0)


def test_key_agreement_elapsed_reconciles_with_span_breakdown():
    """The span-based decomposition must split ``key_agreement_elapsed``
    exactly into communication + computation."""
    from repro.obs import epoch_breakdown
    from repro.obs.spans import SpanRecorder

    timeline = RekeyTimeline()
    timeline.mark_event(100.0)
    timeline.record_view((1, 1), "a", 102.0, ("a", "b"))
    timeline.record_view((1, 1), "b", 103.0, ("a", "b"))
    timeline.record_key((1, 1), "a", 110.0)
    timeline.record_key((1, 1), "b", 112.0)
    record = timeline.latest_complete()
    spans = SpanRecorder()
    # b (the last finisher) computes during [104, 107] U [109, 111]
    spans.record("crypto", "w1", "b", "p0", 104.0, 107.0)
    spans.record("crypto", "w2", "b", "p0", 109.0, 111.0)
    spans.record("crypto", "other", "a", "p0", 103.0, 111.0)  # not b's
    phases = epoch_breakdown(record, spans)
    assert phases.last_member == "b"
    assert phases.computation_ms == pytest.approx(5.0)
    assert phases.communication_ms == pytest.approx(
        record.key_agreement_elapsed() - 5.0
    )
    assert phases.phase_sum() == pytest.approx(
        record.total_elapsed(), abs=1e-12
    )
