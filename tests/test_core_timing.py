"""Tests for the rekey measurement timeline."""

import pytest

from repro.core.timing import EpochRecord, RekeyTimeline


def test_elapsed_decomposition():
    timeline = RekeyTimeline()
    timeline.mark_event(100.0)
    timeline.record_view((1, 1), "a", 102.0, ("a", "b"))
    timeline.record_view((1, 1), "b", 103.0, ("a", "b"))
    timeline.record_key((1, 1), "a", 110.0)
    timeline.record_key((1, 1), "b", 112.0)
    record = timeline.latest_complete()
    assert record.membership_elapsed() == pytest.approx(3.0)
    assert record.total_elapsed() == pytest.approx(12.0)
    assert record.key_agreement_elapsed() == pytest.approx(9.0)


def test_incomplete_epoch_not_reported():
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_view((1, 1), "a", 1.0, ("a", "b"))
    timeline.record_key((1, 1), "a", 2.0)  # b never finishes
    with pytest.raises(LookupError):
        timeline.latest_complete()


def test_latest_complete_picks_newest():
    timeline = RekeyTimeline()
    for seq in (1, 2):
        timeline.mark_event(float(seq * 10))
        timeline.record_view((1, seq), "a", seq * 10 + 1.0, ("a",))
        timeline.record_key((1, seq), "a", seq * 10 + 2.0)
    assert timeline.latest_complete().epoch == (1, 2)


def test_duplicate_records_keep_first():
    timeline = RekeyTimeline()
    timeline.mark_event(0.0)
    timeline.record_view((1, 1), "a", 1.0, ("a",))
    timeline.record_view((1, 1), "a", 5.0, ("a",))
    timeline.record_key((1, 1), "a", 2.0)
    timeline.record_key((1, 1), "a", 9.0)
    record = timeline.latest_complete()
    assert record.view_delivered["a"] == 1.0
    assert record.key_ready["a"] == 2.0


def test_unmarked_event_raises():
    record = EpochRecord(epoch=(1, 1))
    record.view_delivered["a"] = 1.0
    with pytest.raises(ValueError):
        record.membership_elapsed()
