"""The experiment-spec surface, serialization, and the scale benchmark."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import (
    EventMeasurement,
    ExperimentSpec,
    _fresh_framework,
    grow_group,
    grow_group_batched,
    measure_event,
    run_experiment,
)
from repro.bench.scale import render_scale_table, run_scale, write_scale_json
from repro.gcs.topology import lan_testbed


# -- ExperimentSpec -----------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        ExperimentSpec(protocol="TGDH", event="rekey", group_size=4)
    with pytest.raises(ValueError):
        ExperimentSpec(protocol="TGDH", event="join", group_size=0)
    with pytest.raises(ValueError):
        ExperimentSpec(protocol="TGDH", event="join", group_size=4, repeats=0)
    with pytest.raises(ValueError):
        ExperimentSpec(
            protocol="TGDH", event="join", group_size=4, topology="mars"
        )


def test_wrapper_matches_spec_path():
    """measure_event is a thin shim over run_experiment(ExperimentSpec)."""
    via_wrapper = measure_event(
        lan_testbed, "STR", 4, "join", dh_group="dh-test", repeats=1
    )
    via_spec = run_experiment(
        ExperimentSpec(
            protocol="STR",
            event="join",
            group_size=4,
            dh_group="dh-test",
            topology=lan_testbed,
            repeats=1,
        )
    )
    assert via_wrapper == via_spec


def test_spec_accepts_topology_names():
    spec = ExperimentSpec(
        protocol="BD", event="join", group_size=3, topology="lan",
        dh_group="dh-test", repeats=1,
    )
    measurement = run_experiment(spec)
    assert measurement.topology == "lan"
    assert measurement.engine == "real"


# -- serialization ------------------------------------------------------------


def test_measurement_round_trips_through_dict():
    m = measure_event(
        lan_testbed, "BD", 3, "join", dh_group="dh-test", repeats=1,
        engine="symbolic",
    )
    data = m.to_dict()
    assert data["engine"] == "symbolic"
    assert EventMeasurement.from_dict(data) == m
    # JSON round trip too, and unknown keys are ignored.
    data = json.loads(json.dumps(data))
    data["future_field"] = 42
    assert EventMeasurement.from_dict(data) == m


# -- batched growth -----------------------------------------------------------


@pytest.mark.parametrize("protocol", ["BD", "CKD", "GDH", "STR", "TGDH"])
def test_batched_growth_matches_sequential_membership(protocol):
    sequential = _fresh_framework(lan_testbed, protocol, "dh-test", 0)
    grow_group(sequential, 7)
    batched = _fresh_framework(lan_testbed, protocol, "dh-test", 0)
    members = grow_group_batched(batched, 4)
    members += grow_group_batched(batched, 7, start=4, existing=members)
    seq_view = sequential.members_of()[0].protocol.view
    bat_view = members[0].protocol.view
    assert set(seq_view.members) == set(bat_view.members)
    # Everyone holds the same key after the batched rekey.
    keys = {member.protocol.key for member in members}
    assert len(keys) == 1 and None not in keys


def test_batched_growth_cuts_event_churn():
    """One rekey per batch instead of one per join: an order of magnitude
    fewer simulator events for the broadcast-heavy protocols, where the
    sequential path's every-join rekey is cubic overall."""
    sequential = _fresh_framework(lan_testbed, "BD", "dh-test", 0)
    grow_group(sequential, 24)
    batched = _fresh_framework(lan_testbed, "BD", "dh-test", 0)
    grow_group_batched(batched, 24)
    assert (
        batched.world.sim.events_processed
        < sequential.world.sim.events_processed / 3
    )


def test_batched_growth_noop_and_bookkeeping():
    framework = _fresh_framework(lan_testbed, "TGDH", "dh-test", 0)
    members = grow_group_batched(framework, 3)
    assert [m.name for m in members] == ["m0", "m1", "m2"]
    assert grow_group_batched(framework, 3, start=3, existing=members) == []


# -- the scale benchmark ------------------------------------------------------


def test_run_scale_tiny(tmp_path):
    measurements = run_scale(
        protocols=("TGDH",),
        sizes=(6,),
        dh_group="dh-test",
        engine="symbolic",
    )
    assert [(m.event, m.group_size) for m in measurements] == [
        ("join", 6),
        ("leave", 6),
    ]
    for m in measurements:
        assert m.engine == "symbolic"
        assert m.total_ms > m.membership_ms > 0
    payload = write_scale_json(
        str(tmp_path / "BENCH_scale.json"), measurements, engine="symbolic"
    )
    loaded = json.loads((tmp_path / "BENCH_scale.json").read_text())
    assert loaded == payload
    restored = [
        EventMeasurement.from_dict(cell) for cell in loaded["measurements"]
    ]
    assert restored == list(measurements)
    table = render_scale_table(measurements)
    assert "join total elapsed (ms)" in table
    assert "TGDH" in table


def test_observed_sweep_is_bit_identical_to_unobserved():
    """The obs-overhead contract: tracing changes no measured number."""
    def sweep(observe):
        return run_scale(
            protocols=("BD", "TGDH"),
            sizes=(6,),
            dh_group="dh-test",
            engine="symbolic",
            observe=observe,
            use_cache=False,
        )

    plain = [m.to_dict() for m in sweep(observe=False)]
    observed = [m.to_dict() for m in sweep(observe=True)]
    assert plain == observed  # simulated times AND ledger charges


def test_scale_cli_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_scale.json"
    code = main(
        [
            "scale",
            "--sizes", "5",
            "--protocols", "STR",
            "--dh-group", "dh-test",
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "scale"
    assert payload["engine"] == "symbolic"
    assert {m["protocol"] for m in payload["measurements"]} == {"STR"}
    assert f"wrote {out}" in capsys.readouterr().out
