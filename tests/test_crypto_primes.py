"""Tests for Miller-Rabin primality and Schnorr parameter generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import (
    generate_prime,
    generate_safe_prime,
    generate_schnorr_parameters,
    is_probable_prime,
)
from repro.crypto.rng import DeterministicRandom


KNOWN_PRIMES = [2, 3, 5, 7, 97, 509, 1019, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1105, 1729, 2465, 6601, 8911, 2**32 + 1]


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_accepted(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    # Includes the first Carmichael numbers, which fool Fermat tests.
    assert not is_probable_prime(n)


def test_negative_numbers_rejected():
    assert not is_probable_prime(-7)


@given(st.integers(min_value=2, max_value=100_000))
@settings(max_examples=300)
def test_agrees_with_trial_division(n):
    by_trial = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
    assert is_probable_prime(n) == by_trial


@pytest.mark.parametrize("bits", [8, 16, 32, 64, 128, 256])
def test_generate_prime_bit_length(bits):
    rng = DeterministicRandom(bits)
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_request():
    with pytest.raises(ValueError):
        generate_prime(1, DeterministicRandom(0))


def test_generate_safe_prime():
    rng = DeterministicRandom(7)
    p = generate_safe_prime(32, rng)
    assert p.bit_length() == 32
    assert is_probable_prime(p)
    assert is_probable_prime((p - 1) // 2)


@pytest.mark.parametrize("p_bits,q_bits", [(64, 32), (96, 40), (128, 64)])
def test_schnorr_parameters(p_bits, q_bits):
    rng = DeterministicRandom(p_bits * 1000 + q_bits)
    p, q, g = generate_schnorr_parameters(p_bits, q_bits, rng)
    assert p.bit_length() == p_bits
    assert q.bit_length() == q_bits
    assert is_probable_prime(p)
    assert is_probable_prime(q)
    assert (p - 1) % q == 0
    assert pow(g, q, p) == 1
    assert g != 1
    # g must have order exactly q (q is prime, so order divides q => 1 or q).
    assert pow(g, 1, p) != 1


def test_schnorr_rejects_bad_sizes():
    with pytest.raises(ValueError):
        generate_schnorr_parameters(64, 64, DeterministicRandom(0))


def test_generation_is_deterministic():
    a = generate_prime(64, DeterministicRandom(42))
    b = generate_prime(64, DeterministicRandom(42))
    assert a == b
