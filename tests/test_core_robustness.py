"""Robustness of the Secure Spread layer under cascades and faults.

The paper's prior work ([1, 2]) made GDH robust to "any sequence of
(possibly cascaded) events"; our framework adopts the abort-and-restart
discipline for all five protocols.  These tests inject cascades and
failures the basic integration suite doesn't."""

import pytest

from repro.core import SecureSpreadFramework
from repro.core.secure_group import _CIPHER_HISTORY
from repro.gcs.messages import View, ViewEvent
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.protocols import PROTOCOLS


def _framework(protocol, topology=None, **kwargs):
    options = dict(dh_group="dh-test")
    options.update(kwargs)
    return SecureSpreadFramework(
        topology or lan_testbed(), default_protocol=protocol, **options
    )


def _settled_group(framework, count):
    members = framework.spawn_members(count)
    for member in members:
        member.join()
        framework.run_until_idle()
    return members


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
class TestCascades:
    def test_partition_during_join_agreement(self, protocol):
        fw = _framework(protocol)
        members = _settled_group(fw, 6)
        late = fw.member("late", 7)
        late.join()  # do not run to completion
        fw.world.partition([[0, 1, 2, 7], [3, 4, 5, 6] + list(range(8, 13))])
        fw.run_until_idle()
        left = [members[0], members[1], members[2], late]
        right = [members[3], members[4], members[5]]
        assert len({m.key_bytes for m in left}) == 1
        assert len({m.key_bytes for m in right}) == 1

    def test_rapid_fire_joins(self, protocol):
        fw = _framework(protocol)
        members = _settled_group(fw, 3)
        burst = [fw.member(f"b{i}", 3 + i) for i in range(3)]
        for member in burst:
            member.join()  # all three agreements cascade
        fw.run_until_idle()
        everyone = members + burst
        keys = {m.key_bytes for m in everyone}
        assert len(keys) == 1 and keys.pop() is not None

    def test_leave_storm(self, protocol):
        fw = _framework(protocol)
        members = _settled_group(fw, 8)
        for index in (1, 3, 5):
            members[index].leave()  # overlapping subtractive agreements
        fw.run_until_idle()
        survivors = [m for i, m in enumerate(members) if i not in (1, 3, 5)]
        assert len({m.key_bytes for m in survivors}) == 1

    def test_member_crash_rekeys_group(self, protocol):
        fw = _framework(protocol)
        members = _settled_group(fw, 5)
        old_key = members[0].key_bytes
        fw.world.crash_client("m2")
        fw.run_until_idle()
        survivors = [m for m in members if m.name != "m2"]
        keys = {m.key_bytes for m in survivors}
        assert len(keys) == 1
        assert keys.pop() != old_key

    def test_machine_isolation_then_recovery(self, protocol):
        fw = _framework(protocol)
        members = _settled_group(fw, 6)
        fw.world.isolate_machine(2)
        fw.run_until_idle()
        fw.world.heal()
        fw.run_until_idle()
        assert len({m.key_bytes for m in members}) == 1


class TestDataDuringChurn:
    def test_old_epoch_ciphertext_still_readable_within_history(self):
        fw = _framework("TGDH")
        members = _settled_group(fw, 3)
        # Data racing a view change is sealed under the sender's current
        # epoch; receivers keep recent ciphers so nothing is lost.
        members[0].send_secure(b"racing the rekey")
        late = fw.member("late", 5)
        late.join()
        fw.run_until_idle()
        assert ("m0", b"racing the rekey") in members[1].inbox

    def test_cipher_history_is_bounded(self):
        fw = _framework("BD")
        members = _settled_group(fw, 3)
        # Drive many epochs; the cipher cache must not grow without bound.
        for i in range(_CIPHER_HISTORY + 3):
            extra = fw.member(f"extra{i}", 5)
            extra.join()
            fw.run_until_idle()
            extra.leave()
            fw.run_until_idle()
        assert len(members[0]._ciphers) <= _CIPHER_HISTORY

    def test_pre_join_ciphertext_unreadable_by_newcomer(self):
        fw = _framework("GDH")
        members = _settled_group(fw, 3)
        members[0].send_secure(b"old secret")
        fw.run_until_idle()
        late = fw.member("late", 6)
        late.join()
        fw.run_until_idle()
        assert all(text != b"old secret" for _, text in late.inbox)

    def test_departed_member_stops_receiving(self):
        fw = _framework("STR")
        members = _settled_group(fw, 4)
        members[3].leave()
        fw.run_until_idle()
        members[0].send_secure(b"post-departure")
        fw.run_until_idle()
        assert all(text != b"post-departure" for _, text in members[3].inbox)
        assert ("m0", b"post-departure") in members[1].inbox


class TestCallbacks:
    def test_on_secure_view_fires_with_key(self):
        fw = _framework("CKD")
        events = []
        member = fw.member("solo", 0)
        member.on_secure_view = lambda m, view, key: events.append(
            (tuple(view.members), key)
        )
        member.join()
        fw.run_until_idle()
        peer = fw.member("peer", 1)
        peer.join()
        fw.run_until_idle()
        assert len(events) == 2
        assert events[-1][0] == ("solo", "peer")
        assert events[-1][1] is not None

    def test_is_secure_false_while_rekeying(self):
        fw = _framework("GDH", topology=wan_testbed())
        members = _settled_group(fw, 3)
        assert all(m.is_secure for m in members)
        late = fw.member("late", 5)
        late.join()
        # Run only partially: the WAN agreement takes hundreds of ms.
        fw.world.run(until=fw.now + 50)
        assert not late.is_secure
        fw.run_until_idle()
        assert late.is_secure


class TestReplayProtection:
    """§3.2: active attacks that try to introduce an old key are prevented
    by protocol-run identifiers — every message is tagged with the epoch
    (view id) it belongs to and dropped otherwise."""

    def test_replayed_old_epoch_message_is_ignored(self):
        fw = _framework("BD")
        members = _settled_group(fw, 3)
        # Record a protocol message from the current epoch.
        recorded = []
        victim = members[1]
        original_receive = victim.protocol.receive

        def recording_receive(pmsg):
            recorded.append(pmsg)
            return original_receive(pmsg)

        victim.protocol.receive = recording_receive
        extra = fw.member("extra", 4)
        extra.join()
        fw.run_until_idle()
        victim.protocol.receive = original_receive  # stop recording
        assert recorded, "no protocol traffic was observed"
        # Replay the join-epoch messages after a further epoch change:
        # all are stale and contribute nothing.
        extra.leave()
        fw.run_until_idle()
        key_after = victim.key_bytes
        for pmsg in recorded:
            assert victim.protocol.receive(pmsg) == []
        assert victim.key_bytes == key_after
        assert victim.protocol.done_for(victim.protocol.view)

    def test_cross_epoch_message_never_contributes(self):
        from repro.protocols.base import ProtocolMessage

        fw = _framework("GDH")
        members = _settled_group(fw, 3)
        victim = members[0]
        stale = ProtocolMessage(
            protocol="GDH",
            epoch=((99, 99), 99),
            step="gdh-keylist",
            sender="m1",
            body={"partials": {"m0": 123}},
        )
        before = victim.protocol.ledger.snapshot()
        assert victim.protocol.receive(stale) == []
        assert victim.protocol.ledger.delta_since(before).is_zero()


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_three_way_partition_and_simultaneous_heal(protocol):
    """Three components heal at once: the merge machinery must fold more
    than two subgroups in a single view (the paper's merge protocols are
    described pairwise; Secure Spread faces k-way merges after multi-way
    network faults)."""
    fw = _framework(protocol)
    members = _settled_group(fw, 9)
    fw.world.partition(
        [[0, 1, 2], [3, 4, 5], [6, 7, 8] + list(range(9, 13))]
    )
    fw.run_until_idle()
    sides = [members[0:3], members[3:6], members[6:9]]
    side_keys = []
    for side in sides:
        keys = {m.key_bytes for m in side}
        assert len(keys) == 1, protocol
        side_keys.append(keys.pop())
    assert len(set(side_keys)) == 3  # three distinct subgroup keys
    fw.world.heal()
    fw.run_until_idle()
    merged = {m.key_bytes for m in members}
    assert len(merged) == 1, protocol
    assert merged.pop() not in side_keys


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_deferred_view_superseded_by_cascade_before_flush(protocol):
    """With ``defer_rekey`` set, each new view replaces the stashed one;
    a flush after a cascade must key the *latest* membership, not the
    view that was current when deferral began."""
    fw = _framework(protocol)
    members = _settled_group(fw, 3)
    joiners = [fw.member(f"j{i}", 3 + i) for i in range(2)]
    everyone = members + joiners
    for member in everyone:
        member.defer_rekey = True
    joiners[0].join()
    fw.run_until_idle()
    first_stash = members[0]._deferred_view
    joiners[1].join()  # cascaded view supersedes the stashed one
    fw.run_until_idle()
    final_stash = members[0]._deferred_view
    assert first_stash is not None and final_stash is not None
    assert final_stash.view_id > first_stash.view_id
    assert set(final_stash.members) == {m.name for m in everyone}
    # No rekey ran while deferred: the old 3-member key is still current.
    assert members[0].protocol.view.members == tuple(
        m.name for m in members
    )
    # Flush with the synthetic merge view the batched-growth path builds:
    # the raw stash's ``joined`` names only the last cascade step, but the
    # base stacks/trees cover none of the newcomers.
    joined = tuple(
        name
        for name in final_stash.members
        if name not in {m.name for m in members}
    )
    rekey_view = View(
        view_id=final_stash.view_id,
        group=final_stash.group,
        members=final_stash.members,
        event=ViewEvent.MERGE,
        joined=joined,
        left=(),
    )
    for member in everyone:
        member.defer_rekey = False
        member._deferred_view = None
    for member in everyone:
        member.flush_deferred(rekey_view)
    fw.run_until_idle()
    keys = {m.key_bytes for m in everyone}
    assert len(keys) == 1 and keys.pop() is not None
    for member in everyone:
        assert member.protocol.view.view_id == final_stash.view_id
        assert member.protocol.done_for(member.protocol.view)


def test_gdh_interrupted_agreement_then_churn_stays_uniform():
    """Regression for silent GDH divergence: a partition that interrupts
    an agreement leaves the two sides with different cached partial-key
    lists (the key-list broadcast lands on one side only).  Churn after
    the heal used to let two members fall back independently and race
    two agreements in one epoch, completing members on *different* keys
    with none the wiser.  Now exactly one member — the controller —
    decides fast-path vs re-formation per epoch, and a member whose
    refreshed contribution never reached an adopted list refuses a
    subtractive shift (the watchdog then re-forms from scratch), so
    every epoch ends with all members on one key."""
    fw = _framework("GDH", stall_timeout_ms=400.0)
    members = _settled_group(fw, 6)
    late = fw.member("late", 7)
    late.join()  # agreement in flight when the network tears
    fw.world.partition([[0, 1, 2, 7], [3, 4, 5, 6] + list(range(8, 13))])
    fw.run_until_idle()
    fw.world.heal()
    fw.run_until_idle()
    everyone = members + [late]
    merged = {m.key_bytes for m in everyone}
    assert len(merged) == 1 and None not in merged
    # Subtractive then additive churn on the healed group: the cached
    # lists were rebuilt by the merge, and every epoch must stay uniform.
    members[2].leave()
    fw.run_until_idle()
    survivors = [m for m in everyone if m is not members[2]]
    keys = {m.key_bytes for m in survivors}
    assert len(keys) == 1 and None not in keys
    newcomer = fw.member("fresh", 8)
    newcomer.join()
    fw.run_until_idle()
    survivors.append(newcomer)
    keys = {m.key_bytes for m in survivors}
    assert len(keys) == 1 and None not in keys
    for member in survivors:
        assert member.protocol.done_for(member.protocol.view)
