"""Log-bucketed histograms and bounded time series.

Accuracy bar from the issue: any reported p50/p95/p99 is within one
geometric bucket of the exact sorted-sample percentile.  Merge bar:
folding shard snapshots is exact and order-independent.
"""

import math
import random

import pytest

from repro.obs.histo import (
    GROWTH,
    LogHistogram,
    TimeSeries,
    bucket_bounds,
    bucket_index,
    bucket_midpoint,
    render_percentiles,
)


def _exact_quantile(samples, q):
    """Nearest-rank quantile over the raw samples."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _within_one_bucket(reported, exact):
    if exact <= 0.0:
        return reported == 0.0
    index = bucket_index(exact)
    low, _ = bucket_bounds(index - 1)
    _, high = bucket_bounds(index + 1)
    return low <= reported <= high


# ---------------------------------------------------------------------------
# buckets


def test_bucket_index_boundaries_are_half_open():
    for i in (-3, 0, 1, 17):
        low, high = bucket_bounds(i)
        assert bucket_index(low) == i
        assert bucket_index(high) == i + 1
        assert low < bucket_midpoint(i) < high


def test_bucket_width_is_one_eighth_octave():
    assert GROWTH ** 8 == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# histogram accuracy


@pytest.mark.parametrize("seed", range(5))
def test_percentiles_within_one_bucket_of_sorted_samples(seed):
    rng = random.Random(seed)
    samples = [rng.lognormvariate(2.0, 1.5) for _ in range(2000)]
    hist = LogHistogram("lat")
    for value in samples:
        hist.observe(value)
    for q in (0.5, 0.95, 0.99):
        assert _within_one_bucket(hist.quantile(q), _exact_quantile(samples, q))


def test_zero_values_counted_not_discarded():
    hist = LogHistogram("lat")
    for value in (0.0, 0.0, 0.0, 5.0):
        hist.observe(value)
    assert hist.count == 4 and hist.zero_count == 3
    assert hist.quantile(0.5) == 0.0
    assert hist.quantile(0.99) > 0.0


def test_empty_and_invalid_quantiles():
    hist = LogHistogram()
    assert hist.quantile(0.5) == 0.0
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_percentiles_reporting_set():
    hist = LogHistogram()
    for v in range(1, 101):
        hist.observe(float(v))
    p = hist.percentiles()
    assert set(p) == {"p50", "p95", "p99"}
    assert p["p50"] <= p["p95"] <= p["p99"]


# ---------------------------------------------------------------------------
# merging


def _snapshot(hist):
    return (
        dict(hist.buckets), hist.zero_count, hist.count,
        hist.total, hist.min, hist.max,
    )


@pytest.mark.parametrize("seed", range(3))
def test_merge_is_exact_and_order_independent(seed):
    rng = random.Random(100 + seed)
    shards = []
    for _ in range(6):
        shard = LogHistogram("lat")
        for _ in range(rng.randrange(1, 300)):
            shard.observe(rng.expovariate(0.01))
        shards.append(_snapshot(shard))

    def fold(order):
        merged = LogHistogram("lat")
        for i in order:
            merged.merge(*shards[i])
        return merged

    forward = fold(range(len(shards)))
    shuffled_order = list(range(len(shards)))
    rng.shuffle(shuffled_order)
    shuffled = fold(shuffled_order)
    assert forward.total == shuffled.total  # fsum: bit-identical
    assert forward.buckets == shuffled.buckets
    assert forward.count == shuffled.count
    assert forward.min == shuffled.min and forward.max == shuffled.max
    assert forward.percentiles() == shuffled.percentiles()


def test_merge_coerces_json_string_bucket_keys():
    source = LogHistogram()
    source.observe(7.0)
    merged = LogHistogram()
    merged.merge(
        {str(k): v for k, v in source.buckets.items()},
        source.zero_count, source.count, source.total, source.min, source.max,
    )
    assert merged.buckets == source.buckets
    assert merged.quantile(0.5) == source.quantile(0.5)


# ---------------------------------------------------------------------------
# time series


def test_ring_is_bounded_and_keeps_most_recent():
    series = TimeSeries("s", capacity=4)
    for t in range(10):
        series.record(float(t), float(t * 10))
    assert len(series) == 4
    assert series.recorded == 10
    assert series.points() == [(6.0, 60.0), (7.0, 70.0), (8.0, 80.0), (9.0, 90.0)]


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TimeSeries(capacity=0)


def test_series_merge_order_independent_and_rebounded():
    def build(points, capacity=5):
        series = TimeSeries("s", capacity=capacity)
        for t, v in points:
            series.record(t, v)
        return series

    a = [(float(t), 1.0) for t in range(4)]
    b = [(float(t), 2.0) for t in (2.5, 6, 7, 8)]
    ab = build(a)
    ab.merge(b, len(b))
    ba = build(b)
    ba.merge(a, len(a))
    assert ab.points() == ba.points()
    assert ab.recorded == ba.recorded == 8
    assert len(ab) == 5  # re-bounded to capacity, most recent kept
    assert ab.points()[-1] == (8.0, 2.0)
    # Recording after a merge keeps overwriting oldest-first.
    ab.record(9.0, 3.0)
    assert ab.points()[-1] == (9.0, 3.0) and len(ab) == 5


# ---------------------------------------------------------------------------
# rendering


def test_render_percentiles_table():
    hist = LogHistogram("member.rekey_ms", (("protocol", "BD"),))
    for v in (10.0, 20.0, 30.0):
        hist.observe(v)
    text = render_percentiles([hist], "Rekey latency percentiles (ms)")
    assert "member.rekey_ms{protocol=BD}" in text
    assert "p50" in text and "p99" in text
    assert "      3" in text  # count column


def test_render_percentiles_empty():
    assert "no log histograms" in render_percentiles([])
