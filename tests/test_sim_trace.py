"""Tests for the structured tracer."""

import json

import pytest

from repro.sim.trace import Tracer


def test_record_and_filter_by_category():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0", size=10)
    tracer.record(2.0, "deliver", "d1", size=10)
    tracer.record(3.0, "send", "d1", size=20)
    sends = tracer.filter(category="send")
    assert [e.actor for e in sends] == ["d0", "d1"]


def test_filter_by_actor_and_predicate():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0", size=10)
    tracer.record(2.0, "send", "d0", size=99)
    big = tracer.filter(actor="d0", predicate=lambda e: e.detail["size"] > 50)
    assert len(big) == 1
    assert big[0].time == 2.0


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "send", "d0")
    assert tracer.events == []


def test_clear():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0")
    tracer.clear()
    assert tracer.events == []


def test_capacity_bound_counts_drops():
    tracer = Tracer(capacity=3)
    for i in range(10):
        tracer.record(float(i), "send", "d0", n=i)
    assert len(tracer.events) == 3
    assert tracer.dropped == 7
    # the earliest events are the ones kept
    assert [e.time for e in tracer.events] == [0.0, 1.0, 2.0]


def test_clear_resets_drop_counter():
    tracer = Tracer(capacity=1)
    tracer.record(1.0, "send", "d0")
    tracer.record(2.0, "send", "d0")
    assert tracer.dropped == 1
    tracer.clear()
    assert tracer.dropped == 0
    tracer.record(3.0, "send", "d0")
    assert len(tracer.events) == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_to_jsonl_round_trips(tmp_path):
    tracer = Tracer()
    tracer.record(1.0, "send", "d0", size=10)
    tracer.record(2.5, "deliver", "d1", group="g", seq=4)
    path = str(tmp_path / "trace.jsonl")
    assert tracer.to_jsonl(path) == 2
    rows = [json.loads(line) for line in open(path)]
    assert rows[0] == {
        "time": 1.0, "category": "send", "actor": "d0",
        "detail": {"size": 10},
    }
    assert rows[1]["detail"] == {"group": "g", "seq": 4}
