"""Tests for the structured tracer."""

from repro.sim.trace import Tracer


def test_record_and_filter_by_category():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0", size=10)
    tracer.record(2.0, "deliver", "d1", size=10)
    tracer.record(3.0, "send", "d1", size=20)
    sends = tracer.filter(category="send")
    assert [e.actor for e in sends] == ["d0", "d1"]


def test_filter_by_actor_and_predicate():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0", size=10)
    tracer.record(2.0, "send", "d0", size=99)
    big = tracer.filter(actor="d0", predicate=lambda e: e.detail["size"] > 50)
    assert len(big) == 1
    assert big[0].time == 2.0


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "send", "d0")
    assert tracer.events == []


def test_clear():
    tracer = Tracer()
    tracer.record(1.0, "send", "d0")
    tracer.clear()
    assert tracer.events == []
